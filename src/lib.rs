//! Workspace-root convenience crate for the SMARTFEAT reproduction.
//!
//! Re-exports the public surface of every member crate so the runnable
//! examples under `examples/` and the integration tests under `tests/`
//! can use one import root:
//!
//! ```
//! use smartfeat_repro::prelude::*;
//!
//! let ds = smartfeat_repro::datasets::insurance::generate(50, 7);
//! assert_eq!(ds.target, "Safe");
//! let _config = SmartFeatConfig::default();
//! ```

pub use smartfeat as core;
pub use smartfeat_baselines as baselines;
pub use smartfeat_datasets as datasets;
pub use smartfeat_fm as fm;
pub use smartfeat_frame as frame;
pub use smartfeat_ml as ml;
pub use smartfeat_rng as rng;

/// The names most programs need.
pub mod prelude {
    pub use smartfeat::{
        build_role_fms, CascadeConfig, DataAgenda, FeatureDescription, SearchStrategyKind,
        SmartFeat, SmartFeatConfig, SmartFeatReport,
    };
    pub use smartfeat_datasets::Dataset;
    pub use smartfeat_fm::{BackendKind, CascadeFm, FmBackend, FoundationModel, SimulatedFm};
    pub use smartfeat_frame::{Column, DataFrame, Value};
    pub use smartfeat_ml::{Classifier, Matrix, ModelKind};
}
