//! Figure 1 as a runnable example: what row-level FM interaction costs
//! versus SMARTFEAT's feature-level interaction, on the same dataset.
//!
//! Run with: `cargo run --release --example fm_cost_analysis`

use smartfeat_repro::core::prompts;
use smartfeat_repro::prelude::*;

fn main() {
    println!(
        "{:>6}  {:>10} {:>12} {:>9} {:>10}   {:>10} {:>12} {:>9} {:>10}",
        "rows",
        "row calls",
        "row tokens",
        "row $",
        "row time",
        "feat calls",
        "feat tokens",
        "feat $",
        "feat time"
    );
    for rows in [100usize, 500, 2_000, 8_000] {
        let ds = smartfeat_repro::datasets::insurance::generate(rows, 7);

        // Row-level: serialize every row with the new feature masked and
        // ask the model to complete it — the strategy of prior data-task
        // work the paper's Figure 1 contrasts against.
        let row_fm = SimulatedFm::gpt35(1);
        let feature_cols: Vec<String> = ds
            .frame
            .column_names()
            .into_iter()
            .filter(|n| *n != ds.target)
            .map(str::to_string)
            .collect();
        for i in 0..ds.frame.n_rows() {
            let fields: Vec<(String, String)> = feature_cols
                .iter()
                .map(|c| (c.clone(), ds.frame.column(c).expect("col").get(i).render()))
                .collect();
            let prompt = prompts::row_completion(&fields, "City_population_density");
            row_fm.complete(&prompt).expect("unbudgeted");
        }
        let row = row_fm.meter().snapshot();

        // Feature-level: the whole SMARTFEAT pipeline (operator selection,
        // function generation, and the memoized completion fallback).
        let selector_fm = SimulatedFm::gpt4(2);
        let generator_fm = SimulatedFm::gpt35(3);
        let tool = SmartFeat::new(&selector_fm, &generator_fm, SmartFeatConfig::default());
        let report = tool.run(&ds.frame, &ds.agenda("RF")).expect("runs");
        let feat = report.total_usage();

        println!(
            "{rows:>6}  {:>10} {:>12} {:>9.3} {:>9.0}s   {:>10} {:>12} {:>9.3} {:>9.0}s",
            row.calls,
            row.total_tokens(),
            row.cost_usd,
            row.latency.as_secs_f64(),
            feat.calls,
            feat.total_tokens(),
            feat.cost_usd,
            feat.latency.as_secs_f64(),
        );
    }
    println!(
        "\nRow-level interaction scales linearly with the table; feature-level \
         interaction depends only on the schema — the premise of SMARTFEAT's design."
    );
}
