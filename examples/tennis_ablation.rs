//! Operator ablation on the Tennis dataset — a runnable miniature of the
//! paper's Table 7: which operator families contribute how much AUC.
//!
//! Run with: `cargo run --release --example tennis_ablation`

use smartfeat_repro::core::config::{OperatorFamily, OperatorMask};
use smartfeat_repro::prelude::*;

fn evaluate(frame: &DataFrame, target: &str, seed: u64) -> Vec<(ModelKind, f64)> {
    let features: Vec<&str> = frame
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = frame.to_matrix(&features, 0.0).expect("matrix");
    let x = Matrix::from_rows(rows).expect("rect");
    let y = frame.to_labels(target).expect("labels");
    let idx = smartfeat_repro::frame::sample::permutation(x.rows(), seed);
    let cut = x.rows() * 3 / 4;
    let (tr, te) = idx.split_at(cut);
    let y_tr: Vec<u8> = tr.iter().map(|&i| y[i]).collect();
    let y_te: Vec<u8> = te.iter().map(|&i| y[i]).collect();
    let scores = smartfeat_repro::ml::cv::evaluate_models(
        &ModelKind::all(),
        &x.take_rows(tr),
        &y_tr,
        &x.take_rows(te),
        &y_te,
        seed,
    )
    .expect("evaluation");
    scores.scores
}

fn main() {
    let ds = smartfeat_repro::datasets::by_name("Tennis", 944, 42).expect("tennis");
    let agenda = ds.agenda("RF");

    let variants: Vec<(&str, OperatorMask)> = vec![
        ("Initial", OperatorMask::none()),
        ("+Unary", OperatorMask::only(OperatorFamily::Unary)),
        ("+Binary", OperatorMask::only(OperatorFamily::Binary)),
        ("+High-order", OperatorMask::only(OperatorFamily::HighOrder)),
        ("+Extractor", OperatorMask::only(OperatorFamily::Extractor)),
        ("all", OperatorMask::all()),
    ];

    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  features",
        "variant", "LR", "NB", "RF", "ET", "DNN", "Avg"
    );
    for (label, mask) in variants {
        let selector_fm = SimulatedFm::gpt4(11);
        let generator_fm = SimulatedFm::gpt35(12);
        let config = SmartFeatConfig {
            operators: mask,
            ..SmartFeatConfig::default()
        };
        let tool = SmartFeat::new(&selector_fm, &generator_fm, config);
        let report = tool.run(&ds.frame, &agenda).expect("pipeline runs");
        let scores = evaluate(&report.frame, ds.target, 1042);
        let avg: f64 = scores.iter().map(|(_, a)| *a).sum::<f64>() / scores.len() as f64;
        print!("{label:<12}");
        for (_, auc) in &scores {
            print!(" {auc:>7.2}");
        }
        println!(" {avg:>7.2}  {}", report.generated.len());
    }
}
