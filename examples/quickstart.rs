//! Quickstart: the paper's motivating insurance example (Table 1).
//!
//! Builds the insurance dataset, runs SMARTFEAT with simulated GPT-4 /
//! GPT-3.5 endpoints, and shows the four features the paper walks through:
//! F1 bucketized age, F2 manufacturing year, F3 claim probability per car
//! model, F4 city population density — then trains a random forest with
//! and without the new features.
//!
//! Run with: `cargo run --release --example quickstart`

use smartfeat_repro::prelude::*;

fn main() {
    // The dataset of paper Table 1, at a workable size.
    let ds = smartfeat_repro::datasets::insurance::generate(2500, 7);
    println!("Input data (first 6 rows):\n{}", ds.frame.head(6));

    // SMARTFEAT's three inputs: dataset feature descriptions, prediction
    // class, downstream model.
    let agenda = ds.agenda("RF");
    println!("Data agenda handed to the FM:\n{}", agenda.render());

    // The two FM roles of the paper: GPT-4 selects operators,
    // GPT-3.5-turbo generates transformation functions.
    let selector_fm = SimulatedFm::gpt4(1);
    let generator_fm = SimulatedFm::gpt35(2);
    let tool = SmartFeat::new(&selector_fm, &generator_fm, SmartFeatConfig::default());
    let report = tool.run(&ds.frame, &agenda).expect("pipeline runs");

    println!("{}", report.summary());
    println!("Generated features:");
    for g in &report.generated {
        println!(
            "  [{:<10}] {:<40} ← {:?}",
            format!("{:?}", g.family),
            g.name,
            g.columns
        );
    }
    if !report.dropped_originals.is_empty() {
        println!("Dropped originals: {:?}", report.dropped_originals);
    }

    // Evaluate the paper's way: average AUC across the five models on a
    // 75/25 split.
    let auc_of = |frame: &DataFrame| -> f64 {
        let features: Vec<&str> = frame
            .column_names()
            .into_iter()
            .filter(|n| *n != "Safe")
            .collect();
        let mut df = frame.clone();
        df.factorize_strings();
        let rows = df.to_matrix(&features, 0.0).expect("matrix");
        let x = Matrix::from_rows(rows).expect("rect");
        let y = df.to_labels("Safe").expect("labels");
        let idx = smartfeat_repro::frame::sample::permutation(x.rows(), 99);
        let cut = x.rows() * 3 / 4;
        let (tr, te) = idx.split_at(cut);
        let y_tr: Vec<u8> = tr.iter().map(|&i| y[i]).collect();
        let y_te: Vec<u8> = te.iter().map(|&i| y[i]).collect();
        let scores = smartfeat_repro::ml::cv::evaluate_models(
            &ModelKind::all(),
            &x.take_rows(tr),
            &y_tr,
            &x.take_rows(te),
            &y_te,
            5,
        )
        .expect("evaluation");
        scores.average()
    };
    let before = auc_of(&ds.frame);
    let after = auc_of(&report.frame);
    println!("\nAverage AUC (5 models) without new features: {before:.2}");
    println!("Average AUC (5 models) with    new features: {after:.2}");
    println!("Improvement: {:+.1}%", (after - before) / before * 100.0);
}
