//! The cascade-vs-single-model frontier: FM cost vs downstream AUC per
//! backend configuration, the source of the EXPERIMENTS.md "PR-8" table.
//!
//! Each configuration — every single simulated backend serving both
//! roles, the paper's fixed GPT-4/GPT-3.5 pairing, and the cost-ordered
//! cascade ladder — runs the default one-shot pipeline end-to-end on two
//! datasets, averaged over 20 seeds (single-seed AUC is noisy: which
//! candidates an FM happens to sample moves downstream AUC by several
//! points either way — std ≈ 5 on insurance). The table reports mean FM
//! calls (cascade
//! calls count every rung attempt), token volume, dollar spend, and the
//! 4-fold CV AUC of a logistic regression over the augmented frame.
//! Cascade runs also print their per-family routing split, summed over
//! the seeds.
//!
//! Run with: `cargo run --release --example cascade_frontier`

use smartfeat_repro::ml::kfold_cv_auc;
use smartfeat_repro::prelude::*;

/// 4-fold logistic-regression CV AUC over every non-target column.
fn frame_auc(df: &DataFrame, target: &str) -> f64 {
    let features: Vec<&str> = df
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = df.to_matrix(&features, 0.0).expect("frame to matrix");
    let x = Matrix::from_rows(rows).expect("rectangular matrix");
    let y = df.to_labels(target).expect("labels");
    kfold_cv_auc(ModelKind::LR, &x, &y, 4, 11).expect("cv score")
}

const SEED_BASE: u64 = 21;
const N_SEEDS: u64 = 20;

fn seeds() -> impl Iterator<Item = u64> {
    SEED_BASE..SEED_BASE + N_SEEDS
}

fn configs(seed: u64) -> Vec<(String, SmartFeatConfig)> {
    let base = SmartFeatConfig {
        seed,
        ..SmartFeatConfig::default()
    };
    let mut out = Vec::new();
    for kind in BackendKind::all() {
        out.push((
            format!("single/{}", kind.name()),
            SmartFeatConfig {
                backend: Some(kind),
                ..base.clone()
            },
        ));
    }
    out.push(("paper-pairing".to_string(), base.clone()));
    out.push((
        "cascade".to_string(),
        SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: true,
                ..CascadeConfig::default()
            },
            ..base
        },
    ));
    out
}

fn main() {
    for name in ["insurance", "Heart"] {
        let ds = if name == "insurance" {
            smartfeat_repro::datasets::insurance::generate(120, 7)
        } else {
            smartfeat_repro::datasets::by_name(name, 120, 7).expect("dataset exists")
        };
        let baseline = frame_auc(&ds.frame, ds.target);
        println!("## {name} (120 rows, baseline AUC {baseline:.3}, mean over {N_SEEDS} seeds)");
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>9} {:>7}",
            "config", "calls", "tokens", "FM $", "AUC", "ΔAUC"
        );
        let labels: Vec<String> = configs(SEED_BASE).into_iter().map(|(l, _)| l).collect();
        for label in labels {
            let n = N_SEEDS as f64;
            let mut calls = 0usize;
            let mut tokens = 0usize;
            let mut cost = 0.0f64;
            let mut auc = 0.0f64;
            let mut routing = smartfeat_repro::fm::RoutingSnapshot::new();
            for seed in seeds() {
                let cfg = configs(seed)
                    .into_iter()
                    .find(|(l, _)| *l == label)
                    .expect("label exists")
                    .1;
                let (selector, generator) = build_role_fms(&cfg);
                let report = SmartFeat::new(&selector, &generator, cfg)
                    .run(&ds.frame, &ds.agenda("RF"))
                    .expect("pipeline runs");
                let usage = report.total_usage();
                calls += usage.calls;
                tokens += usage.total_tokens();
                cost += usage.cost_usd;
                auc += frame_auc(&report.frame, ds.target);
                for fm in [&selector, &generator] {
                    for (family, stat) in fm.routing().unwrap_or_default() {
                        routing.entry(family).or_default().add(&stat);
                    }
                }
            }
            println!(
                "{:<22} {:>6.0} {:>8.0} {:>9.4} {:>9.3} {:>+7.3}",
                label,
                calls as f64 / n,
                tokens as f64 / n,
                cost / n,
                auc / n,
                auc / n - baseline,
            );
            for (family, stat) in &routing {
                println!(
                    "    {:<20} calls={:<4} escalations={:<3} ${:.4}",
                    family, stat.calls, stat.escalations, stat.cost_usd
                );
            }
        }
        println!();
    }
}
