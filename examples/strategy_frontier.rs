//! The search-strategy frontier: FM cost vs downstream AUC per
//! `--strategy`, the source of the EXPERIMENTS.md "PR-7" table.
//!
//! Each strategy runs end-to-end on two datasets; the table reports the
//! selector+generator FM spend and the 4-fold CV AUC of a logistic
//! regression over the augmented frame, next to the raw-frame baseline.
//!
//! Run with: `cargo run --release --example strategy_frontier`

use smartfeat_repro::ml::kfold_cv_auc;
use smartfeat_repro::prelude::*;

/// 4-fold logistic-regression CV AUC over every non-target column.
fn frame_auc(df: &DataFrame, target: &str) -> f64 {
    let features: Vec<&str> = df
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = df.to_matrix(&features, 0.0).expect("frame to matrix");
    let x = Matrix::from_rows(rows).expect("rectangular matrix");
    let y = df.to_labels(target).expect("labels");
    kfold_cv_auc(ModelKind::LR, &x, &y, 4, 11).expect("cv score")
}

fn main() {
    for name in ["insurance", "Heart"] {
        let ds = if name == "insurance" {
            smartfeat_repro::datasets::insurance::generate(120, 7)
        } else {
            smartfeat_repro::datasets::by_name(name, 120, 7).expect("dataset exists")
        };
        let baseline = frame_auc(&ds.frame, ds.target);
        println!("## {name} (120 rows, baseline AUC {baseline:.3})");
        println!(
            "{:<14} {:>6} {:>8} {:>9} {:>9} {:>7}",
            "strategy", "calls", "tokens", "FM $", "AUC", "ΔAUC"
        );
        for kind in SearchStrategyKind::all() {
            let selector = SimulatedFm::gpt4(21);
            let generator = SimulatedFm::gpt35(22);
            let mut cfg = SmartFeatConfig::default();
            cfg.search.strategy = kind;
            let report = SmartFeat::new(&selector, &generator, cfg)
                .run(&ds.frame, &ds.agenda("RF"))
                .expect("pipeline runs");
            let usage = report.total_usage();
            let auc = frame_auc(&report.frame, ds.target);
            println!(
                "{:<14} {:>6} {:>8} {:>9.4} {:>9.3} {:>+7.3}",
                kind.name(),
                usage.calls,
                usage.total_tokens(),
                usage.cost_usd,
                auc,
                auc - baseline,
            );
        }
        println!();
    }
}
