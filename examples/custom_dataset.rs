//! Bring-your-own-data walkthrough: load a CSV, describe its columns, run
//! SMARTFEAT, inspect what was generated and why features were skipped.
//!
//! (The CSV is written to a temp file first so the example is
//! self-contained; point `read_csv_path` at your own file instead.)
//!
//! Run with: `cargo run --release --example custom_dataset`

use smartfeat_repro::frame::csv;
use smartfeat_repro::prelude::*;

fn main() {
    // A small clinic-visits table. Note the date column and the city —
    // both trigger context-specific operators.
    let mut csv_text =
        String::from("patient_age,visit_date,city,bmi,glucose_level,monthly_income,readmitted\n");
    let cities = ["SF", "LA", "SEA", "NYC"];
    for i in 0..240u32 {
        let age = 20 + (i * 7) % 60;
        let date = format!("2023-{:02}-{:02}", 1 + (i % 12), 1 + (i % 28));
        let city = cities[(i as usize) % 4];
        let bmi = 19.0 + ((i * 13) % 210) as f64 / 10.0;
        let glucose = 80 + (i * 11) % 110;
        let income = 2500 + (i * 37) % 7000;
        let readmitted = u8::from(glucose > 125 || bmi > 31.0) ^ u8::from(i % 7 == 0);
        csv_text.push_str(&format!(
            "{age},{date},{city},{bmi:.1},{glucose},{income},{readmitted}\n"
        ));
    }
    let path = std::env::temp_dir().join("smartfeat_custom_example.csv");
    std::fs::write(&path, &csv_text).expect("temp file writable");

    // 1. Load.
    let df = csv::read_csv_path(&path).expect("csv parses");
    println!("Loaded {} rows × {} columns", df.n_rows(), df.n_cols());

    // 2. Describe — this is the \"data card\" a Kaggle dataset would carry.
    let agenda = DataAgenda::from_frame(
        &df,
        &[
            ("patient_age", "Age of the patient in years"),
            ("visit_date", "Date of the clinic visit"),
            ("city", "City where the patient lives"),
            ("bmi", "Body mass index of the patient"),
            ("glucose_level", "Fasting plasma glucose (mg/dL)"),
            ("monthly_income", "Self-reported monthly income in dollars"),
        ],
        "readmitted",
        "RF",
    );

    // 3. Run SMARTFEAT.
    let selector_fm = SimulatedFm::gpt4(3);
    let generator_fm = SimulatedFm::gpt35(4);
    let tool = SmartFeat::new(&selector_fm, &generator_fm, SmartFeatConfig::default());
    let report = tool.run(&df, &agenda).expect("pipeline runs");

    // 4. Inspect.
    println!("\n{}", report.summary());
    println!("Generated features and their transforms:");
    for g in &report.generated {
        println!("  {:<34} {}", g.name, g.transform);
    }
    println!("\nSkipped candidates (and why):");
    for s in report.skipped.iter().take(10) {
        println!("  {:<34} {:?}", s.name, s.reason);
    }
    if !report.source_suggestions.is_empty() {
        println!("\nSuggested external sources:");
        for (feature, source) in &report.source_suggestions {
            println!("  {feature}: {source}");
        }
    }

    // 5. The augmented frame is a regular DataFrame — save it back out.
    let out_path = std::env::temp_dir().join("smartfeat_custom_example_out.csv");
    csv::write_csv_path(&report.frame, &out_path).expect("csv writes");
    println!(
        "\nAugmented dataset ({} columns) written to {}",
        report.frame.n_cols(),
        out_path.display()
    );
}
