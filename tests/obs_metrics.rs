//! Tier-1 observability guards.
//!
//! 1. `report_fm_totals_match_usage_meters` — the metrics report's `fm`
//!    section must equal the `crates/fm` usage meters exactly: the report
//!    is an *accounting bridge*, not a second estimate.
//! 2. `metrics_report_is_byte_identical_across_thread_counts` — under the
//!    default logical clock, the metrics report and JSONL trace must be
//!    byte-identical for `SMARTFEAT_THREADS=1/2/4`. Same re-exec harness
//!    as `tests/threads_matrix.rs` (a nested `cargo test` would contend
//!    for the target-directory lock), with its own env var so the two
//!    matrices never cross-trigger each other's workers.

use std::process::Command;

use smartfeat::config::ObservabilityConfig;
use smartfeat::{SmartFeat, SmartFeatConfig, SmartFeatReport};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::json::JsonValue;

fn run_pipeline(observability: ObservabilityConfig) -> SmartFeatReport {
    let ds = smartfeat_datasets::insurance::generate(80, 9);
    let selector = SimulatedFm::gpt4(9);
    let generator = SimulatedFm::gpt35(10);
    let config = SmartFeatConfig {
        observability,
        ..SmartFeatConfig::default()
    };
    SmartFeat::new(&selector, &generator, config)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
}

fn enabled_in_memory() -> ObservabilityConfig {
    ObservabilityConfig {
        enabled: true,
        trace_out: None,
        metrics_out: None,
    }
}

#[test]
fn metrics_absent_when_observability_off() {
    let report = run_pipeline(ObservabilityConfig::default());
    assert!(report.metrics.is_none(), "inactive config must not record");
}

#[test]
fn report_fm_totals_match_usage_meters() {
    let report = run_pipeline(enabled_in_memory());
    let metrics = report
        .metrics
        .as_ref()
        .expect("metrics present when enabled");
    let fm = metrics.get("fm").expect("fm section in report");

    let roles = [
        ("selector", &report.selector_usage),
        ("generator", &report.generator_usage),
    ];
    for (role, usage) in roles {
        let entry = fm.get(role).unwrap_or_else(|| panic!("fm.{role} present"));
        assert_eq!(
            entry.get("calls").and_then(JsonValue::as_u64),
            Some(usage.calls as u64),
            "fm.{role}.calls diverges from the usage meter"
        );
        assert_eq!(
            entry.get("prompt_tokens").and_then(JsonValue::as_u64),
            Some(usage.prompt_tokens as u64),
            "fm.{role}.prompt_tokens diverges from the usage meter"
        );
        assert_eq!(
            entry.get("completion_tokens").and_then(JsonValue::as_u64),
            Some(usage.completion_tokens as u64),
            "fm.{role}.completion_tokens diverges from the usage meter"
        );
        let cost = entry
            .get("cost_usd")
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("fm.{role}.cost_usd present"));
        assert_eq!(
            cost.to_bits(),
            usage.cost_usd.to_bits(),
            "fm.{role}.cost_usd diverges from the usage meter"
        );
    }

    // The computed total sums exactly the two role entries, so it must
    // equal the combined meter snapshot bit-for-bit (f64 `+` commutes).
    let total = fm.get("total").expect("fm.total present");
    let combined = report.total_usage();
    assert_eq!(
        total.get("calls").and_then(JsonValue::as_u64),
        Some(combined.calls as u64)
    );
    assert_eq!(
        total.get("prompt_tokens").and_then(JsonValue::as_u64),
        Some(combined.prompt_tokens as u64)
    );
    assert_eq!(
        total.get("completion_tokens").and_then(JsonValue::as_u64),
        Some(combined.completion_tokens as u64)
    );
    let total_cost = total
        .get("cost_usd")
        .and_then(JsonValue::as_f64)
        .expect("fm.total.cost_usd present");
    assert_eq!(total_cost.to_bits(), combined.cost_usd.to_bits());
    assert!(combined.calls > 0, "run must have made FM calls");
}

#[test]
fn metrics_and_trace_files_are_written_and_parseable() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let trace = tmp.join(format!("smartfeat_obs_files_trace_{pid}.jsonl"));
    let metrics = tmp.join(format!("smartfeat_obs_files_metrics_{pid}.json"));
    let report = run_pipeline(ObservabilityConfig {
        enabled: false, // either output path alone activates the section
        trace_out: Some(trace.display().to_string()),
        metrics_out: Some(metrics.display().to_string()),
    });

    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&trace);

    let parsed = JsonValue::parse(&metrics_text).expect("metrics file is valid JSON");
    assert_eq!(
        Some(&parsed),
        report.metrics.as_ref(),
        "file and in-report metrics documents diverge"
    );
    assert_eq!(
        parsed.get("clock").and_then(JsonValue::as_str),
        Some("logical"),
        "default clock is the deterministic logical counter"
    );
    assert!(!trace_text.is_empty());
    for line in trace_text.lines() {
        let event = JsonValue::parse(line).expect("each trace line is valid JSON");
        assert!(event.get("kind").is_some(), "trace event carries a kind");
        assert!(event.get("t").is_some(), "trace event carries a timestamp");
    }
}

/// Metrics report + trace for one fully instrumented run, digested to a
/// string. Thread counts come from the environment.
fn obs_fingerprint() -> String {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let trace = tmp.join(format!("smartfeat_obs_fp_trace_{pid}.jsonl"));
    let metrics = tmp.join(format!("smartfeat_obs_fp_metrics_{pid}.json"));
    let report = run_pipeline(ObservabilityConfig {
        enabled: true,
        trace_out: Some(trace.display().to_string()),
        metrics_out: Some(metrics.display().to_string()),
    });
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&trace);
    let in_report = report.metrics.expect("metrics present when enabled").emit();
    format!("{metrics_text}\n{trace_text}\n{in_report}\n")
}

/// Inner worker: compute the fingerprint and write it to
/// `SMARTFEAT_OBS_MATRIX_OUT`. A no-op in ordinary suite runs.
#[test]
fn obs_matrix_worker() {
    let Ok(path) = std::env::var("SMARTFEAT_OBS_MATRIX_OUT") else {
        return;
    };
    std::fs::write(&path, obs_fingerprint()).expect("write fingerprint");
}

#[test]
fn metrics_report_is_byte_identical_across_thread_counts() {
    if std::env::var("SMARTFEAT_OBS_MATRIX_OUT").is_ok() {
        return; // we are the worker — don't recurse
    }
    let exe = std::env::current_exe().expect("current exe");
    let mut fingerprints = Vec::new();
    for threads in ["1", "2", "4"] {
        let out_path = std::env::temp_dir().join(format!(
            "smartfeat_obs_matrix_{}_{threads}.txt",
            std::process::id()
        ));
        let status = Command::new(&exe)
            .args(["--exact", "obs_matrix_worker"])
            .env("SMARTFEAT_THREADS", threads)
            .env("SMARTFEAT_OBS_MATRIX_OUT", &out_path)
            .env_remove("SMARTFEAT_OBS_WALLCLOCK")
            .status()
            .expect("spawn obs matrix worker");
        assert!(
            status.success(),
            "worker with SMARTFEAT_THREADS={threads} failed"
        );
        let fp = std::fs::read_to_string(&out_path).expect("read fingerprint");
        let _ = std::fs::remove_file(&out_path);
        assert!(
            !fp.is_empty(),
            "empty fingerprint at SMARTFEAT_THREADS={threads}"
        );
        fingerprints.push((threads, fp));
    }
    let (base_threads, base) = &fingerprints[0];
    for (threads, fp) in &fingerprints[1..] {
        assert_eq!(
            base, fp,
            "metrics/trace diverge between SMARTFEAT_THREADS={base_threads} and ={threads}"
        );
    }
}
