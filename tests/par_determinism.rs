//! Differential test layer for the parallel execution subsystem: every
//! parallel-wired path must produce **byte-identical** output between the
//! exact serial path (1 thread) and a multi-threaded pool, across seeds.
//!
//! Caveat: when `SMARTFEAT_THREADS` is set (e.g. under the threads-matrix
//! harness) it overrides both sides to the same count, and the cross-count
//! comparison happens between harness runs instead.

use smartfeat::{SmartFeat, SmartFeatConfig, SmartFeatReport};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::csv;
use smartfeat_ml::{
    evaluate_models_threaded, kfold_cv_auc_threaded, Classifier, ExtraTrees, Matrix, ModelKind,
    RandomForest,
};
use smartfeat_rng::Rng;

const SEEDS: [u64; 5] = [1, 7, 42, 123, 9999];
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn dense_data(seed: u64, rows: usize, cols: usize) -> (Matrix, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_f64() * 8.0).collect())
        .collect();
    let y: Vec<u8> = data.iter().map(|r| u8::from(r[0] + r[1] > 8.0)).collect();
    (Matrix::from_rows(data).expect("rectangular"), y)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn forest_fit_is_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let (x, y) = dense_data(seed, 240, 6);
        let mut serial = RandomForest::default_params(seed).with_threads(1);
        serial.fit(&x, &y).expect("fits");
        let p_serial = bits(&serial.predict_proba(&x).expect("fitted"));
        let i_serial = bits(&serial.feature_importances().expect("fitted"));
        for threads in THREAD_COUNTS {
            let mut par = RandomForest::default_params(seed).with_threads(threads);
            par.fit(&x, &y).expect("fits");
            assert_eq!(
                bits(&par.predict_proba(&x).expect("fitted")),
                p_serial,
                "seed {seed}, {threads} threads"
            );
            assert_eq!(
                bits(&par.feature_importances().expect("fitted")),
                i_serial,
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn extra_trees_fit_is_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let (x, y) = dense_data(seed.wrapping_add(31), 240, 6);
        let mut serial = ExtraTrees::default_params(seed).with_threads(1);
        serial.fit(&x, &y).expect("fits");
        let p_serial = bits(&serial.predict_proba(&x).expect("fitted"));
        for threads in THREAD_COUNTS {
            let mut par = ExtraTrees::default_params(seed).with_threads(threads);
            par.fit(&x, &y).expect("fits");
            assert_eq!(
                bits(&par.predict_proba(&x).expect("fitted")),
                p_serial,
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn kfold_cv_is_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let (x, y) = dense_data(seed.wrapping_add(77), 160, 4);
        for kind in [ModelKind::RF, ModelKind::LR, ModelKind::NB] {
            let serial = kfold_cv_auc_threaded(kind, &x, &y, 4, seed, 1)
                .expect("scores")
                .to_bits();
            for threads in THREAD_COUNTS {
                let par = kfold_cv_auc_threaded(kind, &x, &y, 4, seed, threads)
                    .expect("scores")
                    .to_bits();
                assert_eq!(par, serial, "seed {seed}, {kind}, {threads} threads");
            }
        }
    }
}

#[test]
fn evaluate_all_models_is_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let (x, y) = dense_data(seed.wrapping_add(13), 200, 5);
        let split = 150;
        let train: Vec<usize> = (0..split).collect();
        let test: Vec<usize> = (split..x.rows()).collect();
        let (xt, xe) = (x.take_rows(&train), x.take_rows(&test));
        let yt: Vec<u8> = train.iter().map(|&i| y[i]).collect();
        let ye: Vec<u8> = test.iter().map(|&i| y[i]).collect();
        let all = ModelKind::all();
        let serial = evaluate_models_threaded(&all, &xt, &yt, &xe, &ye, seed, 1).expect("scores");
        for threads in THREAD_COUNTS {
            let par =
                evaluate_models_threaded(&all, &xt, &yt, &xe, &ye, seed, threads).expect("scores");
            for ((ks, vs), (kp, vp)) in serial.scores.iter().zip(&par.scores) {
                assert_eq!(ks, kp, "model order, seed {seed}, {threads} threads");
                assert_eq!(
                    vs.to_bits(),
                    vp.to_bits(),
                    "seed {seed}, {ks}, {threads} threads"
                );
            }
        }
    }
}

fn run_pipeline(seed: u64, threads: usize) -> SmartFeatReport {
    let ds = smartfeat_datasets::insurance::generate(120, seed);
    let selector = SimulatedFm::gpt4(seed);
    let generator = SimulatedFm::gpt35(seed.wrapping_add(1));
    let config = SmartFeatConfig {
        threads,
        seed,
        ..SmartFeatConfig::default()
    };
    SmartFeat::new(&selector, &generator, config)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
}

#[test]
fn full_pipeline_run_is_byte_identical_across_thread_counts() {
    for seed in SEEDS {
        let serial = run_pipeline(seed, 1);
        let serial_csv = csv::write_csv_str(&serial.frame);
        for threads in THREAD_COUNTS {
            let par = run_pipeline(seed, threads);
            assert_eq!(
                par.new_feature_names(),
                serial.new_feature_names(),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(
                par.summary(),
                serial.summary(),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(
                csv::write_csv_str(&par.frame),
                serial_csv,
                "seed {seed}, {threads} threads"
            );
            assert_eq!(
                (par.selector_usage.calls, par.generator_usage.calls),
                (serial.selector_usage.calls, serial.generator_usage.calls),
                "FM usage attribution, seed {seed}, {threads} threads"
            );
            assert_eq!(
                par.skipped.len(),
                serial.skipped.len(),
                "seed {seed}, {threads} threads"
            );
        }
    }
}
