//! Integration tests for the extension features: frequency encoding,
//! retry-on-malformed, and the FM feature-removal pass (paper §5 future
//! work).

use smartfeat_repro::fm::{FmConfig, ModelSpec};
use smartfeat_repro::prelude::*;

#[test]
fn high_cardinality_categorical_gets_frequency_encoded() {
    // WNV's trap column has ~40 distinct values — too many for one-hot,
    // so the oracle proposes frequency encoding instead.
    let ds = smartfeat_repro::datasets::by_name("West Nile Virus", 600, 3).expect("wnv");
    let selector = SimulatedFm::gpt4(1);
    let generator = SimulatedFm::gpt35(2);
    let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("runs");
    let names = report.new_feature_names().join(",");
    assert!(
        names.contains("Frequency_trap") || names.contains("Frequency_street"),
        "no frequency-encoded feature: {names}"
    );
    // Frequency encodings are fractions in (0, 1].
    if let Ok(col) = report.frame.column("Frequency_trap") {
        for v in col.to_f64().into_iter().flatten() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

#[test]
fn fm_feature_removal_drops_identifier_columns() {
    let mut ds = smartfeat_repro::datasets::insurance::generate(200, 5);
    // Attach an opaque identifier column the FM should nominate.
    let ids: Vec<i64> = (0..200).collect();
    ds.frame
        .add_column(Column::from_i64("policy_id", ids))
        .expect("unique");
    ds.descriptions
        .push(("policy_id".into(), "Unique identifier of the policy".into()));

    let selector = SimulatedFm::gpt4(7);
    let generator = SimulatedFm::gpt35(8);
    let config = SmartFeatConfig {
        fm_feature_removal: true,
        ..SmartFeatConfig::default()
    };
    let report = SmartFeat::new(&selector, &generator, config)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("runs");
    assert!(
        report.fm_removed.iter().any(|f| f == "policy_id"),
        "identifier survived: {:?}",
        report.fm_removed
    );
    assert!(!report.frame.has_column("policy_id"));
    assert!(report.frame.has_column("Safe"), "target always survives");
}

#[test]
fn fm_feature_removal_never_orphans_generated_features() {
    // The removal pass must keep the report consistent (every listed
    // generated feature exists in the frame) and must not nominate the
    // pipeline's own extractor features ("weighted index" is not a
    // sampling weight).
    let ds = smartfeat_repro::datasets::by_name("Tennis", 300, 4).expect("tennis");
    let selector = SimulatedFm::gpt4(13);
    let generator = SimulatedFm::gpt35(14);
    let config = SmartFeatConfig {
        fm_feature_removal: true,
        ..SmartFeatConfig::default()
    };
    let report = SmartFeat::new(&selector, &generator, config)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("runs");
    for g in &report.generated {
        assert!(report.frame.has_column(&g.name), "orphaned {}", g.name);
    }
    assert!(
        report.frame.has_column("Performance_index"),
        "removal must not eat the weighted index"
    );
}

#[test]
fn fm_feature_removal_disabled_by_default() {
    let ds = smartfeat_repro::datasets::insurance::generate(150, 6);
    let selector = SimulatedFm::gpt4(9);
    let generator = SimulatedFm::gpt35(10);
    let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("runs");
    assert!(report.fm_removed.is_empty());
}

#[test]
fn retries_recover_features_under_a_flaky_fm() {
    let ds = smartfeat_repro::datasets::by_name("Tennis", 250, 4).expect("tennis");
    let run_with = |retries: usize| {
        let selector = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 3,
                error_rate: 0.45,
                ..FmConfig::default()
            },
        );
        let generator = SimulatedFm::gpt35(4);
        let config = SmartFeatConfig {
            retry_malformed: retries,
            ..SmartFeatConfig::default()
        };
        SmartFeat::new(&selector, &generator, config)
            .run(&ds.frame, &ds.agenda("RF"))
            .expect("runs")
    };
    let without = run_with(0);
    let with = run_with(3);
    // Retries must not *hurt*, and under a 45 % degradation rate they
    // typically rescue several samples.
    assert!(
        with.generated.len() >= without.generated.len(),
        "{} vs {}",
        with.generated.len(),
        without.generated.len()
    );
}
