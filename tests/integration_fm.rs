//! Integration tests for the simulated FM: transcripts, accounting, and
//! the knowledge base seen through real prompt round-trips.

use smartfeat_repro::core::prompts;
use smartfeat_repro::fm::{FmConfig, ModelSpec};
use smartfeat_repro::prelude::*;

fn agenda() -> smartfeat_repro::core::DataAgenda {
    let ds = smartfeat_repro::datasets::insurance::generate(60, 3);
    ds.agenda("RF")
}

#[test]
fn unary_prompt_round_trip_through_real_templates() {
    let fm = SimulatedFm::gpt4(1);
    let prompt = prompts::unary_proposal(&agenda(), "Age");
    use smartfeat_repro::fm::FoundationModel;
    let response = fm.complete(&prompt).unwrap();
    let proposals = smartfeat_repro::core::fmout::parse_proposals(&response.text);
    assert!(!proposals.is_empty(), "{}", response.text);
    assert!(proposals.iter().any(|p| p.op == "bucketize"));
}

#[test]
fn accounting_matches_per_call_sums() {
    use smartfeat_repro::fm::FoundationModel;
    let fm = SimulatedFm::gpt35(2);
    let mut total_cost = 0.0;
    let mut total_tokens = 0usize;
    for _ in 0..5 {
        let r = fm.complete(&prompts::binary_sample(&agenda())).unwrap();
        total_cost += r.cost_usd;
        total_tokens += r.prompt_tokens + r.completion_tokens;
    }
    let snap = fm.meter().snapshot();
    assert_eq!(snap.calls, 5);
    assert!((snap.cost_usd - total_cost).abs() < 1e-12);
    assert_eq!(snap.total_tokens(), total_tokens);
}

#[test]
fn gpt4_selector_is_costlier_than_gpt35_generator_per_token() {
    let g4 = ModelSpec::gpt4();
    let g35 = ModelSpec::gpt35_turbo();
    assert!(g4.usd_per_1k_prompt > g35.usd_per_1k_prompt);
    assert!(g4.latency(500, 100) > g35.latency(500, 100));
}

#[test]
fn degraded_outputs_are_handled_not_crashed() {
    // A fully-degraded FM must never break the pipeline — candidates are
    // simply skipped and counted as generation errors.
    let ds = smartfeat_repro::datasets::by_name("Tennis", 200, 1).expect("tennis");
    let selector = SimulatedFm::new(
        ModelSpec::gpt4(),
        FmConfig {
            seed: 9,
            error_rate: 0.8,
            ..FmConfig::default()
        },
    );
    let generator = SimulatedFm::new(
        ModelSpec::gpt35_turbo(),
        FmConfig {
            seed: 10,
            error_rate: 0.8,
            ..FmConfig::default()
        },
    );
    let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("survives degraded FM");
    assert!(report.generation_errors() > 0, "errors must be recorded");
}

#[test]
fn row_completion_cache_bounds_calls_by_cardinality() {
    use smartfeat_repro::core::transform::{apply, TransformFunction};
    use smartfeat_repro::fm::FoundationModel;
    let ds = smartfeat_repro::datasets::insurance::generate(500, 4);
    let fm = SimulatedFm::gpt35(0);
    let t = TransformFunction::RowCompletion {
        key_cols: vec!["City".into()],
        knowledge: "city_population_density".into(),
    };
    let cols = apply(&t, &ds.frame, "density", Some(&fm), 64).expect("applies");
    let distinct_cities = ds.frame.column("City").unwrap().cardinality();
    assert_eq!(fm.meter().snapshot().calls, distinct_cities);
    assert_eq!(cols[0].null_count(), 0);
}

#[test]
fn knowledge_cities_agree_between_oracle_and_dataset() {
    // The insurance label uses the same densities the oracle serves, so
    // the completion feature genuinely carries signal.
    for (city, expected) in [("SF", 7272.0), ("NYC", 11313.0), ("HOU", 1395.0)] {
        assert_eq!(
            smartfeat_repro::fm::knowledge::city_population_density(city),
            expected
        );
    }
}
