//! Tier-1 thread-matrix harness: run the parallel-wired stack under
//! `SMARTFEAT_THREADS=1`, `=4`, and `=8` and require byte-identical
//! fingerprints.
//!
//! The matrix re-executes this test binary (filtered to the worker test)
//! rather than invoking `cargo test` recursively — a nested cargo would
//! contend for the target-directory lock. Each worker writes its
//! fingerprint to the file named by `SMARTFEAT_MATRIX_OUT`; the outer test
//! compares the two files.

use std::process::Command;

use smartfeat::{SmartFeat, SmartFeatConfig};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::csv;
use smartfeat_ml::{kfold_cv_auc, Classifier, Matrix, ModelKind, RandomForest};
use smartfeat_rng::Rng;

/// Everything downstream of the pool, digested to a string: a full
/// pipeline run, a forest fit, and a k-fold CV score. Thread counts come
/// from the environment (`SmartFeatConfig::default()` leaves `threads`
/// at auto), so the same binary produces the per-count fingerprints.
fn fingerprint() -> String {
    let mut out = String::new();
    for seed in [3u64, 17] {
        let ds = smartfeat_datasets::insurance::generate(100, seed);
        let selector = SimulatedFm::gpt4(seed);
        let generator = SimulatedFm::gpt35(seed.wrapping_add(1));
        let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
            .run(&ds.frame, &ds.agenda("RF"))
            .expect("pipeline runs");
        out.push_str(&report.summary());
        out.push_str(&csv::write_csv_str(&report.frame));
    }
    let mut rng = Rng::seed_from_u64(5);
    let rows: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..4).map(|_| rng.gen_f64() * 6.0).collect())
        .collect();
    let y: Vec<u8> = rows.iter().map(|r| u8::from(r[0] + r[3] > 6.0)).collect();
    let x = Matrix::from_rows(rows).expect("rectangular");
    let mut rf = RandomForest::default_params(5);
    rf.fit(&x, &y).expect("fits");
    for p in rf.predict_proba(&x).expect("fitted") {
        out.push_str(&format!("{:016x}\n", p.to_bits()));
    }
    let auc = kfold_cv_auc(ModelKind::RF, &x, &y, 4, 11).expect("scores");
    out.push_str(&format!("cv={:016x}\n", auc.to_bits()));
    out
}

/// Inner worker: compute the fingerprint and write it to
/// `SMARTFEAT_MATRIX_OUT`. A no-op in ordinary suite runs.
#[test]
fn matrix_fingerprint_worker() {
    let Ok(path) = std::env::var("SMARTFEAT_MATRIX_OUT") else {
        return;
    };
    std::fs::write(&path, fingerprint()).expect("write fingerprint");
}

#[test]
fn suite_is_byte_identical_under_thread_matrix() {
    if std::env::var("SMARTFEAT_MATRIX_OUT").is_ok() {
        return; // we are the worker — don't recurse
    }
    let exe = std::env::current_exe().expect("current exe");
    let mut fingerprints = Vec::new();
    for threads in ["1", "4", "8"] {
        let out_path = std::env::temp_dir().join(format!(
            "smartfeat_matrix_{}_{threads}.txt",
            std::process::id()
        ));
        let status = Command::new(&exe)
            .args(["--exact", "matrix_fingerprint_worker"])
            .env("SMARTFEAT_THREADS", threads)
            .env("SMARTFEAT_MATRIX_OUT", &out_path)
            .status()
            .expect("spawn matrix worker");
        assert!(
            status.success(),
            "worker with SMARTFEAT_THREADS={threads} failed"
        );
        let fp = std::fs::read_to_string(&out_path).expect("read fingerprint");
        let _ = std::fs::remove_file(&out_path);
        assert!(
            !fp.is_empty(),
            "empty fingerprint at SMARTFEAT_THREADS={threads}"
        );
        fingerprints.push(fp);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "SMARTFEAT_THREADS=1 and =4 fingerprints diverge"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "SMARTFEAT_THREADS=1 and =8 fingerprints diverge"
    );
}
