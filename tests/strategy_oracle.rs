//! Differential strategy-oracle layer.
//!
//! 1. `one_shot_matches_pre_refactor_golden` — the default `one_shot`
//!    strategy routed through the `SearchStrategy` trait must produce
//!    byte-identical `SmartFeatReport`s (generated features, augmented
//!    frame CSV, FM meter totals, downstream CV AUC) to the pre-refactor
//!    hard-coded pipeline, across 5 seeds on two datasets. The golden
//!    fingerprint in `tests/golden/strategy_oracle_one_shot.txt` was
//!    blessed from the commit *before* the trait existed; regenerating it
//!    (`SMARTFEAT_BLESS=1 cargo test --test strategy_oracle`) is only
//!    legitimate when the one-shot semantics intentionally change.
//! 2. `strategies_are_byte_identical_under_thread_matrix` — every search
//!    strategy re-executed under `SMARTFEAT_THREADS=1/4/8` must produce a
//!    byte-identical fingerprint (threads_matrix.rs re-exec idiom: spawn
//!    this test binary filtered to the worker, compare the written files).
//! 3. `strategies_are_identical_serial_vs_parallel_in_process` — the
//!    `config.threads` knob (1 vs 4) must not change any strategy's bytes
//!    within one process either.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

use smartfeat::{SearchStrategyKind, SmartFeat, SmartFeatConfig, SmartFeatReport};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::csv;
use smartfeat_ml::{kfold_cv_auc, Matrix, ModelKind};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("strategy_oracle_one_shot.txt")
}

/// Downstream CV score of an engineered frame: logistic regression,
/// 4-fold, fixed seed — deterministic and bit-identical across threads.
fn frame_auc(df: &smartfeat_frame::DataFrame, target: &str) -> f64 {
    let features: Vec<&str> = df
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = df.to_matrix(&features, 0.0).expect("frame to matrix");
    let x = Matrix::from_rows(rows).expect("rectangular matrix");
    let y = df.to_labels(target).expect("labels");
    kfold_cv_auc(ModelKind::LR, &x, &y, 4, 11).expect("cv score")
}

/// Digest one report to text: summary, full frame CSV, exact FM meter
/// deltas (cost as bit pattern), and the downstream AUC bit pattern.
fn digest(report: &SmartFeatReport, target: &str, out: &mut String) {
    out.push_str(&report.summary());
    out.push_str(&csv::write_csv_str(&report.frame));
    for (role, u) in [
        ("selector", &report.selector_usage),
        ("generator", &report.generator_usage),
    ] {
        writeln!(
            out,
            "{role} calls={} prompt={} completion={} cost={:016x}",
            u.calls,
            u.prompt_tokens,
            u.completion_tokens,
            u.cost_usd.to_bits()
        )
        .expect("write digest");
    }
    writeln!(
        out,
        "auc={:016x}",
        frame_auc(&report.frame, target).to_bits()
    )
    .expect("write digest");
}

/// The pre/post-refactor differential fingerprint: default config (the
/// `one_shot` strategy) across 5 seeds on two datasets.
fn one_shot_fingerprint() -> String {
    let mut out = String::new();
    for seed in [1u64, 2, 3, 4, 5] {
        for (name, ds) in [
            (
                "insurance",
                smartfeat_datasets::insurance::generate(60, seed),
            ),
            (
                "Heart",
                smartfeat_datasets::by_name("Heart", 120, seed).expect("Heart exists"),
            ),
        ] {
            let selector = SimulatedFm::gpt4(seed);
            let generator = SimulatedFm::gpt35(seed.wrapping_add(1));
            let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
                .run(&ds.frame, &ds.agenda("RF"))
                .expect("pipeline runs");
            writeln!(out, "## {name} seed={seed}").expect("write header");
            digest(&report, ds.target, &mut out);
        }
    }
    out
}

#[test]
fn one_shot_matches_pre_refactor_golden() {
    let fp = one_shot_fingerprint();
    let path = golden_path();
    if std::env::var("SMARTFEAT_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &fp).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with SMARTFEAT_BLESS=1 cargo test --test strategy_oracle",
            path.display()
        )
    });
    assert_eq!(
        golden, fp,
        "one_shot through the SearchStrategy trait diverged from the pre-refactor pipeline bytes"
    );
}

fn strategy_config(kind: SearchStrategyKind, threads: usize) -> SmartFeatConfig {
    let mut cfg = SmartFeatConfig::default();
    cfg.search.strategy = kind;
    cfg.threads = threads;
    cfg
}

/// Fingerprint every strategy end-to-end on two datasets. Thread counts
/// come from the environment unless `threads` pins them.
fn all_strategy_fingerprint(threads: usize) -> String {
    let mut out = String::new();
    for kind in SearchStrategyKind::all() {
        for (name, ds) in [
            ("insurance", smartfeat_datasets::insurance::generate(60, 7)),
            (
                "Heart",
                smartfeat_datasets::by_name("Heart", 120, 7).expect("Heart exists"),
            ),
        ] {
            let selector = SimulatedFm::gpt4(21);
            let generator = SimulatedFm::gpt35(22);
            let report = SmartFeat::new(&selector, &generator, strategy_config(kind, threads))
                .run(&ds.frame, &ds.agenda("RF"))
                .expect("pipeline runs");
            writeln!(out, "## {} {name}", kind.name()).expect("write header");
            digest(&report, ds.target, &mut out);
        }
    }
    out
}

/// Inner worker for the re-exec matrix: write the all-strategy
/// fingerprint to `SMARTFEAT_STRATEGY_MATRIX_OUT`. A no-op in ordinary
/// suite runs.
#[test]
fn strategy_matrix_worker() {
    let Ok(path) = std::env::var("SMARTFEAT_STRATEGY_MATRIX_OUT") else {
        return;
    };
    std::fs::write(&path, all_strategy_fingerprint(0)).expect("write fingerprint");
}

#[test]
fn strategies_are_byte_identical_under_thread_matrix() {
    if std::env::var("SMARTFEAT_STRATEGY_MATRIX_OUT").is_ok() {
        return; // we are the worker — don't recurse
    }
    let exe = std::env::current_exe().expect("current exe");
    let mut fingerprints = Vec::new();
    for threads in ["1", "4", "8"] {
        let out_path = std::env::temp_dir().join(format!(
            "smartfeat_strategy_matrix_{}_{threads}.txt",
            std::process::id()
        ));
        let status = Command::new(&exe)
            .args(["--exact", "strategy_matrix_worker"])
            .env("SMARTFEAT_THREADS", threads)
            .env("SMARTFEAT_STRATEGY_MATRIX_OUT", &out_path)
            .status()
            .expect("spawn strategy matrix worker");
        assert!(
            status.success(),
            "worker with SMARTFEAT_THREADS={threads} failed"
        );
        let fp = std::fs::read_to_string(&out_path).expect("read fingerprint");
        let _ = std::fs::remove_file(&out_path);
        assert!(
            !fp.is_empty(),
            "empty fingerprint at SMARTFEAT_THREADS={threads}"
        );
        fingerprints.push(fp);
    }
    for kind in SearchStrategyKind::all() {
        assert!(
            fingerprints[0].contains(&format!("## {} insurance", kind.name())),
            "{} missing from the fingerprint",
            kind.name()
        );
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "SMARTFEAT_THREADS=1 and =4 strategy fingerprints diverge"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "SMARTFEAT_THREADS=1 and =8 strategy fingerprints diverge"
    );
}

#[test]
fn strategies_are_identical_serial_vs_parallel_in_process() {
    if std::env::var("SMARTFEAT_THREADS").is_ok() {
        return; // the env override would mask the config knob under test
    }
    assert_eq!(
        all_strategy_fingerprint(1),
        all_strategy_fingerprint(4),
        "config.threads=1 and =4 strategy fingerprints diverge"
    );
}
