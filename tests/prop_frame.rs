//! Property-based tests over the frame substrate's invariants, driven by
//! the in-repo `smartfeat_rng::check` harness.

use smartfeat_repro::frame::csv;
use smartfeat_repro::frame::ops::{
    binary_op, bucketize, groupby_transform, normalize, AggFunc, BinaryOp, NormKind,
};
use smartfeat_repro::frame::sample::{kfold_indices, permutation, train_test_split};
use smartfeat_repro::frame::stats::{mutual_information, pearson};
use smartfeat_repro::prelude::*;
use smartfeat_repro::rng::check;
use smartfeat_repro::rng::Rng;

fn float_vec(rng: &mut Rng) -> Vec<f64> {
    check::vec_f64(rng, 2..60, -1e6..1e6)
}

#[test]
fn minmax_normalization_lands_in_unit_interval() {
    check::cases(64, |rng| {
        let values = float_vec(rng);
        let col = Column::from_f64("x", values);
        let normalized = normalize(&col, NormKind::MinMax, "n").unwrap();
        for v in normalized.to_f64().into_iter().flatten() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        }
    });
}

#[test]
fn zscore_normalization_centers() {
    check::cases(64, |rng| {
        let values = float_vec(rng);
        let col = Column::from_f64("x", values);
        let normalized = normalize(&col, NormKind::ZScore, "n").unwrap();
        let vals: Vec<f64> = normalized.to_f64().into_iter().flatten().collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 1e-6, "mean {mean}");
    });
}

#[test]
fn bucketize_is_monotone() {
    check::cases(64, |rng| {
        let values = float_vec(rng);
        let b1 = rng.gen_range(-100.0..0.0);
        let width = rng.gen_range(1.0..50.0);
        let bounds = vec![b1, b1 + width, b1 + 2.0 * width];
        let col = Column::from_f64("x", values.clone());
        let buckets = bucketize(&col, &bounds, "b").unwrap();
        let codes: Vec<f64> = buckets.to_f64().into_iter().flatten().collect();
        // Pairwise monotone: larger value ⇒ bucket index not smaller.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] <= values[j] {
                    assert!(codes[i] <= codes[j]);
                }
            }
        }
    });
}

#[test]
fn binary_sub_is_antisymmetric() {
    check::cases(64, |rng| {
        let a = float_vec(rng);
        let b: Vec<f64> = a.iter().map(|v| v * 0.5 + 3.0).collect();
        let ca = Column::from_f64("a", a);
        let cb = Column::from_f64("b", b);
        let ab = binary_op(&ca, &cb, BinaryOp::Sub, "ab").unwrap();
        let ba = binary_op(&cb, &ca, BinaryOp::Sub, "ba").unwrap();
        for (x, y) in ab.to_f64().into_iter().zip(ba.to_f64()) {
            match (x, y) {
                (Some(x), Some(y)) => assert!((x + y).abs() <= 1e-6 * x.abs().max(1.0)),
                (None, None) => {}
                other => panic!("null asymmetry: {other:?}"),
            }
        }
    });
}

#[test]
fn groupby_mean_is_constant_within_groups() {
    check::cases(64, |rng| {
        let n = rng.gen_range(5..80usize);
        let groups: Vec<String> = (0..n)
            .map(|_| format!("g{}", rng.gen_range(0..5u8)))
            .collect();
        let nums: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let group_refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &group_refs),
            Column::from_f64("v", nums),
        ])
        .unwrap();
        let agg = groupby_transform(&df, &["g"], "v", AggFunc::Mean, "m").unwrap();
        let agg_vals = agg.to_f64();
        // Same group ⇒ same aggregate.
        for i in 0..groups.len() {
            for j in 0..groups.len() {
                if groups[i] == groups[j] {
                    assert_eq!(agg_vals[i], agg_vals[j]);
                }
            }
        }
    });
}

#[test]
fn csv_roundtrip_preserves_rendered_cells() {
    check::cases(64, |rng| {
        let n = rng.gen_range(1..30usize);
        let ints: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let words: Vec<String> = (0..n)
            .map(|_| check::string_of(rng, "abcdefghijklmnopqrstuvwxyz,\" ", 12))
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_i64("i", ints),
            Column::from_strs("s", words.iter().map(|w| Some(w.clone())).collect()),
        ])
        .unwrap();
        // Quoted string cells make the round trip lossless even for empty
        // strings and numeric-looking text, and dtypes must survive too.
        assert!(csv::roundtrip_equal(&df));
    });
}

#[test]
fn permutation_is_bijective() {
    check::cases(64, |rng| {
        let n = rng.gen_range(1..500usize);
        let seed = rng.gen_range(0..1000u64);
        let mut p = permutation(n, seed);
        p.sort_unstable();
        assert_eq!(p, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn split_partitions_rows() {
    check::cases(64, |rng| {
        let n = rng.gen_range(4..200usize);
        let seed = rng.gen_range(0..100u64);
        let frac = rng.gen_range(0.1..0.9);
        let df =
            DataFrame::from_columns(vec![Column::from_i64("id", (0..n as i64).collect())]).unwrap();
        let (train, test) = train_test_split(&df, frac, seed).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), n);
    });
}

#[test]
fn kfold_each_row_validates_exactly_once() {
    check::cases(64, |rng| {
        let n = rng.gen_range(10..150usize);
        let k = rng.gen_range(2..6usize);
        let seed = rng.gen_range(0..50u64);
        let folds = kfold_indices(n, k, seed).unwrap();
        let mut seen = vec![0usize; n];
        for (_, valid) in &folds {
            for &i in valid {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    });
}

#[test]
fn pearson_is_symmetric_and_bounded() {
    check::cases(64, |rng| {
        let n = rng.gen_range(3..60usize);
        let a: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen_range(-100.0..100.0))).collect();
        let b: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen_range(-100.0..100.0))).collect();
        if let Some(r) = pearson(&a, &b) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&b, &a).unwrap();
            assert!((r - r2).abs() < 1e-12);
        }
    });
}

#[test]
fn mutual_information_nonnegative() {
    check::cases(64, |rng| {
        let n = rng.gen_range(4..100usize);
        let v: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen_range(-50.0..50.0))).collect();
        let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        let mi = mutual_information(&v, &labels, 8);
        assert!(mi >= 0.0);
    });
}
