//! Property-based tests (proptest) over the frame substrate's invariants.

use proptest::prelude::*;
use smartfeat_repro::frame::csv;
use smartfeat_repro::frame::ops::{
    binary_op, bucketize, groupby_transform, normalize, AggFunc, BinaryOp, NormKind,
};
use smartfeat_repro::frame::sample::{kfold_indices, permutation, train_test_split};
use smartfeat_repro::frame::stats::{mutual_information, pearson};
use smartfeat_repro::prelude::*;

fn float_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 2..60)
}

proptest! {
    #[test]
    fn minmax_normalization_lands_in_unit_interval(values in float_vec()) {
        let col = Column::from_f64("x", values);
        let normalized = normalize(&col, NormKind::MinMax, "n").unwrap();
        for v in normalized.to_f64().into_iter().flatten() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn zscore_normalization_centers(values in float_vec()) {
        let col = Column::from_f64("x", values);
        let normalized = normalize(&col, NormKind::ZScore, "n").unwrap();
        let vals: Vec<f64> = normalized.to_f64().into_iter().flatten().collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        prop_assert!(mean.abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn bucketize_is_monotone(values in float_vec(), b1 in -100.0f64..0.0, width in 1.0f64..50.0) {
        let bounds = vec![b1, b1 + width, b1 + 2.0 * width];
        let col = Column::from_f64("x", values.clone());
        let buckets = bucketize(&col, &bounds, "b").unwrap();
        let codes: Vec<f64> = buckets.to_f64().into_iter().flatten().collect();
        // Pairwise monotone: larger value ⇒ bucket index not smaller.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] <= values[j] {
                    prop_assert!(codes[i] <= codes[j]);
                }
            }
        }
    }

    #[test]
    fn binary_sub_is_antisymmetric(a in float_vec()) {
        let b: Vec<f64> = a.iter().map(|v| v * 0.5 + 3.0).collect();
        let ca = Column::from_f64("a", a);
        let cb = Column::from_f64("b", b);
        let ab = binary_op(&ca, &cb, BinaryOp::Sub, "ab").unwrap();
        let ba = binary_op(&cb, &ca, BinaryOp::Sub, "ba").unwrap();
        for (x, y) in ab.to_f64().into_iter().zip(ba.to_f64()) {
            match (x, y) {
                (Some(x), Some(y)) => prop_assert!((x + y).abs() <= 1e-6 * x.abs().max(1.0)),
                (None, None) => {}
                other => prop_assert!(false, "null asymmetry: {other:?}"),
            }
        }
    }

    #[test]
    fn groupby_mean_is_constant_within_groups(
        values in proptest::collection::vec((0u8..5, -100.0f64..100.0), 5..80)
    ) {
        let groups: Vec<String> = values.iter().map(|(g, _)| format!("g{g}")).collect();
        let group_refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        let nums: Vec<f64> = values.iter().map(|(_, v)| *v).collect();
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("g", &group_refs),
            Column::from_f64("v", nums),
        ]).unwrap();
        let agg = groupby_transform(&df, &["g"], "v", AggFunc::Mean, "m").unwrap();
        let agg_vals = agg.to_f64();
        // Same group ⇒ same aggregate.
        for i in 0..groups.len() {
            for j in 0..groups.len() {
                if groups[i] == groups[j] {
                    prop_assert_eq!(agg_vals[i], agg_vals[j]);
                }
            }
        }
    }

    #[test]
    fn csv_roundtrip_preserves_rendered_cells(
        ints in proptest::collection::vec(-1000i64..1000, 1..30),
        words in proptest::collection::vec("[a-z,\" ]{0,12}", 1..30),
    ) {
        let n = ints.len().min(words.len());
        let df = DataFrame::from_columns(vec![
            Column::from_i64("i", ints[..n].to_vec()),
            Column::from_strs("s", words[..n].iter().map(|w| Some(w.clone())).collect()),
        ]).unwrap();
        // Empty strings legitimately round-trip to nulls; skip those frames.
        if words[..n].iter().all(|w| !w.is_empty()) {
            prop_assert!(csv::roundtrip_equal(&df));
        }
    }

    #[test]
    fn permutation_is_bijective(n in 1usize..500, seed in 0u64..1000) {
        let mut p = permutation(n, seed);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn split_partitions_rows(n in 4usize..200, seed in 0u64..100, frac in 0.1f64..0.9) {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("id", (0..n as i64).collect()),
        ]).unwrap();
        let (train, test) = train_test_split(&df, frac, seed).unwrap();
        prop_assert_eq!(train.n_rows() + test.n_rows(), n);
    }

    #[test]
    fn kfold_each_row_validates_exactly_once(n in 10usize..150, k in 2usize..6, seed in 0u64..50) {
        let folds = kfold_indices(n, k, seed).unwrap();
        let mut seen = vec![0usize; n];
        for (_, valid) in &folds {
            for &i in valid {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..60)) {
        let a: Vec<Option<f64>> = pairs.iter().map(|(x, _)| Some(*x)).collect();
        let b: Vec<Option<f64>> = pairs.iter().map(|(_, y)| Some(*y)).collect();
        if let Some(r) = pearson(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&b, &a).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn mutual_information_nonnegative(
        values in proptest::collection::vec(-50.0f64..50.0, 4..100),
        labels in proptest::collection::vec(0u8..2, 4..100),
    ) {
        let n = values.len().min(labels.len());
        let v: Vec<Option<f64>> = values[..n].iter().map(|x| Some(*x)).collect();
        let mi = mutual_information(&v, &labels[..n], 8);
        prop_assert!(mi >= 0.0);
    }
}
