//! End-to-end integration tests: the full SMARTFEAT pipeline over the
//! synthetic datasets, exercising every crate together.

use smartfeat_repro::core::config::{OperatorFamily, OperatorMask};
use smartfeat_repro::prelude::*;

fn run(ds: &Dataset, seed: u64) -> SmartFeatReport {
    let selector = SimulatedFm::gpt4(seed);
    let generator = SimulatedFm::gpt35(seed + 1);
    let tool = SmartFeat::new(&selector, &generator, SmartFeatConfig::default());
    tool.run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
}

#[test]
fn pipeline_runs_on_every_dataset() {
    for ds in smartfeat_repro::datasets::all_scaled(0.05, 3) {
        let report = run(&ds, 7);
        assert!(
            !report.generated.is_empty(),
            "{}: no features generated",
            ds.name
        );
        // Frame stays rectangular and keeps the target.
        assert!(report.frame.has_column(ds.target), "{}", ds.name);
        assert_eq!(report.frame.n_rows(), ds.frame.n_rows(), "{}", ds.name);
        // Every generated feature exists, has both classes of provenance
        // recorded, and appears in the final agenda.
        for g in &report.generated {
            assert!(report.frame.has_column(&g.name), "{}: {}", ds.name, g.name);
            assert!(report.agenda.has(&g.name), "{}: {}", ds.name, g.name);
            assert!(!g.columns.is_empty(), "{}: {}", ds.name, g.name);
        }
    }
}

#[test]
fn generated_features_pass_their_own_filter() {
    // Everything the filter admitted must itself be non-constant and
    // not overly null — the filter's postcondition.
    let ds = smartfeat_repro::datasets::by_name("Adult", 400, 5).expect("adult");
    let report = run(&ds, 11);
    for g in &report.generated {
        let col = report.frame.column(&g.name).expect("exists");
        assert!(!col.is_constant(), "{} is constant", g.name);
        assert!(
            col.null_fraction() <= 0.5,
            "{} is {:.0}% null",
            g.name,
            col.null_fraction() * 100.0
        );
    }
}

#[test]
fn insurance_example_reproduces_paper_features() {
    let ds = smartfeat_repro::datasets::insurance::generate(300, 7);
    let report = run(&ds, 42);
    let names = report.new_feature_names().join(",");
    assert!(names.contains("Bucketized_Age"), "F1 missing: {names}");
    assert!(
        names.contains("YearsSince_Age_of_car"),
        "F2 missing: {names}"
    );
    assert!(names.contains("GroupBy_"), "F3-style missing: {names}");
    assert!(names.contains("population_density"), "F4 missing: {names}");
}

#[test]
fn union_of_single_family_runs_is_consistent_with_families() {
    let ds = smartfeat_repro::datasets::by_name("Tennis", 250, 2).expect("tennis");
    for family in OperatorFamily::all() {
        let selector = SimulatedFm::gpt4(3);
        let generator = SimulatedFm::gpt35(4);
        let config = SmartFeatConfig {
            operators: OperatorMask::only(family),
            ..SmartFeatConfig::default()
        };
        let report = SmartFeat::new(&selector, &generator, config)
            .run(&ds.frame, &ds.agenda("RF"))
            .expect("runs");
        for g in &report.generated {
            assert_eq!(g.family, family, "family leak: {:?}", g);
        }
    }
}

#[test]
fn usage_accounting_is_exact_across_runs() {
    let ds = smartfeat_repro::datasets::by_name("Diabetes", 250, 1).expect("diabetes");
    let selector = SimulatedFm::gpt4(5);
    let generator = SimulatedFm::gpt35(6);
    let tool = SmartFeat::new(&selector, &generator, SmartFeatConfig::default());
    let r1 = tool.run(&ds.frame, &ds.agenda("RF")).expect("runs");
    let r2 = tool.run(&ds.frame, &ds.agenda("RF")).expect("runs");
    // Per-run deltas must match the meters' totals.
    use smartfeat_repro::fm::FoundationModel;
    assert_eq!(
        selector.meter().snapshot().calls,
        r1.selector_usage.calls + r2.selector_usage.calls
    );
    assert_eq!(
        generator.meter().snapshot().calls,
        r1.generator_usage.calls + r2.generator_usage.calls
    );
}

#[test]
fn names_only_generates_no_more_than_full_descriptions() {
    let ds = smartfeat_repro::datasets::by_name("Tennis", 300, 9).expect("tennis");
    let full = run(&ds, 13);
    let selector = SimulatedFm::gpt4(13);
    let generator = SimulatedFm::gpt35(14);
    let bare = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
        .run(&ds.frame, &ds.agenda_names_only("RF"))
        .expect("runs");
    assert!(bare.generated.len() <= full.generated.len());
    // Sport-specific extraction needs the descriptions: the bare run must
    // not contain the weighted performance index.
    assert!(
        !bare
            .new_feature_names()
            .join(",")
            .contains("Performance_index")
            || full
                .new_feature_names()
                .join(",")
                .contains("Performance_index")
    );
}

#[test]
fn budget_exhaustion_surfaces_as_error() {
    let ds = smartfeat_repro::datasets::by_name("Heart", 250, 4).expect("heart");
    let selector = SimulatedFm::new(
        smartfeat_repro::fm::ModelSpec::gpt4(),
        smartfeat_repro::fm::FmConfig {
            seed: 0,
            call_budget: Some(3),
            ..smartfeat_repro::fm::FmConfig::default()
        },
    );
    let generator = SimulatedFm::gpt35(1);
    let result = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
        .run(&ds.frame, &ds.agenda("RF"));
    assert!(result.is_err(), "3-call budget cannot finish a full run");
}
