//! Property-based robustness tests for the simulated FM and the core's
//! FM-output parsers: arbitrary text must never panic, and every response
//! must be well-accounted. Driven by the in-repo `smartfeat_rng::check`
//! harness.

use smartfeat_repro::core::fmout;
use smartfeat_repro::fm::FoundationModel;
use smartfeat_repro::prelude::*;
use smartfeat_repro::rng::check;

/// The oracle must answer *any* prompt without panicking, with exact
/// token accounting.
#[test]
fn oracle_never_panics_on_arbitrary_prompts() {
    check::cases(64, |rng| {
        let prompt = check::arbitrary_text(rng, 400);
        let fm = SimulatedFm::gpt4(7);
        let r = fm.complete(&prompt).expect("no budget configured");
        assert!(!r.text.is_empty() || prompt.is_empty() || r.completion_tokens == 0);
        assert!(r.cost_usd >= 0.0);
        let snap = fm.meter().snapshot();
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.prompt_tokens, r.prompt_tokens);
    });
}

/// Prompts that *look like* template requests but carry garbage context
/// still produce parseable-or-gracefully-unhelpful answers, never panics.
#[test]
fn oracle_survives_mangled_template_prompts() {
    const GARBAGE_CHARSET: &str =
        "-ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789(){}:,.'\"\n ";
    check::cases(64, |rng| {
        let garbage = check::string_of(rng, GARBAGE_CHARSET, 200);
        let which = rng.gen_range(0..4usize);
        let marker = [
            "Consider the unary operators on the attribute",
            "Propose one binary arithmetic feature",
            "Generate a groupby feature",
            "Propose one extractor feature",
        ][which];
        let prompt = format!("{garbage}\n{marker} {garbage}");
        let fm = SimulatedFm::gpt4(11);
        let r = fm.complete(&prompt).expect("no budget");
        // Whatever came back, the core parsers must not panic on it.
        let _ = fmout::parse_proposals(&r.text);
        let _ = fmout::parse_dict(&r.text);
        let _ = fmout::parse_function_spec(&r.text);
    });
}

/// The tolerant dict parser never panics and never fabricates keys.
#[test]
fn dict_parser_total_on_arbitrary_text() {
    check::cases(64, |rng| {
        let text = check::arbitrary_text(rng, 300);
        if let Some(d) = fmout::parse_dict(&text) {
            assert!(!d.is_empty());
            for key in d.keys() {
                assert!(text.contains(key.as_str()));
            }
        }
    });
}

/// Proposal-line parsing is total and only accepts known confidences.
#[test]
fn proposal_parser_total() {
    check::cases(64, |rng| {
        let text = check::arbitrary_text(rng, 300);
        for line in fmout::parse_proposals(&text) {
            assert!(!line.op.is_empty());
            assert!(!line.op.contains(' '));
        }
    });
}

/// The prompt-context reader is total on arbitrary card-ish text.
#[test]
fn prompt_context_parser_total() {
    const CARD_CHARSET: &str =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_() =,:.";
    check::cases(64, |rng| {
        let lines = rng.gen_range(0..=8usize);
        let text: String = (0..lines)
            .map(|_| format!("- {}\n", check::string_of(rng, CARD_CHARSET, 60)))
            .collect();
        let ctx = smartfeat_repro::fm::parse::PromptContext::parse(&text);
        for f in &ctx.features {
            assert!(!f.name.is_empty());
        }
    });
}
