//! Property-based robustness tests for the simulated FM and the core's
//! FM-output parsers: arbitrary text must never panic, and every response
//! must be well-accounted.

use proptest::prelude::*;
use smartfeat_repro::core::fmout;
use smartfeat_repro::fm::FoundationModel;
use smartfeat_repro::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The oracle must answer *any* prompt without panicking, with exact
    /// token accounting.
    #[test]
    fn oracle_never_panics_on_arbitrary_prompts(prompt in ".{0,400}") {
        let fm = SimulatedFm::gpt4(7);
        let r = fm.complete(&prompt).expect("no budget configured");
        prop_assert!(!r.text.is_empty() || prompt.is_empty() || r.completion_tokens == 0);
        prop_assert!(r.cost_usd >= 0.0);
        let snap = fm.meter().snapshot();
        prop_assert_eq!(snap.calls, 1);
        prop_assert_eq!(snap.prompt_tokens, r.prompt_tokens);
    }

    /// Prompts that *look like* template requests but carry garbage context
    /// still produce parseable-or-gracefully-unhelpful answers, never panics.
    #[test]
    fn oracle_survives_mangled_template_prompts(
        garbage in "[-A-Za-z0-9(){}:,.'\"\n ]{0,200}",
        which in 0usize..4,
    ) {
        let marker = [
            "Consider the unary operators on the attribute",
            "Propose one binary arithmetic feature",
            "Generate a groupby feature",
            "Propose one extractor feature",
        ][which];
        let prompt = format!("{garbage}\n{marker} {garbage}");
        let fm = SimulatedFm::gpt4(11);
        let r = fm.complete(&prompt).expect("no budget");
        // Whatever came back, the core parsers must not panic on it.
        let _ = fmout::parse_proposals(&r.text);
        let _ = fmout::parse_dict(&r.text);
        let _ = fmout::parse_function_spec(&r.text);
    }

    /// The tolerant dict parser never panics and never fabricates keys.
    #[test]
    fn dict_parser_total_on_arbitrary_text(text in ".{0,300}") {
        if let Some(d) = fmout::parse_dict(&text) {
            prop_assert!(!d.is_empty());
            for key in d.keys() {
                prop_assert!(text.contains(key.as_str()));
            }
        }
    }

    /// Proposal-line parsing is total and only accepts known confidences.
    #[test]
    fn proposal_parser_total(text in ".{0,300}") {
        for line in fmout::parse_proposals(&text) {
            prop_assert!(!line.op.is_empty());
            prop_assert!(!line.op.contains(' '));
        }
    }

    /// The prompt-context reader is total on arbitrary card-ish text.
    #[test]
    fn prompt_context_parser_total(text in "(- [A-Za-z0-9_() =,:.]{0,60}\n){0,8}") {
        let ctx = smartfeat_repro::fm::parse::PromptContext::parse(&text);
        for f in &ctx.features {
            prop_assert!(!f.name.is_empty());
        }
    }
}
