//! Property tests for the `smartfeat-par` pool, plus a stress test of the
//! FM usage meter under concurrent recording.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use smartfeat_fm::stats::CallRecord;
use smartfeat_fm::UsageMeter;
use smartfeat_rng::check;

fn record(i: usize) -> CallRecord {
    CallRecord {
        model: "stress".to_string(),
        prompt_tokens: 1 + i,
        completion_tokens: 2 + i,
        cost_usd: 1e-4,
        latency: std::time::Duration::from_millis(3),
        kind: "stress_task".to_string(),
    }
}

#[test]
fn par_map_preserves_order_and_length_for_arbitrary_shapes() {
    check::cases(64, |rng| {
        let n = rng.gen_range(0..200usize);
        let threads = rng.gen_range(1..12usize);
        let items: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(rng.next_u64() | 1))
            .collect();
        let out = smartfeat_par::par_map(threads, &items, |&x| x.wrapping_add(1));
        assert_eq!(out.len(), items.len());
        for (o, x) in out.iter().zip(&items) {
            assert_eq!(*o, x.wrapping_add(1));
        }
    });
}

#[test]
fn par_map_matches_serial_map_exactly() {
    check::cases(48, |rng| {
        let n = rng.gen_range(1..150usize);
        let threads = rng.gen_range(2..10usize);
        let items = check::vec_f64(rng, n..n + 1, -100.0..100.0);
        let serial: Vec<u64> = items.iter().map(|x| (x * 3.5 - 1.0).to_bits()).collect();
        let parallel = smartfeat_par::par_map(threads, &items, |x| (x * 3.5 - 1.0).to_bits());
        assert_eq!(parallel, serial);
    });
}

#[test]
fn panicking_task_propagates_without_deadlock() {
    check::cases(24, |rng| {
        let n = rng.gen_range(2..60usize);
        let threads = rng.gen_range(2..8usize);
        let bad = rng.gen_range(0..n);
        let result = catch_unwind(AssertUnwindSafe(|| {
            smartfeat_par::par_map_indexed(threads, n, |i| {
                assert_ne!(i, bad, "poisoned task");
                i
            })
        }));
        assert!(result.is_err(), "panic at index {bad} must propagate");
    });
}

#[test]
fn nested_scopes_complete() {
    check::cases(16, |rng| {
        let outer = rng.gen_range(1..5usize);
        let inner = rng.gen_range(1..5usize);
        let count = AtomicUsize::new(0);
        let totals = smartfeat_par::par_map_indexed(outer.min(4), outer, |_| {
            smartfeat_par::scope(|s| {
                let handles: Vec<_> = (0..inner)
                    .map(|_| s.spawn(|| count.fetch_add(1, Ordering::Relaxed)))
                    .collect();
                let mut joined = 0;
                for h in handles {
                    h.join();
                    joined += 1;
                }
                joined
            })
        });
        assert_eq!(totals, vec![inner; outer]);
        assert_eq!(count.load(Ordering::Relaxed), outer * inner);
    });
}

#[test]
fn usage_meter_totals_survive_concurrent_recording() {
    // ~100 tasks record into one shared meter from the pool; the final
    // counts must equal the serial sum regardless of interleaving.
    let tasks = 100usize;
    let serial = UsageMeter::new();
    for i in 0..tasks {
        serial.record(record(i));
    }
    let expected = serial.snapshot();

    for threads in [2usize, 4, 8] {
        let meter = UsageMeter::new();
        smartfeat_par::par_map_indexed(threads, tasks, |i| {
            meter.record(record(i));
        });
        let got = meter.snapshot();
        assert_eq!(got.calls, expected.calls, "{threads} threads");
        assert_eq!(
            got.prompt_tokens, expected.prompt_tokens,
            "{threads} threads"
        );
        assert_eq!(
            got.completion_tokens, expected.completion_tokens,
            "{threads} threads"
        );
        assert_eq!(got.latency, expected.latency, "{threads} threads");
        assert!(
            (got.cost_usd - expected.cost_usd).abs() < 1e-12,
            "{threads} threads: {} vs {}",
            got.cost_usd,
            expected.cost_usd
        );
    }
}
