//! Golden obs-trace tests: one small fixed-seed run per search strategy,
//! with the search-relevant slice of the JSONL trace blessed under
//! `tests/golden/strategy_trace_<name>.jsonl`.
//!
//! The slice keeps `span_start`/`span_end` events for the search stage,
//! its phases, and per-round/generation/turn spans, plus every
//! `search.*` event — with the logical timestamp stripped, so the golden
//! pins the *structure* (which spans open, in what order, with which
//! events inside) without coupling to unrelated event counts. Regenerate
//! with `SMARTFEAT_BLESS=1 cargo test --test strategy_trace` only when a
//! strategy's control flow intentionally changes.

use std::path::PathBuf;

use smartfeat::config::ObservabilityConfig;
use smartfeat::{SearchStrategyKind, SmartFeat, SmartFeatConfig};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::json::JsonValue;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("strategy_trace_{name}.jsonl"))
}

/// Whether a trace line belongs to the blessed search slice.
fn in_slice(event: &JsonValue) -> bool {
    let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
    if kind.starts_with("search.") {
        return true;
    }
    if kind == "span_start" || kind == "span_end" {
        let name = event.get("name").and_then(JsonValue::as_str).unwrap_or("");
        return name.starts_with("stage.search")
            || name.starts_with("phase.")
            || name.starts_with("search.");
    }
    false
}

/// One strategy's search-trace slice: filtered lines with `t` removed.
fn trace_slice(kind: SearchStrategyKind) -> String {
    let trace = std::env::temp_dir().join(format!(
        "smartfeat_strategy_trace_{}_{}.jsonl",
        kind.name(),
        std::process::id()
    ));
    let mut cfg = SmartFeatConfig::default();
    cfg.search.strategy = kind;
    cfg.observability = ObservabilityConfig {
        enabled: true,
        trace_out: Some(trace.display().to_string()),
        metrics_out: None,
    };
    let ds = smartfeat_datasets::insurance::generate(40, 5);
    let selector = SimulatedFm::gpt4(13);
    let generator = SimulatedFm::gpt35(14);
    SmartFeat::new(&selector, &generator, cfg)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let mut out = String::new();
    for line in text.lines() {
        let event = JsonValue::parse(line).expect("trace line is JSON");
        if !in_slice(&event) {
            continue;
        }
        let JsonValue::Object(mut map) = event else {
            panic!("trace event is not an object");
        };
        map.remove("t");
        out.push_str(&JsonValue::Object(map).emit());
        out.push('\n');
    }
    out
}

fn check_golden(kind: SearchStrategyKind) {
    let slice = trace_slice(kind);
    let path = golden_path(kind.name());
    if std::env::var("SMARTFEAT_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &slice).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with SMARTFEAT_BLESS=1 cargo test --test strategy_trace",
            path.display()
        )
    });
    assert_eq!(
        golden,
        slice,
        "{} search-trace slice diverged from the blessed golden",
        kind.name()
    );
    // Structural floor independent of the golden bytes.
    let stage = format!("\"name\":\"stage.search.{}\"", kind.name());
    assert!(slice.contains(&stage), "trace is missing the {stage} span");
    let per_step = match kind {
        SearchStrategyKind::OneShot => "\"name\":\"phase.unary\"",
        SearchStrategyKind::Beam => "\"kind\":\"search.beam.round\"",
        SearchStrategyKind::Evolutionary => "\"kind\":\"search.generation\"",
        SearchStrategyKind::React => "\"kind\":\"search.react.turn\"",
    };
    assert!(
        slice.contains(per_step),
        "{} trace is missing its per-step marker {per_step}",
        kind.name()
    );
}

#[test]
fn one_shot_trace_matches_golden() {
    check_golden(SearchStrategyKind::OneShot);
}

#[test]
fn beam_trace_matches_golden() {
    check_golden(SearchStrategyKind::Beam);
}

#[test]
fn evolutionary_trace_matches_golden() {
    check_golden(SearchStrategyKind::Evolutionary);
}

#[test]
fn react_trace_matches_golden() {
    check_golden(SearchStrategyKind::React);
}
