//! Integration tests for the three baselines against the synthetic
//! datasets, checking the paper's qualitative contrasts.

use std::time::Duration;

use smartfeat_repro::baselines::{AfeMethod, AutoFeat, Caafe, Featuretools};
use smartfeat_repro::prelude::*;

fn prepared(name: &str, rows: usize, seed: u64) -> (Dataset, DataFrame, Vec<String>) {
    let ds = smartfeat_repro::datasets::by_name(name, rows, seed).expect("dataset");
    let (mut frame, _) = ds.frame.dropna();
    let categorical: Vec<String> = frame
        .columns()
        .iter()
        .filter(|c| !c.is_numeric())
        .map(|c| c.name().to_string())
        .collect();
    frame.factorize_strings();
    (ds, frame, categorical)
}

#[test]
fn featuretools_is_context_free_and_exhaustive() {
    let (ds, frame, cats) = prepared("Adult", 300, 1);
    let out = Featuretools::default().run(&frame, ds.target, &cats, Duration::from_secs(60));
    assert!(out.failure.is_none());
    // Exhaustive: far more candidates than SMARTFEAT's ~30.
    assert!(out.generated_count > 100, "{}", out.generated_count);
    // Context-free: it happily multiplies factorized category codes.
    assert!(
        out.new_features.iter().any(|f| f.contains("workclass")),
        "no code-product features: {:?}",
        &out.new_features[..out.new_features.len().min(8)]
    );
}

#[test]
fn autofeat_discards_most_of_its_expansion() {
    let (ds, frame, cats) = prepared("Tennis", 300, 2);
    let out = AutoFeat::default().run(&frame, ds.target, &cats, Duration::from_secs(120));
    assert!(out.generated_count > 1000, "{}", out.generated_count);
    assert!(out.selected_count <= 5, "{}", out.selected_count);
    // Originals are not guaranteed to survive — that is its failure mode.
    let n_original_survivors = ds
        .frame
        .column_names()
        .iter()
        .filter(|n| **n != ds.target && out.frame.has_column(n))
        .count();
    assert!(n_original_survivors <= 12);
}

#[test]
fn caafe_only_keeps_validated_improvements() {
    let (ds, frame, cats) = prepared("Housing", 500, 3);
    let fm = SimulatedFm::gpt4(4);
    let caafe = Caafe::new(&fm, ds.agenda("RF"), ModelKind::LR, 5);
    let out = caafe.run(&frame, ds.target, &cats, Duration::from_secs(120));
    assert!(out.failure.is_none(), "{:?}", out.failure);
    assert!(out.selected_count <= out.generated_count);
    for f in &out.new_features {
        assert!(out.frame.has_column(f));
    }
}

#[test]
fn caafe_diabetes_failure_is_reproducible_at_seed() {
    // Seed sweep: the divide-by-zero failure must occur on Diabetes but
    // not on Tennis (whose count stats have no zeros).
    let (dia, dia_frame, dia_cats) = prepared("Diabetes", 400, 1);
    let mut dia_failures = 0;
    for seed in 0..6 {
        let fm = SimulatedFm::gpt4(seed);
        let caafe = Caafe::new(&fm, dia.agenda("LR"), ModelKind::LR, seed);
        let out = caafe.run(&dia_frame, dia.target, &dia_cats, Duration::from_secs(60));
        dia_failures += usize::from(out.failure.is_some());
    }
    assert!(dia_failures >= 1, "Diabetes never failed");

    let (ten, ten_frame, ten_cats) = prepared("Tennis", 300, 1);
    for seed in 0..4 {
        let fm = SimulatedFm::gpt4(seed);
        let caafe = Caafe::new(&fm, ten.agenda("LR"), ModelKind::LR, seed);
        let out = caafe.run(&ten_frame, ten.target, &ten_cats, Duration::from_secs(60));
        assert!(out.failure.is_none(), "Tennis failed at seed {seed}");
    }
}

#[test]
fn every_method_respects_deadlines() {
    let (ds, frame, cats) = prepared("Bank", 2000, 5);
    let methods: Vec<Box<dyn AfeMethod>> = vec![
        Box::new(Featuretools::default()),
        Box::new(AutoFeat::default()),
    ];
    for m in &methods {
        let out = m.run(&frame, ds.target, &cats, Duration::ZERO);
        assert!(out.timed_out, "{} ignored its deadline", m.name());
    }
}
