//! Cascade-routing integration layer.
//!
//! 1. `config_without_cascade_keys_reproduces_single_model_bytes` — a
//!    config JSON serialized before `backend`/`cascade` existed must load
//!    as the single-model default AND reproduce the default pipeline's
//!    report digest byte-for-byte (the PR-7 compatibility contract).
//! 2. `cascade_metrics_report_per_family_routing_stats` — a cascade run
//!    emits a `routing` section in the JSON metrics report whose per-call
//!    totals reconcile exactly with the FM usage meters; single-model
//!    runs emit no `routing` key at all.
//! 3. `cascade_is_byte_identical_under_thread_matrix` — all four search
//!    strategies under the cascade, re-executed with
//!    `SMARTFEAT_THREADS=1/4/8`, produce byte-identical fingerprints
//!    (report digest + metrics report bytes).
//! 4. `single_backend_override_serves_both_roles` — `--backend`-style
//!    configs run end to end on one family.

use std::fmt::Write as _;
use std::process::Command;

use smartfeat::{
    build_role_fms, BackendKind, CascadeConfig, SearchStrategyKind, SmartFeat, SmartFeatConfig,
    SmartFeatReport,
};
use smartfeat_fm::FoundationModel;
use smartfeat_frame::csv;
use smartfeat_frame::json::JsonValue;
use smartfeat_ml::{kfold_cv_auc, Matrix, ModelKind};

/// Downstream CV score of an engineered frame: logistic regression,
/// 4-fold, fixed seed — deterministic and bit-identical across threads.
fn frame_auc(df: &smartfeat_frame::DataFrame, target: &str) -> f64 {
    let features: Vec<&str> = df
        .column_names()
        .into_iter()
        .filter(|n| *n != target)
        .collect();
    let rows = df.to_matrix(&features, 0.0).expect("frame to matrix");
    let x = Matrix::from_rows(rows).expect("rectangular matrix");
    let y = df.to_labels(target).expect("labels");
    kfold_cv_auc(ModelKind::LR, &x, &y, 4, 11).expect("cv score")
}

/// Digest one report to text: summary, full frame CSV, exact FM meter
/// deltas (cost as bit pattern), and the downstream AUC bit pattern.
fn digest(report: &SmartFeatReport, target: &str, out: &mut String) {
    out.push_str(&report.summary());
    out.push_str(&csv::write_csv_str(&report.frame));
    for (role, u) in [
        ("selector", &report.selector_usage),
        ("generator", &report.generator_usage),
    ] {
        writeln!(
            out,
            "{role} calls={} prompt={} completion={} cost={:016x}",
            u.calls,
            u.prompt_tokens,
            u.completion_tokens,
            u.cost_usd.to_bits()
        )
        .expect("write digest");
    }
    writeln!(
        out,
        "auc={:016x}",
        frame_auc(&report.frame, target).to_bits()
    )
    .expect("write digest");
}

/// Run the pipeline with whatever FM pairing `config` asks for.
fn run_with_config(config: SmartFeatConfig) -> SmartFeatReport {
    let ds = smartfeat_datasets::insurance::generate(60, 7);
    let (selector, generator) = build_role_fms(&config);
    SmartFeat::new(&selector, &generator, config)
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs")
}

#[test]
fn config_without_cascade_keys_reproduces_single_model_bytes() {
    // Strip the PR-8 keys the way a pre-cascade serializer would have:
    // they simply would not be in the object.
    let text = SmartFeatConfig::default().to_json_string();
    let mut v = JsonValue::parse(&text).expect("default config parses");
    let JsonValue::Object(map) = &mut v else {
        panic!("config JSON is an object");
    };
    assert!(map.remove("backend").is_some(), "backend key serialized");
    assert!(map.remove("cascade").is_some(), "cascade key serialized");
    let back = SmartFeatConfig::from_json_string(&v.to_string()).expect("old-shape config loads");
    assert_eq!(
        back,
        SmartFeatConfig::default(),
        "a config without backend/cascade keys must load as the single-model default"
    );

    let mut old = String::new();
    let mut new = String::new();
    digest(&run_with_config(back), "Safe", &mut old);
    digest(
        &run_with_config(SmartFeatConfig::default()),
        "Safe",
        &mut new,
    );
    assert_eq!(
        old, new,
        "pre-cascade config shape must reproduce the default report byte-for-byte"
    );
}

fn cascade_config() -> SmartFeatConfig {
    SmartFeatConfig {
        cascade: CascadeConfig {
            enabled: true,
            ..CascadeConfig::default()
        },
        ..SmartFeatConfig::default()
    }
}

#[test]
fn cascade_metrics_report_per_family_routing_stats() {
    let dir = std::env::temp_dir();
    let cascade_path = dir.join(format!(
        "smartfeat_cascade_metrics_{}.json",
        std::process::id()
    ));
    let single_path = dir.join(format!(
        "smartfeat_single_metrics_{}.json",
        std::process::id()
    ));

    let mut config = cascade_config();
    config.observability.metrics_out = Some(cascade_path.display().to_string());
    let report = run_with_config(config);
    let metrics = std::fs::read_to_string(&cascade_path).expect("metrics written");
    let _ = std::fs::remove_file(&cascade_path);
    let v = JsonValue::parse(&metrics).expect("metrics parse");
    let Some(JsonValue::Object(routing)) = v.get("routing") else {
        panic!("cascade metrics must contain a routing object; got {metrics}");
    };
    assert!(
        routing.len() >= 2,
        "cascade should exercise at least two families: {routing:?}"
    );
    let field = |o: &JsonValue, k: &str| -> f64 {
        match o.get(k) {
            Some(JsonValue::Num(n)) => *n,
            other => panic!("routing entry field {k} missing: {other:?}"),
        }
    };
    let mut calls = 0.0;
    let mut escalations = 0.0;
    for stat in routing.values() {
        calls += field(stat, "calls");
        escalations += field(stat, "escalations");
        assert!(field(stat, "cost_usd") > 0.0, "every used family has cost");
    }
    assert!(
        escalations > 0.0,
        "the ladder should escalate at least once"
    );
    // Every rung attempt is one metered call on the shared meter, so the
    // routing totals must reconcile exactly with the role usage deltas.
    assert_eq!(
        calls as u64,
        (report.selector_usage.calls + report.generator_usage.calls) as u64,
        "routing calls must equal the summed role meter calls"
    );

    let mut config = SmartFeatConfig::default();
    config.observability.metrics_out = Some(single_path.display().to_string());
    run_with_config(config);
    let metrics = std::fs::read_to_string(&single_path).expect("metrics written");
    let _ = std::fs::remove_file(&single_path);
    let v = JsonValue::parse(&metrics).expect("metrics parse");
    assert!(
        v.get("routing").is_none(),
        "single-model runs must not grow a routing key (PR-7 byte compatibility)"
    );
}

/// Fingerprint all four strategies under the cascade, plus the metrics
/// report bytes of the last run.
fn cascade_fingerprint() -> String {
    let mut out = String::new();
    let metrics_path = std::env::temp_dir().join(format!(
        "smartfeat_cascade_fp_metrics_{}.json",
        std::process::id()
    ));
    for kind in SearchStrategyKind::all() {
        let ds = smartfeat_datasets::insurance::generate(60, 7);
        let mut config = cascade_config();
        config.search.strategy = kind;
        config.observability.metrics_out = Some(metrics_path.display().to_string());
        let (selector, generator) = build_role_fms(&config);
        let report = SmartFeat::new(&selector, &generator, config)
            .run(&ds.frame, &ds.agenda("RF"))
            .expect("pipeline runs");
        writeln!(out, "## cascade {}", kind.name()).expect("write header");
        digest(&report, ds.target, &mut out);
        out.push_str(&std::fs::read_to_string(&metrics_path).expect("metrics written"));
        out.push('\n');
    }
    let _ = std::fs::remove_file(&metrics_path);
    out
}

/// Inner worker for the re-exec matrix: write the cascade fingerprint to
/// `SMARTFEAT_CASCADE_MATRIX_OUT`. A no-op in ordinary suite runs.
#[test]
fn cascade_matrix_worker() {
    let Ok(path) = std::env::var("SMARTFEAT_CASCADE_MATRIX_OUT") else {
        return;
    };
    std::fs::write(&path, cascade_fingerprint()).expect("write fingerprint");
}

#[test]
fn cascade_is_byte_identical_under_thread_matrix() {
    if std::env::var("SMARTFEAT_CASCADE_MATRIX_OUT").is_ok() {
        return; // we are the worker — don't recurse
    }
    let exe = std::env::current_exe().expect("current exe");
    let mut fingerprints = Vec::new();
    for threads in ["1", "4", "8"] {
        let out_path = std::env::temp_dir().join(format!(
            "smartfeat_cascade_matrix_{}_{threads}.txt",
            std::process::id()
        ));
        let status = Command::new(&exe)
            .args(["--exact", "cascade_matrix_worker"])
            .env("SMARTFEAT_THREADS", threads)
            .env("SMARTFEAT_CASCADE_MATRIX_OUT", &out_path)
            .status()
            .expect("spawn cascade matrix worker");
        assert!(
            status.success(),
            "worker with SMARTFEAT_THREADS={threads} failed"
        );
        let fp = std::fs::read_to_string(&out_path).expect("read fingerprint");
        let _ = std::fs::remove_file(&out_path);
        assert!(
            fp.contains("\"routing\""),
            "cascade fingerprint at SMARTFEAT_THREADS={threads} lacks routing stats"
        );
        fingerprints.push(fp);
    }
    for kind in SearchStrategyKind::all() {
        assert!(
            fingerprints[0].contains(&format!("## cascade {}", kind.name())),
            "{} missing from the cascade fingerprint",
            kind.name()
        );
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "SMARTFEAT_THREADS=1 and =4 cascade fingerprints diverge"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "SMARTFEAT_THREADS=1 and =8 cascade fingerprints diverge"
    );
}

#[test]
fn single_backend_override_serves_both_roles() {
    for kind in BackendKind::all() {
        let config = SmartFeatConfig {
            backend: Some(kind),
            ..SmartFeatConfig::default()
        };
        let (selector, generator) = build_role_fms(&config);
        assert_eq!(selector.model_name(), kind.name());
        assert_eq!(generator.model_name(), kind.name());
        let report = run_with_config(config);
        assert!(
            report.selector_usage.calls > 0,
            "{} selector made no calls",
            kind.name()
        );
    }
}
