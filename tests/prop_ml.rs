//! Property-based tests over the ML substrate's invariants, driven by the
//! in-repo `smartfeat_rng::check` harness.

use smartfeat_repro::ml::metrics::{accuracy, log_loss, median};
use smartfeat_repro::ml::preprocess::Standardizer;
use smartfeat_repro::ml::roc_auc;
use smartfeat_repro::prelude::*;
use smartfeat_repro::rng::check;
use smartfeat_repro::rng::Rng;

fn scores_and_labels(rng: &mut Rng) -> (Vec<f64>, Vec<u8>) {
    let n = rng.gen_range(4..120usize);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
    let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
    (scores, labels)
}

#[test]
fn auc_is_bounded_and_complement_symmetric() {
    check::cases(64, |rng| {
        let (scores, labels) = scores_and_labels(rng);
        let auc = roc_auc(&labels, &scores);
        assert!((0.0..=1.0).contains(&auc));
        // Inverting the scores inverts the ranking.
        let inverted: Vec<f64> = scores.iter().map(|s| 1.0 - s).collect();
        let auc_inv = roc_auc(&labels, &inverted);
        let both = labels.contains(&0) && labels.contains(&1);
        if both {
            assert!((auc + auc_inv - 1.0).abs() < 1e-9, "{auc} + {auc_inv}");
        } else {
            assert_eq!(auc, 0.5);
        }
    });
}

#[test]
fn auc_invariant_under_monotone_transform() {
    check::cases(64, |rng| {
        let (scores, labels) = scores_and_labels(rng);
        let auc = roc_auc(&labels, &scores);
        // exp is strictly increasing ⇒ identical ranking ⇒ identical AUC.
        let transformed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
        let auc_t = roc_auc(&labels, &transformed);
        assert!((auc - auc_t).abs() < 1e-9);
    });
}

#[test]
fn accuracy_and_log_loss_bounded() {
    check::cases(64, |rng| {
        let (scores, labels) = scores_and_labels(rng);
        let acc = accuracy(&labels, &scores);
        assert!((0.0..=1.0).contains(&acc));
        let ll = log_loss(&labels, &scores);
        assert!(ll.is_finite());
        assert!(ll >= 0.0);
    });
}

#[test]
fn standardizer_output_has_unit_stats() {
    check::cases(64, |rng| {
        let n = rng.gen_range(4..60usize);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-1e3..1e3)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let s = Standardizer::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for j in 0..t.cols() {
            let col = t.col(j);
            let n = col.len() as f64;
            let mean: f64 = col.iter().sum::<f64>() / n;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-6, "mean {mean}");
            // Unit variance, or zero for a constant feature.
            assert!((var - 1.0).abs() < 1e-6 || var < 1e-9, "var {var}");
        }
    });
}

#[test]
fn median_lies_within_range() {
    check::cases(64, |rng| {
        let values = check::vec_f64(rng, 1..50, -1e4..1e4);
        let m = median(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    });
}

#[test]
fn logistic_regression_probabilities_valid() {
    check::cases(30, |rng| {
        let seed = rng.gen_range(0..30u64);
        let n = rng.gen_range(10..60usize);
        // Deterministic pseudo-random training data from the seed.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed.wrapping_add(7) * 2654435761 + 1);
                vec![
                    (h % 101) as f64 / 50.0 - 1.0,
                    ((h / 101) % 89) as f64 / 44.0 - 1.0,
                ]
            })
            .collect();
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 2 == 0)).collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut lr = smartfeat_repro::ml::logistic::LogisticRegression::default_params();
        use smartfeat_repro::ml::Classifier;
        lr.fit(&x, &y).unwrap();
        for p in lr.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    });
}

#[test]
fn tree_ensembles_never_exceed_probability_bounds() {
    // Deterministic stress: wide label imbalance plus constant features.
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![1.0, (i % 13) as f64, ((i * 7) % 5) as f64])
        .collect();
    let y: Vec<u8> = (0..200).map(|i| u8::from(i % 10 == 0)).collect();
    let x = Matrix::from_rows(rows).unwrap();
    for kind in [ModelKind::RF, ModelKind::ET] {
        let mut m = kind.build(3);
        m.fit(&x, &y).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p), "{kind} produced {p}");
        }
    }
}
