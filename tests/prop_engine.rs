//! Property-based tests over the v2 columnar engine: dictionary
//! encoding, null bitmaps, the deterministic hash index, and CSV dtype
//! fidelity. Driven by the in-repo `smartfeat_rng::check` harness, so
//! every case is seeded and replayable.

use std::collections::BTreeMap;

use smartfeat_repro::frame::bitmap::{BitmapBuilder, NullBitmap};
use smartfeat_repro::frame::csv;
use smartfeat_repro::frame::ops::{
    bucketize, clip, groupby_transform, normalize, AggFunc, NormKind,
};
use smartfeat_repro::frame::{DType, StableMap};
use smartfeat_repro::prelude::*;
use smartfeat_repro::rng::check;
use smartfeat_repro::rng::Rng;

/// Random nullable string cells over a small alphabet (forces repeats,
/// so dictionary interning actually deduplicates).
fn string_cells(rng: &mut Rng) -> Vec<Option<String>> {
    check::vec_with(rng, 1..80, |rng| {
        if rng.gen_range(0.0..1.0) < 0.15 {
            None
        } else {
            Some(check::string_of(rng, "abcxyz", 3))
        }
    })
}

/// Random nullable float cells.
fn float_cells(rng: &mut Rng) -> Vec<Option<f64>> {
    check::vec_with(rng, 1..80, |rng| {
        if rng.gen_range(0.0..1.0) < 0.2 {
            None
        } else {
            Some(rng.gen_range(-1e4..1e4))
        }
    })
}

#[test]
fn dict_encoding_roundtrips_every_cell() {
    check::cases(64, |rng| {
        let cells = string_cells(rng);
        let col = Column::from_strs("s", cells.clone());
        let view = col.keys_view();
        assert_eq!(view.len(), cells.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(view.get(i), cell.as_deref(), "row {i}");
        }
        // The fused iterator agrees with indexed access.
        let iterated: Vec<Option<&str>> = view.iter().collect();
        let indexed: Vec<Option<&str>> = (0..cells.len()).map(|i| view.get(i)).collect();
        assert_eq!(iterated, indexed);
    });
}

#[test]
fn null_bitmap_agrees_with_option_cells() {
    check::cases(64, |rng| {
        let cells = float_cells(rng);
        let col = Column::from_floats("x", cells.clone());
        let nulls = cells.iter().filter(|c| c.is_none()).count();
        assert_eq!(col.null_count(), nulls);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(col.is_null(i), cell.is_none(), "row {i}");
        }
        // The packed view round-trips to the v1 materialized shape.
        assert_eq!(col.to_f64(), cells);
    });
}

#[test]
fn bitmap_builder_matches_push_loop() {
    check::cases(64, |rng| {
        let flags = check::vec_with(rng, 0..200, |rng| rng.gen_range(0.0..1.0) < 0.5);
        // Word-buffered construction (from_flags uses BitmapBuilder) must
        // equal bit-at-a-time push — including zeroed tail bits, so plain
        // equality is wordwise.
        let built = NullBitmap::from_flags(flags.iter().copied());
        let mut pushed = NullBitmap::new();
        for &f in &flags {
            pushed.push(f);
        }
        assert_eq!(built, pushed);
        let mut b = BitmapBuilder::with_capacity(flags.len());
        for &f in &flags {
            b.push(f);
        }
        assert_eq!(b.finish(), pushed);
        // for_each_null visits exactly the false flags, in order.
        let mut nulls = Vec::new();
        built.for_each_null(|i| nulls.push(i));
        let expected: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| (!f).then_some(i))
            .collect();
        assert_eq!(nulls, expected);
    });
}

#[test]
fn stable_map_agrees_with_btreemap_oracle() {
    check::cases(64, |rng| {
        let keys = check::vec_with(rng, 0..120, |rng| check::string_of(rng, "abcd", 3));
        let mut stable: StableMap<String, usize> = StableMap::new();
        let mut oracle: BTreeMap<String, usize> = BTreeMap::new();
        let mut first_seen: Vec<String> = Vec::new();
        for k in &keys {
            *stable.entry_or_insert_with(k.clone(), || 0) += 1;
            *oracle.entry(k.clone()).or_insert(0) += 1;
            if !first_seen.contains(k) {
                first_seen.push(k.clone());
            }
        }
        assert_eq!(stable.len(), oracle.len());
        for (k, v) in &oracle {
            assert_eq!(stable.get(k.as_str()), Some(v), "key {k:?}");
        }
        // Iteration is first-occurrence order, not hash or sorted order.
        let order: Vec<&String> = stable.keys().collect();
        assert_eq!(order, first_seen.iter().collect::<Vec<_>>());
    });
}

#[test]
fn groupby_and_factorize_agree_with_btreemap_oracle() {
    check::cases(48, |rng| {
        let groups = string_cells(rng);
        let n = groups.len();
        let values: Vec<Option<f64>> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0) < 0.85).then(|| rng.gen_range(-100.0..100.0)))
            .collect();
        let mut df = DataFrame::from_columns(vec![
            Column::from_strs("g", groups.clone()),
            Column::from_floats("v", values.clone()),
        ])
        .expect("consistent lengths");

        // groupby mean through the StableMap index vs a BTreeMap oracle.
        let got = groupby_transform(&df, &["g"], "v", AggFunc::Mean, "m").expect("runs");
        let mut agg: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for (g, v) in groups.iter().zip(&values) {
            if let (Some(g), Some(v)) = (g, v) {
                let slot = agg.entry(g.as_str()).or_insert((0.0, 0));
                slot.0 += v;
                slot.1 += 1;
            }
        }
        for (i, g) in groups.iter().enumerate() {
            let expected = g
                .as_deref()
                .and_then(|g| agg.get(g))
                .map(|&(s, c)| s / c as f64);
            assert_eq!(got.to_f64()[i], expected, "row {i}");
        }

        // factorize codes: first-seen order, same per-row assignment as a
        // BTreeMap-probed first-seen walk.
        let books = df.factorize_strings();
        let mut oracle_codes: BTreeMap<String, i64> = BTreeMap::new();
        let mut oracle_book: Vec<String> = Vec::new();
        let expected_rows: Vec<Option<i64>> = groups
            .iter()
            .map(|g| {
                g.as_ref().map(|g| match oracle_codes.get(g) {
                    Some(&c) => c,
                    None => {
                        let c = oracle_book.len() as i64;
                        oracle_codes.insert(g.clone(), c);
                        oracle_book.push(g.clone());
                        c
                    }
                })
            })
            .collect();
        assert_eq!(books.get("g").map(|b| b.as_slice()), Some(&oracle_book[..]));
        let coded = df.column("g").expect("exists");
        for (i, expected) in expected_rows.iter().enumerate() {
            match expected {
                None => assert!(coded.is_null(i), "row {i} should stay null"),
                Some(c) => assert_eq!(coded.get(i).as_f64(), Some(*c as f64), "row {i}"),
            }
        }
    });
}

#[test]
fn csv_roundtrip_preserves_dtypes() {
    check::cases(48, |rng| {
        // A Str column of numeric-looking text is the adversarial case:
        // without writer quoting it would re-infer as Int/Float.
        let numeric_text = check::vec_with(rng, 1..40, |rng| {
            if rng.gen_range(0.0..1.0) < 0.1 {
                None
            } else {
                Some(format!("{:04}", rng.gen_range(0..10_000i64)))
            }
        });
        let n = numeric_text.len();
        let ints: Vec<Option<i64>> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0) < 0.85).then(|| rng.gen_range(-999..999i64)))
            .collect();
        let floats: Vec<Option<f64>> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0) < 0.85).then(|| rng.gen_range(-1e3..1e3)))
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_strs("code", numeric_text),
            Column::from_ints("i", ints),
            Column::from_floats("f", floats),
        ])
        .expect("consistent lengths");
        assert!(csv::roundtrip_equal(&df), "dtype drift through CSV");
        let back = csv::read_csv_str(&csv::write_csv_str(&df)).expect("parses");
        assert_eq!(back.column("code").expect("exists").dtype(), DType::Str);
    });
}

#[test]
fn packed_transforms_preserve_null_positions() {
    check::cases(64, |rng| {
        let cells = float_cells(rng);
        let col = Column::from_floats("x", cells.clone());
        let kind = if rng.gen_range(0.0..1.0) < 0.5 {
            NormKind::MinMax
        } else {
            NormKind::ZScore
        };
        let normalized = normalize(&col, kind, "n").expect("numeric");
        let bucketed = bucketize(&col, &[-100.0, 0.0, 100.0], "b").expect("numeric");
        let clipped = clip(&col, -50.0, 50.0, "c").expect("numeric");
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(normalized.is_null(i), cell.is_none(), "normalize row {i}");
            assert_eq!(bucketed.is_null(i), cell.is_none(), "bucketize row {i}");
            assert_eq!(clipped.is_null(i), cell.is_none(), "clip row {i}");
        }
        // The packed fast path agrees with a per-cell recompute.
        for (i, cell) in cells.iter().enumerate() {
            if let Some(v) = cell {
                let expected = v.clamp(-50.0, 50.0);
                assert_eq!(clipped.to_f64()[i], Some(expected), "clip value row {i}");
            }
        }
    });
}

#[test]
fn value_counts_agrees_with_scan_oracle() {
    check::cases(64, |rng| {
        let cells = string_cells(rng);
        let col = Column::from_strs("s", cells.clone());
        let mut oracle: BTreeMap<String, usize> = BTreeMap::new();
        for cell in cells.iter().flatten() {
            *oracle.entry(cell.clone()).or_insert(0) += 1;
        }
        assert_eq!(col.value_counts(), oracle);
        assert_eq!(col.cardinality(), oracle.len());
        assert_eq!(col.is_constant(), oracle.len() <= 1);
    });
}
