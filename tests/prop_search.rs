//! Seeded property suite for the search strategies (`rng::check`
//! harness). Each case runs a full pipeline on a small synthetic dataset
//! with randomized search knobs and asserts structural invariants over
//! the emitted observability trace and the final report:
//!
//! - beam keeps at most `beam_width` columns per round and never
//!   re-admits a pruned candidate;
//! - the evolutionary population size is invariant across generations and
//!   mutation/crossover parents are drawn from that generation's
//!   survivors only;
//! - ReAct never exceeds its turn budget;
//! - every strategy stays within a positive `fm_call_budget`.

use std::sync::atomic::{AtomicU64, Ordering};

use smartfeat::config::ObservabilityConfig;
use smartfeat::{SearchStrategyKind, SmartFeat, SmartFeatConfig, SmartFeatReport};
use smartfeat_fm::SimulatedFm;
use smartfeat_frame::json::JsonValue;
use smartfeat_rng::check;

/// Unique temp-file suffix per run (pid alone collides across cases).
static RUN_ID: AtomicU64 = AtomicU64::new(0);

/// Run one pipeline with the trace captured; returns the report and the
/// parsed trace events.
fn run_traced(cfg: &mut SmartFeatConfig, fm_seed: u64) -> (SmartFeatReport, Vec<JsonValue>) {
    let id = RUN_ID.fetch_add(1, Ordering::Relaxed);
    let trace = std::env::temp_dir().join(format!(
        "smartfeat_prop_search_{}_{id}.jsonl",
        std::process::id()
    ));
    cfg.observability = ObservabilityConfig {
        enabled: true,
        trace_out: Some(trace.display().to_string()),
        metrics_out: None,
    };
    let ds = smartfeat_datasets::insurance::generate(40, 5);
    let selector = SimulatedFm::gpt4(fm_seed);
    let generator = SimulatedFm::gpt35(fm_seed.wrapping_add(1));
    let report = SmartFeat::new(&selector, &generator, cfg.clone())
        .run(&ds.frame, &ds.agenda("RF"))
        .expect("pipeline runs");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let events = text
        .lines()
        .map(|l| JsonValue::parse(l).expect("trace line is JSON"))
        .collect();
    (report, events)
}

fn kind_of(e: &JsonValue) -> &str {
    e.get("kind").and_then(JsonValue::as_str).unwrap_or("")
}

fn str_field<'a>(e: &'a JsonValue, key: &str) -> &'a str {
    e.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("event missing string field {key}"))
}

fn u64_field(e: &JsonValue, key: &str) -> u64 {
    e.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("event missing u64 field {key}"))
}

#[test]
fn beam_respects_width_and_never_revisits_pruned() {
    check::cases(6, |rng| {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::Beam;
        cfg.search.beam_width = rng.gen_range(1..4usize);
        cfg.search.beam_depth = rng.gen_range(1..4usize);
        cfg.seed = rng.next_u64();
        let width = cfg.search.beam_width;
        let (report, events) = run_traced(&mut cfg, rng.next_u64());

        let mut rounds = 0;
        for e in events.iter().filter(|e| kind_of(e) == "search.beam.round") {
            rounds += 1;
            assert!(
                u64_field(e, "kept") as usize <= width,
                "round kept {} columns with beam_width={width}",
                u64_field(e, "kept"),
            );
        }
        assert!(rounds >= 1, "beam emitted no round events");

        let pruned: Vec<&str> = events
            .iter()
            .filter(|e| kind_of(e) == "search.pruned")
            .map(|e| str_field(e, "name"))
            .collect();
        for name in &pruned {
            assert_eq!(
                pruned.iter().filter(|p| p == &name).count(),
                1,
                "{name} was pruned twice — a pruned candidate was revisited"
            );
            assert!(
                !report.generated.iter().any(|g| g.name == *name),
                "{name} re-entered the generated set after being pruned"
            );
            assert!(
                !report.frame.has_column(name),
                "{name} re-entered the frame after being pruned"
            );
            assert!(
                report
                    .skipped
                    .iter()
                    .any(|s| s.name == *name && s.reason == smartfeat::SkipReason::Pruned),
                "{name} pruned without a Pruned skip row"
            );
        }
    });
}

#[test]
fn evolution_population_invariant_and_parents_are_survivors() {
    check::cases(6, |rng| {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::Evolutionary;
        cfg.search.population = rng.gen_range(2..7usize);
        cfg.search.generations = rng.gen_range(1..4usize);
        cfg.seed = rng.next_u64();
        let population = cfg.search.population;
        let (_report, events) = run_traced(&mut cfg, rng.next_u64());

        let generations: Vec<&JsonValue> = events
            .iter()
            .filter(|e| kind_of(e) == "search.generation")
            .collect();
        for e in &generations {
            assert_eq!(
                u64_field(e, "population") as usize,
                population,
                "population size drifted at generation {}",
                u64_field(e, "generation"),
            );
            assert!(u64_field(e, "survivors") >= 1, "a generation lost everyone");
        }

        // Offspring parents must come from the same generation's
        // survivor set (`parents` joins crossover parents with '|').
        for child in events.iter().filter(|e| kind_of(e) == "search.child") {
            let generation = u64_field(child, "generation");
            let survivors: Vec<&str> = events
                .iter()
                .filter(|e| {
                    kind_of(e) == "search.survivor" && u64_field(e, "generation") == generation
                })
                .map(|e| str_field(e, "name"))
                .collect();
            for parent in str_field(child, "parents").split('|') {
                assert!(
                    survivors.contains(&parent),
                    "{} offspring parent {parent} is not a generation-{generation} survivor",
                    str_field(child, "op"),
                );
            }
        }
    });
}

#[test]
fn react_never_exceeds_its_turn_budget() {
    check::cases(6, |rng| {
        let mut cfg = SmartFeatConfig::default();
        cfg.search.strategy = SearchStrategyKind::React;
        cfg.search.react_turns = rng.gen_range(1..7usize);
        cfg.seed = rng.next_u64();
        let turns = cfg.search.react_turns;
        let (_report, events) = run_traced(&mut cfg, rng.next_u64());

        let turn_events: Vec<&JsonValue> = events
            .iter()
            .filter(|e| kind_of(e) == "search.react.turn")
            .collect();
        assert!(
            turn_events.len() <= turns,
            "{} turn events with react_turns={turns}",
            turn_events.len(),
        );
        for e in &turn_events {
            assert!(
                (u64_field(e, "turn") as usize) < turns,
                "turn index {} out of budget {turns}",
                u64_field(e, "turn"),
            );
        }
    });
}

#[test]
fn every_strategy_stays_within_the_fm_call_budget() {
    check::cases(4, |rng| {
        let budget = rng.gen_range(1..12usize);
        for kind in SearchStrategyKind::all() {
            let mut cfg = SmartFeatConfig::default();
            cfg.search.strategy = kind;
            cfg.search.fm_call_budget = budget;
            // With FM removal off, every selector call belongs to the
            // search stage, so the meter measures the budgeted spend.
            cfg.fm_feature_removal = false;
            cfg.seed = rng.next_u64();
            let (report, _events) = run_traced(&mut cfg, rng.next_u64());
            assert!(
                report.selector_usage.calls <= budget,
                "{} spent {} selector calls with fm_call_budget={budget}",
                kind.name(),
                report.selector_usage.calls,
            );
        }
    });
}
