//! Guards for the hermetic-build policy: the workspace must build with
//! zero registry dependencies, so `cargo build && cargo test` works
//! offline with an empty Cargo registry.
//!
//! Layers, cheapest first:
//! 1. `manifests_declare_only_path_dependencies` — scans every
//!    `Cargo.toml` and fails on any dependency that is not a `path`
//!    dependency (or `workspace = true` inheritance of one).
//! 2. `cargo_metadata_resolves_offline_with_empty_cargo_home` — asks
//!    cargo to resolve the full dependency graph offline against a clean
//!    `CARGO_HOME`; any registry dependency fails resolution.
//! 3. `full_build_succeeds_offline` (`#[ignore]`, run explicitly with
//!    `cargo test --test hermetic -- --ignored`) — a complete
//!    `cargo build --offline` in a scratch target directory. Too slow for
//!    every test run, but the definitive end-to-end check.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // tests/ lives directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

fn manifest_paths() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ exists") {
        let dir = entry.expect("readable dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(
        out.len() >= 12,
        "expected root + member manifests, got {out:?}"
    );
    out
}

/// Minimal line-oriented scan of a manifest's dependency tables. Returns
/// `(table, dependency-line)` pairs for entries that are neither `path`
/// dependencies nor `workspace = true` inheritance.
fn non_path_dependencies(manifest: &str) -> Vec<(String, String)> {
    let mut offenders = Vec::new();
    let mut table = String::new();
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            table = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let in_dep_table = table == "workspace.dependencies"
            || table == "dependencies"
            || table == "dev-dependencies"
            || table == "build-dependencies"
            || table.ends_with(".dependencies")
            || table.ends_with(".dev-dependencies")
            || table.ends_with(".build-dependencies");
        if !in_dep_table {
            continue;
        }
        // `name = { path = "..." }`, `name.workspace = true`, and
        // `name = { workspace = true }` are the only allowed shapes.
        // A bare version (`name = "1.0"`) or any `version`/`git` key is a
        // registry/network dependency.
        let ok = line.contains("path =")
            || line.contains("path=")
            || line.contains("workspace = true")
            || line.contains("workspace=true");
        if !ok {
            offenders.push((table.clone(), line.to_string()));
        }
    }
    offenders
}

#[test]
fn manifests_declare_only_path_dependencies() {
    for manifest in manifest_paths() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let offenders = non_path_dependencies(&text);
        assert!(
            offenders.is_empty(),
            "{} declares non-path dependencies (hermetic-build policy: \
             std-only, zero registry deps): {offenders:?}",
            manifest.display()
        );
    }
}

#[test]
fn manifest_scan_catches_registry_dependencies() {
    // The scanner itself must flag the shapes the policy forbids …
    let bad = "[dependencies]\nserde = \"1.0\"\n\
               [dev-dependencies]\nproptest = { version = \"1\", default-features = false }\n";
    assert_eq!(non_path_dependencies(bad).len(), 2);
    // … and accept the allowed ones.
    let good = "[package]\nname = \"x\"\nversion = \"1.0\"\n\
                [dependencies]\nsmartfeat-rng = { path = \"../rng\" }\n\
                smartfeat-frame.workspace = true\n";
    assert_eq!(non_path_dependencies(good), vec![]);
}

/// A scratch directory unique to this process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartfeat-hermetic-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cargo_metadata_resolves_offline_with_empty_cargo_home() {
    let cargo_home = scratch_dir("home");
    let output = Command::new(env!("CARGO"))
        .args(["metadata", "--format-version", "1", "--offline", "--locked"])
        .current_dir(workspace_root())
        .env("CARGO_HOME", &cargo_home)
        .output()
        .expect("spawn cargo metadata");
    let _ = fs::remove_dir_all(&cargo_home);
    assert!(
        output.status.success(),
        "cargo metadata --offline failed with an empty CARGO_HOME — a \
         registry dependency crept in:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Every package in the resolved graph must come from this workspace
    // (path dependencies have `"source": null` in cargo metadata).
    let stdout = String::from_utf8_lossy(&output.stdout);
    let meta = smartfeat_repro::frame::json::JsonValue::parse(&stdout)
        .expect("cargo metadata emits valid JSON");
    let packages = meta
        .get("packages")
        .and_then(|p| p.as_array())
        .expect("packages array");
    assert!(!packages.is_empty());
    for pkg in packages {
        let name = pkg.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        assert_eq!(
            pkg.get("source"),
            Some(&smartfeat_repro::frame::json::JsonValue::Null),
            "package {name} resolves from a registry, not a workspace path"
        );
    }
}

#[test]
#[ignore = "full offline build; slow — run with: cargo test --test hermetic -- --ignored"]
fn full_build_succeeds_offline() {
    let cargo_home = scratch_dir("build-home");
    let target_dir = scratch_dir("build-target");
    let output = Command::new(env!("CARGO"))
        .args(["build", "--offline", "--workspace"])
        .current_dir(workspace_root())
        .env("CARGO_HOME", &cargo_home)
        .env("CARGO_TARGET_DIR", &target_dir)
        .output()
        .expect("spawn cargo build");
    let _ = fs::remove_dir_all(&cargo_home);
    let _ = fs::remove_dir_all(&target_dir);
    assert!(
        output.status.success(),
        "cargo build --offline failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
