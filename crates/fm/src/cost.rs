//! Per-model pricing and latency models (2023 list prices, matching the
//! period of the paper's experiments).

use std::time::Duration;

/// Static description of a simulated model's cost/latency profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Model identifier (e.g. `"gpt-4"`).
    pub name: &'static str,
    /// USD per 1 000 prompt tokens.
    pub usd_per_1k_prompt: f64,
    /// USD per 1 000 completion tokens.
    pub usd_per_1k_completion: f64,
    /// Fixed per-request overhead.
    pub base_latency_ms: f64,
    /// Per completion-token generation time.
    pub ms_per_completion_token: f64,
    /// Per prompt-token ingestion time.
    pub ms_per_prompt_token: f64,
}

impl ModelSpec {
    /// GPT-4 (the paper's operator-selector model).
    pub fn gpt4() -> ModelSpec {
        ModelSpec {
            name: "gpt-4",
            usd_per_1k_prompt: 0.03,
            usd_per_1k_completion: 0.06,
            base_latency_ms: 500.0,
            ms_per_completion_token: 30.0,
            ms_per_prompt_token: 0.5,
        }
    }

    /// GPT-3.5-turbo (the paper's function-generator model — "comparable
    /// performance and better efficiency").
    pub fn gpt35_turbo() -> ModelSpec {
        ModelSpec {
            name: "gpt-3.5-turbo",
            usd_per_1k_prompt: 0.0015,
            usd_per_1k_completion: 0.002,
            base_latency_ms: 250.0,
            ms_per_completion_token: 10.0,
            ms_per_prompt_token: 0.2,
        }
    }

    /// Babbage-002 (a cheap base-model tier: shallow knowledge, fast,
    /// an order of magnitude below GPT-3.5-turbo on price).
    pub fn babbage_002() -> ModelSpec {
        ModelSpec {
            name: "babbage-002",
            usd_per_1k_prompt: 0.0004,
            usd_per_1k_completion: 0.0004,
            base_latency_ms: 120.0,
            ms_per_completion_token: 4.0,
            ms_per_prompt_token: 0.1,
        }
    }

    /// Cost in USD for one call.
    pub fn cost_usd(&self, prompt_tokens: usize, completion_tokens: usize) -> f64 {
        prompt_tokens as f64 / 1000.0 * self.usd_per_1k_prompt
            + completion_tokens as f64 / 1000.0 * self.usd_per_1k_completion
    }

    /// Simulated wall-clock latency for one call.
    pub fn latency(&self, prompt_tokens: usize, completion_tokens: usize) -> Duration {
        let ms = self.base_latency_ms
            + self.ms_per_prompt_token * prompt_tokens as f64
            + self.ms_per_completion_token * completion_tokens as f64;
        Duration::from_micros((ms * 1000.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_costs_more_than_gpt35() {
        let g4 = ModelSpec::gpt4();
        let g35 = ModelSpec::gpt35_turbo();
        assert!(g4.cost_usd(1000, 1000) > 10.0 * g35.cost_usd(1000, 1000));
    }

    #[test]
    fn babbage_is_the_cheapest_and_fastest_tier() {
        let b = ModelSpec::babbage_002();
        let g35 = ModelSpec::gpt35_turbo();
        assert!(b.cost_usd(1000, 1000) < g35.cost_usd(1000, 1000));
        assert!(b.latency(100, 100) < g35.latency(100, 100));
    }

    #[test]
    fn cost_formula() {
        let g4 = ModelSpec::gpt4();
        let c = g4.cost_usd(2000, 500);
        assert!((c - (0.06 + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn latency_grows_with_completion_tokens() {
        let g4 = ModelSpec::gpt4();
        assert!(g4.latency(100, 200) > g4.latency(100, 100));
        assert!(g4.latency(0, 0) >= Duration::from_millis(500));
    }

    #[test]
    fn zero_tokens_zero_marginal_cost() {
        assert_eq!(ModelSpec::gpt35_turbo().cost_usd(0, 0), 0.0);
    }
}
