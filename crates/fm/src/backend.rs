//! Simulated model families behind the [`FmBackend`] trait.
//!
//! The paper's setup uses exactly two models — GPT-4 for operator
//! selection, GPT-3.5-turbo for function generation. This module turns
//! those tiers into two members of an open family set and adds a third,
//! cheaper one, so a cascade router (see [`crate::cascade`]) has a real
//! cost/quality frontier to optimize:
//!
//! | family        | coverage | parse-failure rate | price    | latency |
//! |---------------|----------|--------------------|----------|---------|
//! | babbage-002   | shallow  | 0.12               | lowest   | fastest |
//! | gpt-3.5-turbo | deep     | 0.0                | low      | fast    |
//! | gpt-4         | deep     | 0.0                | highest  | slowest |
//!
//! The two established tiers keep deep coverage and a zero error rate —
//! their byte-exact transcripts are pinned by the strategy-oracle golden
//! and must not drift.

use std::sync::Arc;

use crate::cost::ModelSpec;
use crate::oracle::{FmConfig, FmError, FmResponse, FoundationModel, SimulatedFm};
use crate::stats::UsageMeter;

/// How much of the [`crate::knowledge`] base a model family can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnowledgeCoverage {
    /// Full access: domain thresholds, world-knowledge lookups,
    /// confident proposals.
    #[default]
    Deep,
    /// Format-only competence: well-formed answers, hedged confidence,
    /// no bucket boundaries, no world-knowledge lookups.
    Shallow,
}

/// The simulated model families, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BackendKind {
    /// Cheap, fast, shallow, flaky.
    Babbage002,
    /// The paper's function-generator model.
    Gpt35Turbo,
    /// The paper's operator-selector model.
    Gpt4,
}

impl BackendKind {
    /// Every family, cheapest first (the default cascade ladder order).
    pub fn all() -> [BackendKind; 3] {
        [
            BackendKind::Babbage002,
            BackendKind::Gpt35Turbo,
            BackendKind::Gpt4,
        ]
    }

    /// Stable identifier (also the CLI `--backend` value).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Babbage002 => "babbage-002",
            BackendKind::Gpt35Turbo => "gpt-3.5-turbo",
            BackendKind::Gpt4 => "gpt-4",
        }
    }

    /// Inverse of [`BackendKind::name`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::all().into_iter().find(|k| k.name() == s)
    }

    /// Pricing/latency profile.
    pub fn spec(self) -> ModelSpec {
        match self {
            BackendKind::Babbage002 => ModelSpec::babbage_002(),
            BackendKind::Gpt35Turbo => ModelSpec::gpt35_turbo(),
            BackendKind::Gpt4 => ModelSpec::gpt4(),
        }
    }

    /// Knowledge coverage of this family.
    pub fn coverage(self) -> KnowledgeCoverage {
        match self {
            BackendKind::Babbage002 => KnowledgeCoverage::Shallow,
            _ => KnowledgeCoverage::Deep,
        }
    }

    /// Probability of a degraded (truncated / refused / repeated) output.
    /// The established tiers stay at 0.0 — their transcripts are pinned
    /// by the strategy-oracle golden.
    pub fn error_rate(self) -> f64 {
        match self {
            BackendKind::Babbage002 => 0.12,
            _ => 0.0,
        }
    }

    /// Build this family's simulated FM with an owned meter.
    pub fn fm(self, seed: u64) -> SimulatedFm {
        self.fm_with_meter(seed, Arc::new(UsageMeter::new()))
    }

    /// Build this family's simulated FM billing an existing meter.
    pub fn fm_with_meter(self, seed: u64, meter: Arc<UsageMeter>) -> SimulatedFm {
        SimulatedFm::with_meter(
            self.spec(),
            FmConfig {
                seed,
                error_rate: self.error_rate(),
                coverage: self.coverage(),
                ..FmConfig::default()
            },
            meter,
        )
    }
}

/// One rung of a cascade ladder: a model family plus the routing policy
/// inputs the cascade needs (coverage, per-kind eligibility).
pub trait FmBackend: Send + Sync {
    /// Family identifier.
    fn name(&self) -> &'static str;

    /// Knowledge coverage of the family.
    fn coverage(&self) -> KnowledgeCoverage;

    /// Whether this rung is worth even attempting for a prompt kind
    /// (see [`crate::oracle::prompt_kind`]). Ineligible rungs are
    /// skipped without billing a call.
    fn eligible(&self, kind: &str) -> bool;

    /// Answer one prompt.
    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError>;
}

/// A [`SimulatedFm`] rung.
pub struct SimulatedBackend {
    kind: BackendKind,
    fm: SimulatedFm,
}

impl SimulatedBackend {
    /// Build a rung billing the given (cascade-shared) meter.
    pub fn new(kind: BackendKind, seed: u64, meter: Arc<UsageMeter>) -> Self {
        SimulatedBackend {
            kind,
            fm: kind.fm_with_meter(seed, meter),
        }
    }
}

impl FmBackend for SimulatedBackend {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn coverage(&self) -> KnowledgeCoverage {
        self.kind.coverage()
    }

    fn eligible(&self, kind: &str) -> bool {
        // Row completion is a pure world-knowledge lookup; a shallow
        // family answers "unknown" every time, so attempting it only
        // burns a call before the inevitable escalation.
        !(self.coverage() == KnowledgeCoverage::Shallow && kind == "row_completion")
    }

    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError> {
        self.fm.complete(prompt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FoundationModel;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("gpt-5"), None);
    }

    #[test]
    fn families_are_ordered_cheapest_first() {
        let costs: Vec<f64> = BackendKind::all()
            .into_iter()
            .map(|k| k.spec().cost_usd(1000, 1000))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
    }

    #[test]
    fn established_tiers_are_unperturbed() {
        // The strategy-oracle golden pins these families' transcripts:
        // deep coverage and a zero error rate are load-bearing.
        for kind in [BackendKind::Gpt35Turbo, BackendKind::Gpt4] {
            assert_eq!(kind.coverage(), KnowledgeCoverage::Deep);
            assert_eq!(kind.error_rate(), 0.0);
        }
        assert_eq!(
            BackendKind::Babbage002.coverage(),
            KnowledgeCoverage::Shallow
        );
        assert!(BackendKind::Babbage002.error_rate() > 0.0);
    }

    #[test]
    fn shallow_rung_is_ineligible_for_row_completion_only() {
        let meter = Arc::new(UsageMeter::new());
        let shallow = SimulatedBackend::new(BackendKind::Babbage002, 0, Arc::clone(&meter));
        let deep = SimulatedBackend::new(BackendKind::Gpt4, 0, meter);
        assert!(!shallow.eligible("row_completion"));
        assert!(shallow.eligible("unary_proposal"));
        assert!(shallow.eligible("function_generation"));
        assert!(deep.eligible("row_completion"));
    }

    #[test]
    fn rungs_bill_the_shared_meter() {
        let meter = Arc::new(UsageMeter::new());
        let a = SimulatedBackend::new(BackendKind::Babbage002, 1, Arc::clone(&meter));
        let b = SimulatedBackend::new(BackendKind::Gpt4, 2, Arc::clone(&meter));
        a.complete("hello").unwrap();
        b.complete("hello").unwrap();
        assert_eq!(meter.snapshot().calls, 2);
    }

    #[test]
    fn backend_fm_reports_its_family_name() {
        assert_eq!(BackendKind::Babbage002.fm(0).model_name(), "babbage-002");
        assert_eq!(BackendKind::Gpt4.fm(0).model_name(), "gpt-4");
    }
}
