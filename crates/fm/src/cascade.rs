//! Cost-optimal cascade routing across model families.
//!
//! FrugalGPT-style LLM cascades: try the cheapest eligible backend
//! first, inspect its output, and escalate to the next rung when the
//! answer is malformed, refused, or low-confidence. FeRG-LLM motivates
//! the same move for feature engineering from the cost side — most
//! prompts in a SMARTFEAT run are format-following tasks a cheap model
//! handles, and only the knowledge-heavy minority needs the expensive
//! tier.
//!
//! # Determinism contract
//!
//! A cascade run must stay bit-identical across `SMARTFEAT_THREADS`
//! settings. The argument:
//!
//! - The cascade owns no RNG. Each rung's [`SimulatedBackend`] carries
//!   its own seeded stream, derived as
//!   `seed_jump(seed, CASCADE_STREAM + rung_index)`, so a rung's answer
//!   depends only on the sequence of prompts *that rung* has served.
//! - Escalation is a pure function of the rung's output sequence: the
//!   [`accepts`] policy reads only the answer text, and the
//!   repeated-answer detector reads only the rung's previous answer —
//!   no clocks, no ambient state.
//! - The pipeline issues every FM call on its serial control path
//!   (DESIGN.md §8/§13), so each rung observes the same prompt sequence
//!   at every thread count.

use std::sync::{Arc, Mutex};

use smartfeat_par::lock_or_poison;
use smartfeat_rng::seed_jump;

use crate::backend::{BackendKind, FmBackend, KnowledgeCoverage, SimulatedBackend};
use crate::oracle::{prompt_kind, FmError, FmResponse, FoundationModel};
use crate::stats::{RouteStat, RoutingSnapshot, UsageMeter};

/// `seed_jump` stream for per-rung oracle seeds, disjoint from the
/// pipeline's SCORE (101) and EVOLUTION (211) streams.
pub const CASCADE_STREAM: u64 = 311;

/// A cascade of simulated backends behind one [`FoundationModel`] face.
pub struct CascadeFm {
    ladder: Vec<Box<dyn FmBackend>>,
    name: String,
    meter: Arc<UsageMeter>,
    routing: Mutex<RoutingSnapshot>,
    // Last answer per rung: a shallow rung repeating itself verbatim is
    // its degenerate-output failure mode, caught here statefully.
    last_texts: Mutex<Vec<Option<String>>>,
}

impl CascadeFm {
    /// Build a cascade over `kinds` (tried in order; must be non-empty —
    /// `SmartFeatConfig::validate` rejects empty ladders before any
    /// cascade is constructed). All rungs bill one shared meter, so
    /// the meter counts every underlying attempt exactly.
    pub fn new(kinds: &[BackendKind], seed: u64) -> Self {
        assert!(!kinds.is_empty(), "cascade ladder must be non-empty");
        let meter = Arc::new(UsageMeter::new());
        let ladder: Vec<Box<dyn FmBackend>> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                Box::new(SimulatedBackend::new(
                    kind,
                    // sfcheck:seed-stream(311..327)
                    seed_jump(seed, CASCADE_STREAM + i as u64),
                    Arc::clone(&meter),
                )) as Box<dyn FmBackend>
            })
            .collect();
        let name = format!(
            "cascade({})",
            kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("->")
        );
        let rungs = ladder.len();
        CascadeFm {
            ladder,
            name,
            meter,
            routing: Mutex::new(RoutingSnapshot::new()),
            last_texts: Mutex::new(vec![None; rungs]),
        }
    }

    /// Build a cascade over an arbitrary rung list (tests only).
    #[cfg(test)]
    fn from_ladder(ladder: Vec<Box<dyn FmBackend>>) -> Self {
        let rungs = ladder.len();
        CascadeFm {
            ladder,
            name: "cascade(test)".to_string(),
            meter: Arc::new(UsageMeter::new()),
            routing: Mutex::new(RoutingSnapshot::new()),
            last_texts: Mutex::new(vec![None; rungs]),
        }
    }
}

/// True when `text` opens and closes a JSON-ish dict — catches the
/// truncation failure mode, which loses the closing brace.
fn closed_dict(text: &str) -> bool {
    let t = text.trim();
    t.starts_with('{') && t.ends_with('}')
}

/// Structural half of the escalation policy: refusals, truncations,
/// and schema violations any family could emit. Applied to every
/// non-final rung regardless of its knowledge coverage.
fn well_formed(kind: &str, text: &str) -> bool {
    let t = text.trim();
    if t.is_empty() || t.starts_with("I'm sorry") {
        return false; // refusal
    }
    match kind {
        "binary_sample" => {
            closed_dict(t)
                && t.contains("\"left\"")
                && t.contains("\"op\"")
                && t.contains("\"right\"")
        }
        "highorder_sample" => {
            closed_dict(t)
                && t.contains("\"groupby_col\"")
                && t.contains("\"agg_col\"")
                && t.contains("\"function\"")
        }
        "extractor_sample" => closed_dict(t) && t.contains("\"kind\""),
        "mutation" | "crossover" => closed_dict(t) && t.contains("\"family\""),
        "react_decision" => closed_dict(t) && t.contains("\"action\""),
        "function_generation" => t.starts_with("FUNCTION:"),
        _ => true,
    }
}

/// Knowledge half of the escalation policy: answers that parse but hedge
/// or come back empty-handed. A *shallow* family producing these is
/// worth escalating past; a deep family producing the same text is
/// reporting ground truth, and asking an even deeper rung would only
/// repeat it at a higher price.
fn confident(kind: &str, text: &str) -> bool {
    let t = text.trim();
    match kind {
        // Proposals hedged down to "medium" everywhere.
        "unary_proposal" => t.contains("(certain)") || t.contains("(high)"),
        // "boundaries=auto" means the family lacked the domain
        // thresholds the feature description promised; a missing
        // function means it could not produce one at all.
        "function_generation" => {
            !t.starts_with("FUNCTION: unavailable") && !t.contains("boundaries=auto")
        }
        // A world-knowledge lookup that comes back empty-handed.
        "row_completion" => t != "unknown",
        _ => true,
    }
}

/// The full strict escalation policy — structure AND knowledge checks,
/// as applied to shallow rungs. Pure in `(kind, text)`; the determinism
/// argument leans on this.
pub fn accepts(kind: &str, text: &str) -> bool {
    well_formed(kind, text) && confident(kind, text)
}

impl FoundationModel for CascadeFm {
    fn model_name(&self) -> &str {
        &self.name
    }

    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError> {
        let kind = prompt_kind(prompt);
        let last = self.ladder.len() - 1;
        let mut prompt_tokens = 0usize;
        let mut completion_tokens = 0usize;
        let mut cost_usd = 0.0f64;
        let mut latency = std::time::Duration::ZERO;
        for (i, rung) in self.ladder.iter().enumerate() {
            // An ineligible rung is skipped without billing a call —
            // unless it is the final rung, which must answer regardless.
            if i < last && !rung.eligible(kind) {
                continue;
            }
            let resp = rung.complete(prompt)?;
            prompt_tokens += resp.prompt_tokens;
            completion_tokens += resp.completion_tokens;
            cost_usd += resp.cost_usd;
            latency += resp.latency;
            let shallow = rung.coverage() == KnowledgeCoverage::Shallow;
            // Deep rungs only escalate on structural failures — their
            // hedges and "unknown"s are ground truth. Shallow rungs
            // face the full policy plus the repeated-answer detector
            // (their degenerate-output failure mode repeats the
            // previous answer verbatim).
            let repeated = {
                let mut lasts = lock_or_poison(&self.last_texts);
                let repeated = shallow && lasts[i].as_deref() == Some(resp.text.as_str());
                lasts[i] = Some(resp.text.clone());
                repeated
            };
            let quality = if shallow {
                accepts(kind, &resp.text) && !repeated
            } else {
                well_formed(kind, &resp.text)
            };
            let accepted = i == last || quality;
            {
                let mut routing = lock_or_poison(&self.routing);
                let stat = routing.entry(rung.name().to_string()).or_default();
                stat.add(&RouteStat {
                    calls: 1,
                    escalations: usize::from(!accepted),
                    prompt_tokens: resp.prompt_tokens,
                    completion_tokens: resp.completion_tokens,
                    cost_usd: resp.cost_usd,
                });
            }
            if accepted {
                return Ok(FmResponse {
                    text: resp.text,
                    prompt_tokens,
                    completion_tokens,
                    cost_usd,
                    latency,
                });
            }
        }
        // sfcheck:allow(panic-hygiene, panic-reachability) invariant: the final rung always accepts above
        unreachable!("the final cascade rung accepts unconditionally")
    }

    fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    fn routing(&self) -> Option<RoutingSnapshot> {
        Some(lock_or_poison(&self.routing).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CARD: &str = "Dataset features:\n\
        - Age (int, distinct=47): Age of the policyholder in years\n\
        - Age_of_car (int, distinct=15): Age of the insured vehicle in years\n\
        - Make_Model (str, distinct=12): Make and model of the car\n\
        - Claim (int, distinct=2): Whether a claim was filed in the last 6 months\n\
        - City (str, distinct=3): City where the policyholder lives\n\
        Prediction target: Safe\n\
        Downstream model: RF\n";

    fn full_ladder(seed: u64) -> CascadeFm {
        CascadeFm::new(&BackendKind::all(), seed)
    }

    #[test]
    fn name_reflects_the_ladder() {
        assert_eq!(
            full_ladder(0).model_name(),
            "cascade(babbage-002->gpt-3.5-turbo->gpt-4)"
        );
    }

    #[test]
    fn shallow_unary_escalates_to_a_deep_rung() {
        let fm = full_ladder(3);
        let prompt = format!(
            "{CARD}Consider the unary operators on the attribute 'Age' that can generate \
             helpful features to predict Safe. List all possible appropriate operators."
        );
        let r = fm.complete(&prompt).unwrap();
        assert!(r.text.contains("(certain)"), "{}", r.text);
        let routing = fm.routing().unwrap();
        let babbage = routing.get("babbage-002").expect("babbage attempted");
        assert_eq!(babbage.calls, 1);
        assert_eq!(babbage.escalations, 1);
        assert_eq!(routing.get("gpt-3.5-turbo").map(|s| s.calls), Some(1));
    }

    #[test]
    fn row_completion_skips_the_shallow_rung_entirely() {
        let fm = full_ladder(0);
        let prompt = "Complete the value of the last field.\n\
            City: SF, City_population_density: ?";
        let r = fm.complete(prompt).unwrap();
        assert_eq!(r.text, "7272");
        let routing = fm.routing().unwrap();
        assert!(!routing.contains_key("babbage-002"), "{routing:?}");
        assert_eq!(routing.get("gpt-3.5-turbo").map(|s| s.calls), Some(1));
    }

    #[test]
    fn meter_counts_every_underlying_attempt() {
        let fm = full_ladder(5);
        let prompt = format!(
            "{CARD}Consider the unary operators on the attribute 'Age' that can generate \
             helpful features to predict Safe. List all possible appropriate operators."
        );
        let r = fm.complete(&prompt).unwrap();
        let snap = fm.meter().snapshot();
        let routing = fm.routing().unwrap();
        let attempts: usize = routing.values().map(|s| s.calls).sum();
        assert!(attempts >= 2, "expected an escalation, got {routing:?}");
        assert_eq!(snap.calls, attempts);
        // The response aggregates the whole chain's billing.
        assert_eq!(snap.prompt_tokens, r.prompt_tokens);
        assert_eq!(snap.completion_tokens, r.completion_tokens);
        assert_eq!(snap.cost_usd.to_bits(), r.cost_usd.to_bits());
    }

    #[test]
    fn transcripts_are_deterministic_in_the_seed() {
        let run = |seed| {
            let fm = full_ladder(seed);
            let p = format!("{CARD}Propose one binary arithmetic feature for predicting Safe.");
            let texts: Vec<String> = (0..8).map(|_| fm.complete(&p).unwrap().text).collect();
            (texts, format!("{:?}", fm.routing().unwrap()))
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn single_rung_ladder_accepts_unconditionally() {
        let fm = CascadeFm::new(&[BackendKind::Babbage002], 1);
        let prompt = "Complete the value of the last field.\n\
            City: SF, City_population_density: ?";
        // Shallow and ineligible, but it is the last rung: it must answer.
        let r = fm.complete(prompt).unwrap();
        assert_eq!(r.text, "unknown");
        let routing = fm.routing().unwrap();
        assert_eq!(routing.get("babbage-002").map(|s| s.escalations), Some(0));
    }

    /// A backend that always returns the same text (tests only).
    struct Fixed(&'static str, KnowledgeCoverage, &'static str);

    impl FmBackend for Fixed {
        fn name(&self) -> &'static str {
            self.0
        }
        fn coverage(&self) -> KnowledgeCoverage {
            self.1
        }
        fn eligible(&self, _kind: &str) -> bool {
            true
        }
        fn complete(&self, _prompt: &str) -> Result<FmResponse, FmError> {
            Ok(FmResponse {
                text: self.2.to_string(),
                prompt_tokens: 1,
                completion_tokens: 1,
                cost_usd: 0.0,
                latency: std::time::Duration::ZERO,
            })
        }
    }

    #[test]
    fn shallow_repetition_escalates_but_deep_repetition_stands() {
        let fm = CascadeFm::from_ladder(vec![
            Box::new(Fixed("cheap", KnowledgeCoverage::Shallow, "same")),
            Box::new(Fixed("deep", KnowledgeCoverage::Deep, "fresh")),
            Box::new(Fixed("deepest", KnowledgeCoverage::Deep, "last")),
        ]);
        // First call: the cheap rung's answer is new — accepted.
        assert_eq!(fm.complete("anything").unwrap().text, "same");
        // Second call: the cheap rung repeats itself verbatim — the
        // degenerate-output failure mode — so the deep rung answers.
        assert_eq!(fm.complete("anything").unwrap().text, "fresh");
        // Third call: the deep rung also repeats itself, but deep
        // repetition is legitimate sampling, not a failure mode.
        assert_eq!(fm.complete("anything").unwrap().text, "fresh");
        let routing = fm.routing().unwrap();
        assert_eq!(routing["cheap"].calls, 3);
        assert_eq!(routing["cheap"].escalations, 2);
        assert_eq!(routing["deep"].escalations, 0);
        assert!(!routing.contains_key("deepest"), "{routing:?}");
    }

    #[test]
    fn deep_rungs_escalate_only_on_structural_failures() {
        let fm = CascadeFm::from_ladder(vec![
            Box::new(Fixed(
                "deep-honest",
                KnowledgeCoverage::Deep,
                "FUNCTION: unavailable",
            )),
            Box::new(Fixed(
                "deepest",
                KnowledgeCoverage::Deep,
                "FUNCTION: bucketize\nINPUT: Age\nPARAMS: boundaries=18,25\n",
            )),
        ]);
        // A deep rung declining is ground truth: asking a deeper rung
        // would repeat the answer at a higher price.
        let prompt = "Provide an executable transformation function for the feature.";
        assert_eq!(fm.complete(prompt).unwrap().text, "FUNCTION: unavailable");
        let fm = CascadeFm::from_ladder(vec![
            Box::new(Fixed("deep-broken", KnowledgeCoverage::Deep, "I'm sorry")),
            Box::new(Fixed("deepest", KnowledgeCoverage::Deep, "fine")),
        ]);
        // ... but a refusal escalates from any rung.
        assert_eq!(fm.complete("anything").unwrap().text, "fine");
    }

    #[test]
    fn acceptance_policy_rejects_the_simulated_failure_modes() {
        // Refusal.
        assert!(!accepts(
            "binary_sample",
            "I'm sorry, I can't produce a structured answer for this request."
        ));
        // Truncation (lost closing brace).
        assert!(!accepts("binary_sample", "{\"left\": \"Age\", \"op\""));
        // Hedged unary confidence.
        assert!(!accepts("unary_proposal", "1. bucketize (medium): maybe\n"));
        assert!(accepts("unary_proposal", "1. bucketize (certain): bands\n"));
        // Missing domain thresholds.
        assert!(!accepts(
            "function_generation",
            "FUNCTION: bucketize\nINPUT: Age\nPARAMS: boundaries=auto\n"
        ));
        assert!(accepts(
            "function_generation",
            "FUNCTION: bucketize\nINPUT: Age\nPARAMS: boundaries=18,21,25\n"
        ));
        // Failed lookup.
        assert!(!accepts("row_completion", "unknown"));
        assert!(accepts("row_completion", "7272"));
        // Well-formed dicts pass.
        assert!(accepts(
            "highorder_sample",
            "{\"groupby_col\": [\"City\"], \"agg_col\": \"Claim\", \"function\": \"mean\"}"
        ));
        // Free-text kinds accept anything non-refused.
        assert!(accepts("feature_removal", "none"));
    }
}
