//! Usage accounting: calls, tokens, dollars, simulated latency.
//!
//! The meter is shared (`Arc` inside callers) and thread-safe via
//! `std::sync::Mutex`, so concurrent benchmark harnesses can hammer one
//! simulated endpoint and still get exact totals.

use std::collections::BTreeMap;
use std::time::Duration;

use std::sync::Mutex;

use smartfeat_par::lock_or_poison;

/// One API call's accounting record.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Model that served the call.
    pub model: String,
    /// Prompt tokens billed.
    pub prompt_tokens: usize,
    /// Completion tokens billed.
    pub completion_tokens: usize,
    /// USD billed.
    pub cost_usd: f64,
    /// Simulated latency.
    pub latency: Duration,
    /// Short label of the request kind (e.g. `"unary_proposal"`).
    pub kind: String,
}

/// Aggregate snapshot of a meter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageSnapshot {
    /// Total calls.
    pub calls: usize,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
    /// Total completion tokens.
    pub completion_tokens: usize,
    /// Total USD.
    pub cost_usd: f64,
    /// Sum of simulated latencies (sequential wall-clock equivalent).
    pub latency: Duration,
}

impl UsageSnapshot {
    /// Total tokens in both directions.
    pub fn total_tokens(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Per-backend routing accounting for a cascade router: how many
/// attempts each model family served, how many of those were rejected
/// and escalated past, and what they cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouteStat {
    /// Attempts served by this family (accepted or not).
    pub calls: usize,
    /// Attempts whose output was rejected, escalating to the next rung.
    pub escalations: usize,
    /// Prompt tokens billed by this family.
    pub prompt_tokens: usize,
    /// Completion tokens billed by this family.
    pub completion_tokens: usize,
    /// USD billed by this family.
    pub cost_usd: f64,
}

impl RouteStat {
    /// Accumulate another stat into this one.
    pub fn add(&mut self, other: &RouteStat) {
        self.calls += other.calls;
        self.escalations += other.escalations;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.cost_usd += other.cost_usd;
    }

    /// `self - earlier`, for snapshot-delta bookkeeping.
    pub fn delta(&self, earlier: &RouteStat) -> RouteStat {
        RouteStat {
            calls: self.calls.saturating_sub(earlier.calls),
            escalations: self.escalations.saturating_sub(earlier.escalations),
            prompt_tokens: self.prompt_tokens.saturating_sub(earlier.prompt_tokens),
            completion_tokens: self
                .completion_tokens
                .saturating_sub(earlier.completion_tokens),
            cost_usd: self.cost_usd - earlier.cost_usd,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.calls == 0 && self.escalations == 0
    }
}

/// Routing stats keyed by backend name, in sorted (deterministic) order.
pub type RoutingSnapshot = BTreeMap<String, RouteStat>;

/// Thread-safe accumulating usage meter with a bounded call log.
#[derive(Debug, Default)]
pub struct UsageMeter {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    snapshot: UsageSnapshot,
    log: Vec<CallRecord>,
    log_cap: Option<usize>,
}

impl UsageMeter {
    /// A meter with an unbounded call log.
    pub fn new() -> Self {
        UsageMeter::default()
    }

    /// A meter that retains only the most recent `cap` call records
    /// (aggregates are always exact).
    pub fn with_log_cap(cap: usize) -> Self {
        UsageMeter {
            inner: Mutex::new(Inner {
                log_cap: Some(cap),
                ..Inner::default()
            }),
        }
    }

    /// Record one call.
    pub fn record(&self, rec: CallRecord) {
        let mut inner = lock_or_poison(&self.inner);
        inner.snapshot.calls += 1;
        inner.snapshot.prompt_tokens += rec.prompt_tokens;
        inner.snapshot.completion_tokens += rec.completion_tokens;
        inner.snapshot.cost_usd += rec.cost_usd;
        inner.snapshot.latency += rec.latency;
        inner.log.push(rec);
        if let Some(cap) = inner.log_cap {
            let overflow = inner.log.len().saturating_sub(cap);
            if overflow > 0 {
                inner.log.drain(..overflow);
            }
        }
    }

    /// Current aggregate totals.
    pub fn snapshot(&self) -> UsageSnapshot {
        lock_or_poison(&self.inner).snapshot
    }

    /// Clone of the retained call log.
    pub fn log(&self) -> Vec<CallRecord> {
        lock_or_poison(&self.inner).log.clone()
    }

    /// Reset everything to zero.
    pub fn reset(&self) {
        let mut inner = lock_or_poison(&self.inner);
        inner.snapshot = UsageSnapshot::default();
        inner.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tokens: usize) -> CallRecord {
        CallRecord {
            model: "gpt-4".into(),
            prompt_tokens: tokens,
            completion_tokens: tokens / 2,
            cost_usd: 0.01,
            latency: Duration::from_millis(100),
            kind: "test".into(),
        }
    }

    #[test]
    fn aggregates_accumulate() {
        let m = UsageMeter::new();
        m.record(rec(100));
        m.record(rec(200));
        let s = m.snapshot();
        assert_eq!(s.calls, 2);
        assert_eq!(s.prompt_tokens, 300);
        assert_eq!(s.completion_tokens, 150);
        assert_eq!(s.total_tokens(), 450);
        assert!((s.cost_usd - 0.02).abs() < 1e-12);
        assert_eq!(s.latency, Duration::from_millis(200));
    }

    #[test]
    fn log_cap_keeps_recent() {
        let m = UsageMeter::with_log_cap(2);
        m.record(rec(1));
        m.record(rec(2));
        m.record(rec(3));
        let log = m.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].prompt_tokens, 2);
        assert_eq!(log[1].prompt_tokens, 3);
        // Aggregates unaffected by the cap.
        assert_eq!(m.snapshot().calls, 3);
    }

    #[test]
    fn reset_clears() {
        let m = UsageMeter::new();
        m.record(rec(10));
        m.reset();
        assert_eq!(m.snapshot(), UsageSnapshot::default());
        assert!(m.log().is_empty());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        use std::sync::Arc;
        let m = Arc::new(UsageMeter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.record(rec(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().calls, 800);
    }
}
