//! The simulated foundation model: reads SMARTFEAT's natural-language
//! prompts, consults the [`crate::knowledge`] base, and writes back
//! natural-language-ish structured text for the caller to parse.

use std::sync::{Arc, Mutex};

use smartfeat_par::lock_or_poison;
use smartfeat_rng::Rng;

use crate::backend::KnowledgeCoverage;
use crate::cost::ModelSpec;
use crate::knowledge::{self, Concept};
use crate::parse::{field_after, FeatureInfo, PromptContext};
use crate::stats::{CallRecord, RoutingSnapshot, UsageMeter};
use crate::token::approx_tokens;

/// Classify a prompt by the task template it carries. The label feeds
/// the accounting log and the cascade router's eligibility/acceptance
/// policies, so it is part of the crate's public surface.
pub fn prompt_kind(prompt: &str) -> &'static str {
    if prompt.contains("Consider the unary operators on the attribute") {
        "unary_proposal"
    } else if prompt.contains("Propose one binary arithmetic feature") {
        "binary_sample"
    } else if prompt.contains("Generate a groupby feature") {
        "highorder_sample"
    } else if prompt.contains("Propose one extractor feature") {
        "extractor_sample"
    } else if prompt.contains("Provide an executable transformation function") {
        "function_generation"
    } else if prompt.contains("Complete the value of the last field") {
        "row_completion"
    } else if prompt.contains("unlikely to help predict") {
        "feature_removal"
    } else if prompt.contains("Mutate the candidate feature") {
        "mutation"
    } else if prompt.contains("Combine the two parent features") {
        "crossover"
    } else if prompt.contains("Decide the next exploration action") {
        "react_decision"
    } else {
        "generic"
    }
}

/// Transport-level errors. Output-quality problems (malformed text,
/// refusals, repeats) are *not* errors — they arrive as ordinary responses
/// the caller must cope with, exactly like a real API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmError {
    /// The configured hard call budget was exhausted.
    BudgetExhausted {
        /// Budget that was configured.
        budget: usize,
    },
}

impl std::fmt::Display for FmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmError::BudgetExhausted { budget } => {
                write!(f, "API call budget of {budget} exhausted")
            }
        }
    }
}

impl std::error::Error for FmError {}

/// One completion with its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FmResponse {
    /// The model's text output.
    pub text: String,
    /// Prompt tokens billed.
    pub prompt_tokens: usize,
    /// Completion tokens billed.
    pub completion_tokens: usize,
    /// USD billed for this call.
    pub cost_usd: f64,
    /// Simulated latency for this call.
    pub latency: std::time::Duration,
}

/// Anything that answers prompts — lets tests substitute canned models.
pub trait FoundationModel: Send + Sync {
    /// Model identifier.
    fn model_name(&self) -> &str;

    /// Answer one prompt.
    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError>;

    /// Shared usage meter.
    fn meter(&self) -> &UsageMeter;

    /// Per-backend routing stats, when this model routes between several
    /// backends (see `CascadeFm`). Plain single-model FMs return `None`.
    fn routing(&self) -> Option<RoutingSnapshot> {
        None
    }
}

/// Boxed trait objects answer prompts like the model they wrap, so
/// callers can pick a backend at runtime and still use `&dyn`-based APIs.
impl<M: FoundationModel + ?Sized> FoundationModel for Box<M> {
    fn model_name(&self) -> &str {
        (**self).model_name()
    }

    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError> {
        (**self).complete(prompt)
    }

    fn meter(&self) -> &UsageMeter {
        (**self).meter()
    }

    fn routing(&self) -> Option<RoutingSnapshot> {
        (**self).routing()
    }
}

/// Configuration of a [`SimulatedFm`].
#[derive(Debug, Clone)]
pub struct FmConfig {
    /// RNG seed; identical call sequences reproduce identical transcripts.
    pub seed: u64,
    /// Sampling temperature in [0, 2]: 0 ⇒ near-argmax, higher ⇒ more
    /// diverse sampling-strategy outputs.
    pub temperature: f64,
    /// Probability of emitting a degraded output (malformed / refusal /
    /// repetition) on any call. Exercises the paper's generation-error
    /// threshold.
    pub error_rate: f64,
    /// Optional hard cap on total calls.
    pub call_budget: Option<usize>,
    /// How much of the [`crate::knowledge`] base this model family can
    /// see. Shallow models parrot the answer formats but hedge on the
    /// domain facts behind them.
    pub coverage: KnowledgeCoverage,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            seed: 0,
            temperature: 0.7,
            error_rate: 0.0,
            call_budget: None,
            coverage: KnowledgeCoverage::Deep,
        }
    }
}

/// The simulated FM.
///
/// ```
/// use smartfeat_fm::{FoundationModel, SimulatedFm};
/// let fm = SimulatedFm::gpt35(0);
/// let r = fm.complete("Complete the value of the last field.\nCity: SF, Density: ?").unwrap();
/// assert_eq!(r.text, "7272");
/// assert_eq!(fm.meter().snapshot().calls, 1);
/// ```
pub struct SimulatedFm {
    spec: ModelSpec,
    config: FmConfig,
    meter: Arc<UsageMeter>,
    state: Mutex<OracleState>,
}

struct OracleState {
    rng: Rng,
    last_text: Option<String>,
    calls: usize,
}

impl SimulatedFm {
    /// Build with an owned meter.
    pub fn new(spec: ModelSpec, config: FmConfig) -> Self {
        Self::with_meter(spec, config, Arc::new(UsageMeter::new()))
    }

    /// Build sharing an existing meter (so the selector's GPT-4 and the
    /// generator's GPT-3.5 can bill one budget, as the paper's setup does).
    pub fn with_meter(spec: ModelSpec, config: FmConfig, meter: Arc<UsageMeter>) -> Self {
        let seed = config.seed;
        SimulatedFm {
            spec,
            config,
            meter,
            state: Mutex::new(OracleState {
                rng: Rng::seed_from_u64(seed),
                last_text: None,
                calls: 0,
            }),
        }
    }

    /// GPT-4 defaults (operator-selector role).
    pub fn gpt4(seed: u64) -> Self {
        SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed,
                ..FmConfig::default()
            },
        )
    }

    /// GPT-3.5-turbo defaults (function-generator role).
    pub fn gpt35(seed: u64) -> Self {
        SimulatedFm::new(
            ModelSpec::gpt35_turbo(),
            FmConfig {
                seed,
                ..FmConfig::default()
            },
        )
    }

    /// The shared meter handle.
    pub fn meter_arc(&self) -> Arc<UsageMeter> {
        Arc::clone(&self.meter)
    }

    fn answer(&self, prompt: &str, rng: &mut Rng) -> String {
        let ctx = PromptContext::parse(prompt);
        let kind = prompt_kind(prompt);
        let text = match kind {
            "unary_proposal" => answer_unary(prompt, &ctx),
            "binary_sample" => answer_binary(&ctx, rng, self.config.temperature),
            "highorder_sample" => answer_highorder(&ctx, rng, self.config.temperature),
            "extractor_sample" => answer_extractor(&ctx, rng),
            "function_generation" => answer_funcgen(prompt, &ctx),
            "row_completion" => answer_row_completion(prompt),
            "feature_removal" => answer_removal(&ctx),
            "mutation" => answer_mutation(prompt, &ctx, rng, self.config.temperature),
            "crossover" => answer_crossover(prompt, &ctx, rng, self.config.temperature),
            "react_decision" => answer_react(prompt),
            _ => "I need more context to help with this request. Please describe the dataset \
                  features, the prediction target, and the downstream model."
                .to_string(),
        };
        match self.config.coverage {
            KnowledgeCoverage::Deep => text,
            KnowledgeCoverage::Shallow => shallow_degrade(kind, text),
        }
    }

    fn degrade(&self, text: String, rng: &mut Rng, last: &Option<String>) -> String {
        // Three real-world failure modes, equally likely.
        match rng.gen_range(0..3u8) {
            0 => {
                // Truncation: drop the tail (lost closing brace, cut list).
                let mut cut = text.len() * 2 / 3;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                let mut t = text;
                t.truncate(cut);
                t
            }
            1 => "I'm sorry, I can't produce a structured answer for this request.".to_string(),
            _ => last.clone().unwrap_or(text), // verbatim repetition
        }
    }
}

impl FoundationModel for SimulatedFm {
    fn model_name(&self) -> &str {
        self.spec.name
    }

    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError> {
        let mut state = lock_or_poison(&self.state);
        if let Some(budget) = self.config.call_budget {
            if state.calls >= budget {
                return Err(FmError::BudgetExhausted { budget });
            }
        }
        state.calls += 1;

        // Split borrow of state fields.
        let OracleState { rng, last_text, .. } = &mut *state;
        let mut text = self.answer(prompt, rng);
        if self.config.error_rate > 0.0 && rng.gen_f64() < self.config.error_rate {
            text = self.degrade(text, rng, last_text);
        }
        *last_text = Some(text.clone());

        let prompt_tokens = approx_tokens(prompt);
        let completion_tokens = approx_tokens(&text);
        let cost_usd = self.spec.cost_usd(prompt_tokens, completion_tokens);
        let latency = self.spec.latency(prompt_tokens, completion_tokens);
        self.meter.record(CallRecord {
            model: self.spec.name.to_string(),
            prompt_tokens,
            completion_tokens,
            cost_usd,
            latency,
            kind: prompt_kind(prompt).to_string(),
        });
        Ok(FmResponse {
            text,
            prompt_tokens,
            completion_tokens,
            cost_usd,
            latency,
        })
    }

    fn meter(&self) -> &UsageMeter {
        &self.meter
    }
}

// ---------------------------------------------------------------------------
// Task answers
// ---------------------------------------------------------------------------

/// Shallow-coverage degradation: the cheap base-model family knows the
/// answer *formats* but not the domain facts behind them, so its output
/// is well-formed yet hedged — exactly what a cascade's confidence and
/// completeness checks exist to catch.
fn shallow_degrade(kind: &str, text: String) -> String {
    match kind {
        // Domain confidence collapses: nothing is "certain" or "high"
        // without the knowledge base behind the proposal.
        "unary_proposal" => text
            .replace("(certain)", "(medium)")
            .replace("(high)", "(medium)"),
        // World-knowledge lookups are simply absent.
        "row_completion" => "unknown".to_string(),
        // Domain bucket boundaries degrade to the "auto" placeholder.
        "function_generation" => match text.find("boundaries=") {
            Some(pos) => {
                let start = pos + "boundaries=".len();
                let end = text[start..]
                    .find('\n')
                    .map(|i| start + i)
                    .unwrap_or(text.len());
                let mut t = text;
                t.replace_range(start..end, "auto");
                t
            }
            None => text,
        },
        _ => text,
    }
}

/// Confidence labels matching the paper's prompt template.
fn conf(level: u8) -> &'static str {
    match level {
        3 => "certain",
        2 => "high",
        1 => "medium",
        _ => "low",
    }
}

fn answer_unary(prompt: &str, ctx: &PromptContext) -> String {
    let Some(attr) = field_after(prompt, "the attribute") else {
        return "Which attribute should I consider?".to_string();
    };
    let Some(feature) = ctx.feature(&attr) else {
        return format!("The attribute '{attr}' does not appear in the dataset description.");
    };
    let concepts = feature.concepts();
    let mut proposals: Vec<(String, u8, String)> = Vec::new();
    let mut add = |op: &str, level: u8, why: String| {
        if !proposals.iter().any(|(o, _, _)| o == op) {
            proposals.push((op.to_string(), level, why));
        }
    };
    for c in &concepts {
        match c {
            Concept::Age => {
                add(
                    "bucketize",
                    3,
                    format!(
                        "group {attr} into insurance-style age bands (under 18, 18-21, 21-25, \
                         25-35, 35-45, 45-55, 55-65, 65+); the 21-year threshold is widely \
                         used in practice"
                    ),
                );
                add(
                    "normalize",
                    2,
                    format!("scale {attr} to [0, 1] for distance-based models"),
                );
            }
            Concept::ObjectAge => {
                add(
                    "years_since",
                    3,
                    format!(
                        "derive the manufacturing year as {} minus {attr}",
                        knowledge::current_year()
                    ),
                );
                add(
                    "bucketize",
                    2,
                    format!("band {attr} into new/recent/old (3, 5, 10 years)"),
                );
            }
            Concept::YearOfEvent => {
                // Only a column whose *values* are calendar years can be
                // differenced against the current year; counts or amounts
                // that merely mention "year" in their description are not.
                let value_like_year = !concepts.iter().any(|c| {
                    matches!(
                        c,
                        Concept::Count
                            | Concept::Money
                            | Concept::RatePercentage
                            | Concept::SmokingIntensity
                            | Concept::Hours
                    )
                });
                if value_like_year {
                    add(
                        "years_since",
                        3,
                        format!(
                            "derive elapsed years as {} minus {attr}",
                            knowledge::current_year()
                        ),
                    );
                }
            }
            Concept::DateLike => {
                add(
                    "date_split",
                    3,
                    format!("split {attr} into year, month and weekday components"),
                );
            }
            c if c.is_clinical() => {
                let bounds = knowledge::bucket_boundaries(*c)
                    .map(|b| {
                        b.iter()
                            .map(|v| format!("{v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .unwrap_or_default();
                add(
                    "bucketize",
                    3,
                    format!("bucketize {attr} at clinically standard thresholds ({bounds})"),
                );
            }
            Concept::Money => {
                add(
                    "log",
                    3,
                    format!("log-transform {attr}: monetary amounts are heavy-tailed"),
                );
                add(
                    "normalize",
                    2,
                    format!("scale {attr} for comparability across features"),
                );
            }
            Concept::RatePercentage => {
                add(
                    "normalize",
                    2,
                    format!("{attr} is already bounded; min-max scale it"),
                );
            }
            Concept::Count => {
                add(
                    "log",
                    2,
                    format!("log(1+{attr}) tames the skew of count data"),
                );
            }
            Concept::Hours => {
                add(
                    "bucketize",
                    2,
                    format!("band {attr} into part-time/full-time/overtime"),
                );
            }
            Concept::PersonCategory
            | Concept::Education
            | Concept::Occupation
            | Concept::GeoRegion
            | Concept::SpeciesOrStation => {
                if feature.distinct.is_some_and(|d| d > 20) {
                    // Too many categories for one-hot; frequency encoding
                    // keeps the column usable for every model class.
                    add(
                        "frequency",
                        2,
                        format!("frequency-encode {attr}: too many categories for one-hot"),
                    );
                } else if !feature.is_numeric() || feature.distinct.is_some_and(|d| d <= 20) {
                    // One-hot expansion helps linear/distance models; tree
                    // ensembles split categorical codes natively and only
                    // get diluted by dozens of extra columns.
                    let level = match ctx.model.as_deref() {
                        Some("LR") | Some("DNN") | Some("KNN") | Some("NB") => 2,
                        _ => 1,
                    };
                    add(
                        "dummies",
                        level,
                        format!("one-hot encode {attr} for linear models"),
                    );
                }
            }
            Concept::GeoCity => {
                add(
                    "dummies",
                    1,
                    format!("one-hot encode {attr}; a density lookup may be more informative"),
                );
            }
            Concept::Identifier => {
                add(
                    "none",
                    0,
                    format!("{attr} is an identifier; no unary transform is helpful"),
                );
            }
            Concept::AcademicScore => {
                add(
                    "normalize",
                    2,
                    format!("z-score {attr} so scores are comparable across scales"),
                );
            }
            Concept::SportsStat | Concept::WinLoss => {
                // Scaling only helps scale-sensitive downstream models;
                // tree ensembles are invariant to it.
                let level = match ctx.model.as_deref() {
                    Some("LR") | Some("DNN") | Some("KNN") => 2,
                    _ => 1,
                };
                add(
                    "normalize",
                    level,
                    format!("scale {attr} so match statistics are comparable across matches"),
                );
            }
            Concept::Temperature => {
                add(
                    "bucketize",
                    3,
                    format!("bucketize {attr} at biological activity thresholds (50, 65, 75)"),
                );
            }
            Concept::WeekOfYear => {
                add(
                    "bucketize",
                    3,
                    format!("band {attr} into seasonal windows; weeks 27-40 are peak season"),
                );
            }
            _ => {}
        }
    }
    if proposals.is_empty() {
        if feature.is_numeric() {
            proposals.push((
                "normalize".into(),
                1,
                format!("no domain-specific transform is evident; scaling {attr} may still help"),
            ));
        } else {
            proposals.push((
                "dummies".into(),
                1,
                format!("treat {attr} as a plain categorical and one-hot encode it"),
            ));
        }
    }
    let mut out = String::new();
    for (i, (op, level, why)) in proposals.iter().enumerate() {
        out.push_str(&format!("{}. {} ({}): {}\n", i + 1, op, conf(*level), why));
    }
    out
}

/// Weighted choice with temperature: weight^(1/max(t, 0.05)).
fn weighted_pick<'a, T>(items: &'a [(T, f64)], rng: &mut Rng, temperature: f64) -> Option<&'a T> {
    if items.is_empty() {
        return None;
    }
    if temperature <= 0.05 {
        // Greedy decoding: the highest-weighted item, first on ties.
        let mut best = &items[0];
        for item in &items[1..] {
            if item.1 > best.1 {
                best = item;
            }
        }
        return Some(&best.0);
    }
    let power = 1.0 / temperature.max(0.05);
    let adjusted: Vec<f64> = items.iter().map(|(_, w)| w.max(1e-9).powf(power)).collect();
    let total: f64 = adjusted.iter().sum();
    let mut draw = rng.gen_f64() * total;
    for (item, w) in items.iter().map(|(i, _)| i).zip(&adjusted) {
        draw -= w;
        if draw <= 0.0 {
            return Some(item);
        }
    }
    items.last().map(|(i, _)| i)
}

/// Polarity of a sports statistic: +1 good, −1 bad, 0 neutral. Mirrored
/// opponent stats (a `.2` suffix when the target concerns player 1) flip
/// sign — the opponent's aces hurt player 1's chances.
fn stat_polarity(f: &FeatureInfo) -> f64 {
    let text = format!("{} {}", f.name, f.description).to_ascii_lowercase();
    const BAD: &[&str] = &["fault", "error", "unforced", "double", "loss", "dropped"];
    const GOOD: &[&str] = &["won", "winner", "ace", "point", "serve", "break", "net"];
    let base = if BAD.iter().any(|k| text.contains(k)) {
        -1.0
    } else if GOOD.iter().any(|k| text.contains(k)) {
        1.0
    } else {
        0.0
    };
    if f.name.ends_with(".2") {
        -base
    } else {
        base
    }
}

/// Player-pair detection: `FSW.1` ↔ `FSW.2` style mirrored stats.
fn mirror_pair<'a>(a: &'a FeatureInfo, feats: &'a [FeatureInfo]) -> Option<&'a FeatureInfo> {
    let (stem, suffix) = a.name.rsplit_once('.')?;
    let other = match suffix {
        "1" => "2",
        "2" => "1",
        _ => return None,
    };
    let target = format!("{stem}.{other}");
    feats.iter().find(|f| f.name == target)
}

fn answer_binary(ctx: &PromptContext, rng: &mut Rng, temperature: f64) -> String {
    let numeric: Vec<&FeatureInfo> = ctx
        .numeric_features()
        .into_iter()
        .filter(|f| {
            Some(f.name.as_str()) != ctx.target.as_deref()
                && !f.concepts().contains(&Concept::Identifier)
                // Raw quantities only: arithmetic on bucket codes, dummies,
                // or aggregate outputs is meaningless.
                && !f.is_derived_code()
        })
        .collect();
    if numeric.len() < 2 {
        return "{\"error\": \"fewer than two numeric attributes are available\"}".to_string();
    }
    // Score candidate (left, right, op) triples by conceptual affinity.
    let mut candidates: Vec<((String, String, char, String), f64)> = Vec::new();
    for (i, a) in numeric.iter().enumerate() {
        if let Some(b) = mirror_pair(a, &ctx.features) {
            if a.name < b.name {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '-',
                        format!(
                            "difference between the two players' {}",
                            if a.description.is_empty() {
                                &a.name
                            } else {
                                &a.description
                            }
                        ),
                    ),
                    20.0,
                ));
            }
        }
        for b in numeric.iter().skip(i + 1) {
            let ca = a.concepts();
            let cb = b.concepts();
            let both = |c: Concept| ca.contains(&c) && cb.contains(&c);
            if both(Concept::Money) {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '-',
                        format!("net amount: {} minus {}", a.name, b.name),
                    ),
                    5.0,
                ));
            }
            if both(Concept::Count)
                || (ca.contains(&Concept::WinLoss) && cb.contains(&Concept::WinLoss))
            {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '/',
                        format!("rate of {} per {}", a.name, b.name),
                    ),
                    4.0,
                ));
            }
            if (ca.contains(&Concept::Money) && cb.contains(&Concept::Hours))
                || (ca.contains(&Concept::Hours) && cb.contains(&Concept::Money))
            {
                let (m, h) = if ca.contains(&Concept::Money) {
                    (a, b)
                } else {
                    (b, a)
                };
                candidates.push((
                    (
                        m.name.clone(),
                        h.name.clone(),
                        '/',
                        format!("{} per hour of {}", m.name, h.name),
                    ),
                    5.0,
                ));
            }
            if (ca.contains(&Concept::SportsStat) || ca.contains(&Concept::WinLoss))
                && (cb.contains(&Concept::SportsStat) || cb.contains(&Concept::WinLoss))
            {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '/',
                        format!("ratio of {} to {}", a.name, b.name),
                    ),
                    1.0,
                ));
            }
            // Pack-years: smoking intensity × age, the classic exposure
            // measure every medical model knows.
            let smoke_age = (ca.contains(&Concept::SmokingIntensity) && cb.contains(&Concept::Age))
                || (cb.contains(&Concept::SmokingIntensity) && ca.contains(&Concept::Age));
            if smoke_age {
                let (s_col, a_col) = if ca.contains(&Concept::SmokingIntensity) {
                    (a, b)
                } else {
                    (b, a)
                };
                candidates.push((
                    (
                        s_col.name.clone(),
                        a_col.name.clone(),
                        '*',
                        format!(
                            "pack-years style exposure: {} times {}",
                            s_col.name, a_col.name
                        ),
                    ),
                    12.0,
                ));
            }
            let a_clinical = ca.iter().any(|c| c.is_clinical());
            let b_clinical = cb.iter().any(|c| c.is_clinical());
            if a_clinical && b_clinical {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '/',
                        format!("clinical ratio of {} to {}", a.name, b.name),
                    ),
                    2.0,
                ));
            }
            if both(Concept::HousingSize) || both(Concept::Coordinate) {
                candidates.push((
                    (
                        a.name.clone(),
                        b.name.clone(),
                        '/',
                        format!("{} per {}", a.name, b.name),
                    ),
                    4.0,
                ));
            }
        }
    }
    // Always admit a weakly-weighted random pair so the space stays rich.
    let i = rng.gen_range(0..numeric.len());
    let j = (i + 1 + rng.gen_range(0..numeric.len() - 1)) % numeric.len();
    let (a, b) = (numeric[i], numeric[j]);
    let op = ['+', '-', '*', '/'][rng.gen_range(0..4usize)];
    candidates.push((
        (
            a.name.clone(),
            b.name.clone(),
            op,
            format!("combination of {} and {}", a.name, b.name),
        ),
        0.5,
    ));
    let Some((left, right, op, desc)) = weighted_pick(&candidates, rng, temperature).cloned()
    else {
        return "{\"error\": \"no candidate pair found\"}".to_string();
    };
    format!(
        "{{\"left\": \"{left}\", \"op\": \"{op}\", \"right\": \"{right}\", \"description\": \"{desc}\"}}"
    )
}

fn answer_highorder(ctx: &PromptContext, rng: &mut Rng, temperature: f64) -> String {
    let target = ctx.target.clone().unwrap_or_default();
    let groupable: Vec<&FeatureInfo> = ctx
        .groupable_features()
        .into_iter()
        .filter(|f| {
            const NON_KEY_PREFIXES: &[&str] = &[
                "Normalized_",
                "Log_",
                "Sqrt_",
                "Squared_",
                "Abs_",
                "Reciprocal_",
                "YearsSince_",
                "Frequency_",
            ];
            f.name != target
                && !f.concepts().contains(&Concept::Identifier)
                // Bucket codes and date parts group well; continuous
                // transforms and aggregate outputs do not.
                && !f.is_aggregate_output()
                && !NON_KEY_PREFIXES.iter().any(|p| f.name.starts_with(p))
        })
        .collect();
    let aggregable: Vec<&FeatureInfo> = ctx
        .numeric_features()
        .into_iter()
        .filter(|f| f.name != target && !f.is_derived_code())
        .collect();
    if groupable.is_empty() || aggregable.is_empty() {
        return "{\"error\": \"no valid groupby/aggregate column combination\"}".to_string();
    }
    // Group keys: prefer conceptual grouping columns; entity identifiers
    // like species or station labels are the canonical surveillance keys.
    let g_weights: Vec<(&FeatureInfo, f64)> = groupable
        .iter()
        .map(|f| {
            let c = f.concepts();
            let w = if c.contains(&Concept::SpeciesOrStation)
                || c.contains(&Concept::ProductModel)
                || c.contains(&Concept::Occupation)
            {
                7.0
            } else if c.iter().any(|cc| cc.is_grouping()) {
                4.0
            } else {
                1.0
            };
            (*f, w)
        })
        .collect();
    // Aggregates: prefer flags/rates (historical outcomes), and columns
    // that share a concept with the prediction target (aggregating an
    // income-like column to predict income, a count of insects to predict
    // infestation, …).
    let target_concepts = ctx
        .target
        .as_deref()
        .map(|t| crate::knowledge::detect(t, ""))
        .unwrap_or_default();
    let a_weights: Vec<(&FeatureInfo, f64)> = aggregable
        .iter()
        .map(|f| {
            let c = f.concepts();
            let mut w = if c.contains(&Concept::BinaryFlag) || c.contains(&Concept::RatePercentage)
            {
                5.0
            } else if c.contains(&Concept::Count) || c.contains(&Concept::Money) {
                2.0
            } else {
                1.0
            };
            if c.iter()
                .any(|cc| *cc != Concept::Generic && target_concepts.contains(cc))
            {
                w *= 4.0;
            }
            (*f, w)
        })
        .collect();
    let Some(gcol) = weighted_pick(&g_weights, rng, temperature).copied() else {
        return "{\"error\": \"no groupby column\"}".to_string();
    };
    // Conditional judgment: given the chosen key, re-weight aggregates.
    // Counts aggregated per entity (insects per trap/species, purchases
    // per product) are the canonical per-group summary.
    let gcol_concepts = gcol.concepts();
    let a_weights: Vec<(&FeatureInfo, f64)> = a_weights
        .into_iter()
        .map(|(f, mut w)| {
            if gcol_concepts.contains(&Concept::SpeciesOrStation)
                && f.concepts().contains(&Concept::Count)
            {
                w *= 6.0;
            }
            (f, w)
        })
        .collect();
    let Some(acol) = weighted_pick(&a_weights, rng, temperature).copied() else {
        return "{\"error\": \"no aggregate column\"}".to_string();
    };
    if gcol.name == acol.name
        || gcol.name.contains(acol.name.as_str())
        || acol.name.contains(gcol.name.as_str())
    {
        // Aggregating a column over (a derivative of) itself is a step
        // function of itself; fall back to a group-size feature.
        return format!(
            "{{\"groupby_col\": [\"{}\"], \"agg_col\": \"{}\", \"function\": \"count\"}}",
            gcol.name, acol.name
        );
    }
    let acol_concepts = acol.concepts();
    let func_weights: Vec<(&str, f64)> = if acol_concepts.contains(&Concept::BinaryFlag)
        || acol_concepts.contains(&Concept::RatePercentage)
    {
        vec![("mean", 6.0), ("sum", 1.0), ("max", 0.5)]
    } else if acol_concepts.contains(&Concept::Count) {
        vec![("mean", 3.0), ("sum", 2.0), ("max", 1.0)]
    } else {
        vec![("mean", 3.0), ("max", 1.0), ("min", 1.0), ("std", 0.5)]
    };
    let func = weighted_pick(&func_weights, rng, temperature)
        .copied()
        .unwrap_or("mean");
    // Occasionally group by two keys when a second grouping column exists
    // (a temperature-dependent exploration move; never at greedy decoding).
    let second = if g_weights.len() > 1 && rng.gen_f64() < 0.25 * temperature.min(1.0) {
        g_weights
            .iter()
            .map(|(f, _)| *f)
            .find(|f| f.name != gcol.name)
    } else {
        None
    };
    let gcols = match second {
        Some(s) => format!("\"{}\", \"{}\"", gcol.name, s.name),
        None => format!("\"{}\"", gcol.name),
    };
    format!(
        "{{\"groupby_col\": [{gcols}], \"agg_col\": \"{}\", \"function\": \"{func}\"}}",
        acol.name
    )
}

fn answer_extractor(ctx: &PromptContext, rng: &mut Rng) -> String {
    let target = ctx.target.clone().unwrap_or_default();
    // 1. City present ⇒ the paper's F4: population-density lookup.
    if let Some(city) = ctx
        .features
        .iter()
        .find(|f| f.concepts().contains(&Concept::GeoCity) && f.name != target)
    {
        return format!(
            "{{\"kind\": \"external_lookup\", \"name\": \"{}_population_density\", \
             \"columns\": [\"{}\"], \"knowledge\": \"city_population_density\", \
             \"description\": \"approximate population density of {} in people per square km\"}}",
            city.name, city.name, city.name
        );
    }
    // 2. Several sports statistics ⇒ a weighted performance index.
    let stats: Vec<&FeatureInfo> = ctx
        .features
        .iter()
        .filter(|f| {
            f.is_numeric()
                && f.name != target
                && !f.is_derived_code()
                && stat_polarity(f) != 0.0
                && f.concepts()
                    .iter()
                    .any(|c| matches!(c, Concept::SportsStat | Concept::WinLoss))
        })
        .collect();
    if stats.len() >= 3 {
        let mut chosen = stats.clone();
        // Keep the index focused: at most 12 components, stable order
        // (covers both players' stat blocks in head-to-head data).
        chosen.truncate(12);
        let cols: Vec<String> = chosen.iter().map(|f| format!("\"{}\"", f.name)).collect();
        let weights: Vec<String> = chosen
            .iter()
            .map(|f| format!("{}", stat_polarity(f)))
            .collect();
        return format!(
            "{{\"kind\": \"weighted_index\", \"name\": \"Performance_index\", \
             \"columns\": [{}], \"weights\": [{}], \"normalize\": true, \
             \"description\": \"standardized weighted performance index combining positive and negative match statistics\"}}",
            cols.join(", "),
            weights.join(", ")
        );
    }
    // 3. Several clinical measurements ⇒ a health-risk index.
    let clinical: Vec<&FeatureInfo> = ctx
        .features
        .iter()
        .filter(|f| {
            f.is_numeric()
                && f.name != target
                && !f.is_derived_code()
                && f.concepts().iter().any(|c| c.is_clinical())
        })
        .collect();
    if clinical.len() >= 2 {
        let cols: Vec<String> = clinical.iter().map(|f| format!("\"{}\"", f.name)).collect();
        let weights: Vec<String> = clinical.iter().map(|_| "1".to_string()).collect();
        return format!(
            "{{\"kind\": \"weighted_index\", \"name\": \"Health_risk_index\", \
             \"columns\": [{}], \"weights\": [{}], \"normalize\": true, \
             \"description\": \"sum of standardized clinical risk measurements\"}}",
            cols.join(", "),
            weights.join(", ")
        );
    }
    // 4. Money + size ⇒ per-unit value.
    let money: Vec<&FeatureInfo> = ctx
        .features
        .iter()
        .filter(|f| {
            f.is_numeric()
                && f.name != target
                && !f.is_derived_code()
                && f.concepts().contains(&Concept::Money)
        })
        .collect();
    let size: Vec<&FeatureInfo> = ctx
        .features
        .iter()
        .filter(|f| {
            f.is_numeric()
                && f.name != target
                && !f.is_derived_code()
                && f.concepts()
                    .iter()
                    .any(|c| matches!(c, Concept::HousingSize | Concept::Count | Concept::Hours))
        })
        .collect();
    if !money.is_empty() && !size.is_empty() {
        let m = money[rng.gen_range(0..money.len())];
        let s = size[rng.gen_range(0..size.len())];
        return format!(
            "{{\"kind\": \"per_unit\", \"name\": \"{}_per_{}\", \"columns\": [\"{}\", \"{}\"], \
             \"description\": \"{} divided by {}\"}}",
            m.name, s.name, m.name, s.name, m.name, s.name
        );
    }
    "{\"kind\": \"none\", \"description\": \"no further extractor feature is evident\"}".to_string()
}

/// Prefix a sampling-dict answer with the `family` tag the evolutionary
/// offspring parser routes on. Error dicts get tagged too; the router
/// still rejects them on their missing fields.
fn tag_family(json: String, family: &str) -> String {
    json.replacen('{', &format!("{{\"family\": \"{family}\", "), 1)
}

/// Mutation: re-draw from the parent's family over the current agenda —
/// the family is preserved, the ingredients are re-sampled, which is
/// exactly a one-ingredient neighborhood move in this operator space.
fn answer_mutation(prompt: &str, ctx: &PromptContext, rng: &mut Rng, temperature: f64) -> String {
    match field_after(prompt, "Parent family:").as_deref() {
        Some("High-order") => tag_family(answer_highorder(ctx, rng, temperature), "HighOrder"),
        Some("Extractor") => tag_family(answer_extractor(ctx, rng), "Extractor"),
        _ => tag_family(answer_binary(ctx, rng, temperature), "Binary"),
    }
}

/// Crossover: inherit one parent's family (an even seeded coin) and
/// re-draw its ingredients over the agenda both parents enriched.
fn answer_crossover(prompt: &str, ctx: &PromptContext, rng: &mut Rng, temperature: f64) -> String {
    let a = field_after(prompt, "Parent A family:").unwrap_or_default();
    let b = field_after(prompt, "Parent B family:").unwrap_or_default();
    let pick = if rng.gen_bool(0.5) { a } else { b };
    match pick.as_str() {
        "High-order" => tag_family(answer_highorder(ctx, rng, temperature), "HighOrder"),
        "Extractor" => tag_family(answer_extractor(ctx, rng), "Extractor"),
        _ => tag_family(answer_binary(ctx, rng, temperature), "Binary"),
    }
}

/// ReAct decision policy: deterministic in the observation. Give up
/// after repeated failures, clear the unary backlog first, then rotate
/// through the sampled families by turn number.
fn answer_react(prompt: &str) -> String {
    let turn: usize = field_after(prompt, "Turn:")
        .and_then(|t| t.parse().ok())
        .unwrap_or(0);
    let failures: usize = field_after(prompt, "Consecutive failures:")
        .and_then(|t| t.parse().ok())
        .unwrap_or(0);
    let first_unexplored = field_after(prompt, "Unexplored attributes:").unwrap_or_default();
    if failures >= 3 {
        return "{\"action\": \"stop\"}".to_string();
    }
    // Fresh streak and attributes left: explore them first. After a
    // failure the policy switches to sampling rather than burning the
    // remaining turns on fruitless proposals.
    if failures == 0 && !first_unexplored.is_empty() && first_unexplored != "none" {
        return format!("{{\"action\": \"propose_unary\", \"attribute\": \"{first_unexplored}\"}}");
    }
    match turn % 3 {
        0 => "{\"action\": \"sample_binary\"}",
        1 => "{\"action\": \"sample_highorder\"}",
        _ => "{\"action\": \"sample_extractor\"}",
    }
    .to_string()
}

fn answer_funcgen(prompt: &str, ctx: &PromptContext) -> String {
    let hint = field_after(prompt, "Operator hint:").unwrap_or_default();
    let columns: Vec<String> = prompt
        .lines()
        .find_map(|l| l.trim().strip_prefix("Relevant columns:"))
        .map(|s| {
            s.split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let first_col = columns.first().cloned().unwrap_or_default();
    let feature_meta = ctx.feature(&first_col);

    match hint.as_str() {
        "bucketize" => {
            let bounds = feature_meta
                .and_then(|f| {
                    f.concepts()
                        .into_iter()
                        .find_map(knowledge::bucket_boundaries)
                })
                .map(|b| {
                    b.iter()
                        .map(|v| format!("{v}"))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_else(|| "auto".to_string());
            format!("FUNCTION: bucketize\nINPUT: {first_col}\nPARAMS: boundaries={bounds}\n")
        }
        "normalize" => {
            let kind = match ctx.model.as_deref() {
                Some("LR") | Some("DNN") => "zscore",
                _ => "minmax",
            };
            format!("FUNCTION: normalize\nINPUT: {first_col}\nPARAMS: kind={kind}\n")
        }
        "log" => format!("FUNCTION: log\nINPUT: {first_col}\nPARAMS: \n"),
        "dummies" => format!("FUNCTION: dummies\nINPUT: {first_col}\nPARAMS: \n"),
        "frequency" => format!("FUNCTION: frequency\nINPUT: {first_col}\nPARAMS: \n"),
        "date_split" => {
            format!("FUNCTION: date_split\nINPUT: {first_col}\nPARAMS: parts=year,month,weekday\n")
        }
        "years_since" => format!(
            "FUNCTION: affine\nINPUT: {first_col}\nPARAMS: scale=-1; offset={}\n",
            knowledge::current_year()
        ),
        "arithmetic" => {
            let op = field_after(prompt, "Arithmetic operator:").unwrap_or_else(|| "+".into());
            format!(
                "FUNCTION: arithmetic\nINPUT: {}\nPARAMS: op={}\n",
                columns.join(", "),
                op
            )
        }
        "groupby" => {
            // The paper notes high-order functions need no FM round-trip;
            // answered here anyway for completeness.
            let agg = field_after(prompt, "Aggregate function:").unwrap_or_else(|| "mean".into());
            format!(
                "FUNCTION: groupby\nINPUT: {}\nPARAMS: agg={}\n",
                columns.join(", "),
                agg
            )
        }
        "weighted_index" => {
            let weights = prompt
                .lines()
                .find_map(|l| l.trim().strip_prefix("Component weights:"))
                .map(str::trim)
                .unwrap_or("");
            let weights = if weights.is_empty() {
                columns
                    .iter()
                    .map(|_| "1".to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            } else {
                weights.to_string()
            };
            format!(
                "FUNCTION: weighted_index\nINPUT: {}\nPARAMS: weights={}; normalize=true\n",
                columns.join(", "),
                weights
            )
        }
        "per_unit" => format!(
            "FUNCTION: arithmetic\nINPUT: {}\nPARAMS: op=/\n",
            columns.join(", ")
        ),
        "external_lookup" => {
            let table = field_after(prompt, "Knowledge source:").unwrap_or_default();
            if table == "city_population_density" {
                format!(
                    "FUNCTION: row_completion\nINPUT: {first_col}\nPARAMS: knowledge={table}\n\
                     NOTE: no closed-form transformation exists; values must be completed \
                     per distinct city via the model\n"
                )
            } else {
                "FUNCTION: unavailable\nSOURCE: https://data.census.gov (American Community \
                 Survey) or https://www.openstreetmap.org extracts\n"
                    .to_string()
            }
        }
        _ => {
            // No hint: fall back on the feature description keywords.
            let desc = prompt
                .lines()
                .find_map(|l| l.trim().strip_prefix("Feature description:"))
                .unwrap_or("")
                .to_ascii_lowercase();
            if desc.contains("bucket") || desc.contains("band") || desc.contains("bin") {
                format!("FUNCTION: bucketize\nINPUT: {first_col}\nPARAMS: boundaries=auto\n")
            } else if desc.contains("normal") || desc.contains("scale") {
                format!("FUNCTION: normalize\nINPUT: {first_col}\nPARAMS: kind=minmax\n")
            } else if desc.contains("density") || desc.contains("population") {
                format!(
                    "FUNCTION: row_completion\nINPUT: {first_col}\nPARAMS: knowledge=city_population_density\n"
                )
            } else {
                "FUNCTION: unavailable\nSOURCE: please provide an operator hint or a richer \
                 feature description\n"
                    .to_string()
            }
        }
    }
}

/// Feature-removal judgment: identifiers and opaque columns whose name
/// and description give the model nothing to work with.
fn answer_removal(ctx: &PromptContext) -> String {
    let removable: Vec<&str> = ctx
        .features
        .iter()
        .filter(|f| {
            let concepts = f.concepts();
            let is_identifier = concepts.contains(&Concept::Identifier);
            // An undescribed, conceptless column that is explicitly a
            // sampling artifact (e.g. a census weight) is noise as far as
            // the model can tell. Whole-word match: "weighted index"
            // features must not trip this.
            let opaque = concepts == vec![Concept::Generic]
                && crate::knowledge::words(&f.description)
                    .iter()
                    .any(|w| w == "weight" || w == "weights");
            is_identifier || opaque
        })
        .map(|f| f.name.as_str())
        .collect();
    if removable.is_empty() {
        "none".to_string()
    } else {
        removable.join(", ")
    }
}

fn answer_row_completion(prompt: &str) -> String {
    // The serialized row is the last non-empty line:
    // `A1: v1, A2: v2, …, NewFeature: ?`
    let Some(row_line) = prompt.lines().rev().find(|l| l.contains(": ?")) else {
        return "unknown".to_string();
    };
    let fields: Vec<(String, String)> = row_line
        .split(", ")
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let Some((new_name, _)) = fields.iter().find(|(_, v)| v == "?") else {
        return "unknown".to_string();
    };
    let lower = new_name.to_ascii_lowercase();
    if lower.contains("density") || lower.contains("population") {
        // Find the city-ish source value among the known fields.
        if let Some((_, city)) = fields
            .iter()
            .find(|(k, v)| v != "?" && knowledge::detect(k, "").contains(&Concept::GeoCity))
        {
            return format!("{}", knowledge::city_population_density(city));
        }
        // Fallback: any non-numeric value might be the city.
        if let Some((_, v)) = fields
            .iter()
            .find(|(_, v)| v != "?" && v.parse::<f64>().is_err())
        {
            return format!("{}", knowledge::city_population_density(v));
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CARD: &str = "Dataset features:\n\
        - Age (int, distinct=47): Age of the policyholder in years\n\
        - Age_of_car (int, distinct=15): Age of the insured vehicle in years\n\
        - Make_Model (str, distinct=12): Make and model of the car\n\
        - Claim (int, distinct=2): Whether a claim was filed in the last 6 months\n\
        - City (str, distinct=3): City where the policyholder lives\n\
        Prediction target: Safe\n\
        Downstream model: RF\n";

    fn fm() -> SimulatedFm {
        SimulatedFm::gpt4(42)
    }

    #[test]
    fn unary_proposal_for_age_has_certain_bucketize() {
        let prompt = format!(
            "{CARD}Consider the unary operators on the attribute 'Age' that can generate \
             helpful features to predict Safe. List all possible appropriate operators."
        );
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("bucketize (certain)"), "{}", r.text);
        assert!(r.text.contains("21"));
    }

    #[test]
    fn unary_proposal_for_unknown_attribute_is_unhelpful() {
        let prompt =
            format!("{CARD}Consider the unary operators on the attribute 'Nonexistent' now.");
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("does not appear"));
    }

    #[test]
    fn binary_sampling_returns_parseable_dict() {
        let prompt = format!("{CARD}Propose one binary arithmetic feature for predicting Safe.");
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.starts_with('{'), "{}", r.text);
        assert!(r.text.contains("\"left\""));
        assert!(r.text.contains("\"op\""));
    }

    #[test]
    fn highorder_prefers_grouping_and_flag_agg() {
        let prompt = format!(
            "{CARD}Generate a groupby feature for predicting Safe by applying \
            'df.groupby(groupby_col)[agg_col].transform(function)'."
        );
        // Sample several times: the flag aggregate and conceptual group key
        // should dominate.
        let model = fm();
        let mut claim_hits = 0;
        for _ in 0..20 {
            let r = model.complete(&prompt).unwrap();
            assert!(r.text.contains("groupby_col"), "{}", r.text);
            if r.text.contains("\"agg_col\": \"Claim\"") {
                claim_hits += 1;
            }
        }
        assert!(claim_hits >= 10, "claim picked {claim_hits}/20");
    }

    #[test]
    fn extractor_proposes_city_density() {
        let prompt = format!("{CARD}Propose one extractor feature for predicting Safe.");
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("external_lookup"), "{}", r.text);
        assert!(r.text.contains("city_population_density"));
    }

    #[test]
    fn extractor_weighted_index_for_sports() {
        let card = "Dataset features:\n\
            - FSP.1 (float, distinct=60): First serve percentage for player 1\n\
            - ACE.1 (int, distinct=20): Aces won by player 1\n\
            - DBF.1 (int, distinct=12): Double faults committed by player 1\n\
            - UFE.1 (int, distinct=40): Unforced errors by player 1\n\
            Prediction target: Result\n\
            Downstream model: RF\n";
        let prompt = format!("{card}Propose one extractor feature for predicting Result.");
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("weighted_index"), "{}", r.text);
        assert!(
            r.text.contains("-1"),
            "negative polarity for faults: {}",
            r.text
        );
    }

    #[test]
    fn mutation_preserves_parent_family_tag() {
        let prompt = format!(
            "{CARD}Mutate the candidate feature below into a different feature for predicting \
             Safe.\n\
             Parent family: High-order\n\
             Parent name: GroupBy_City_mean_Claim\n\
             Parent columns: City, Claim\n\
             Parent description: df.groupby([City])[Claim].transform(mean)\n"
        );
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("\"family\": \"HighOrder\""), "{}", r.text);
        assert!(r.text.contains("groupby_col"), "{}", r.text);
    }

    #[test]
    fn crossover_inherits_a_parent_family() {
        let prompt = format!(
            "{CARD}Combine the two parent features below into one offspring feature for \
             predicting Safe.\n\
             Parent A family: Binary\n\
             Parent A name: Age_div_Age_of_car\n\
             Parent A columns: Age, Age_of_car\n\
             Parent B family: Binary\n\
             Parent B name: Age_plus_Claim\n\
             Parent B columns: Age, Claim\n"
        );
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("\"family\": \"Binary\""), "{}", r.text);
        assert!(r.text.contains("\"left\""), "{}", r.text);
    }

    #[test]
    fn react_policy_is_deterministic_in_the_observation() {
        let observe = |turn: usize, unexplored: &str, failures: usize| {
            format!(
                "{CARD}Decide the next exploration action for predicting Safe.\n\
                 Observation:\n\
                 Turn: {turn}/8\n\
                 Features generated: 3\n\
                 Unexplored attributes: {unexplored}\n\
                 Last action: start\n\
                 Last outcome: n/a\n\
                 Last feature score: n/a\n\
                 Consecutive failures: {failures}\n"
            )
        };
        let model = fm();
        // Repeated failures end the search.
        let r = model.complete(&observe(3, "none", 3)).unwrap();
        assert!(r.text.contains("\"action\": \"stop\""), "{}", r.text);
        // On a clean streak an unexplored attribute is proposed, by name.
        let r = model.complete(&observe(1, "City, Age", 0)).unwrap();
        assert!(
            r.text.contains("\"action\": \"propose_unary\""),
            "{}",
            r.text
        );
        assert!(r.text.contains("\"attribute\": \"City\""), "{}", r.text);
        // After a failure the policy samples instead of re-proposing.
        let r = model.complete(&observe(3, "City, Age", 1)).unwrap();
        assert!(r.text.contains("sample_binary"), "{}", r.text);
        // Otherwise the sampled families rotate with the turn number.
        let r = model.complete(&observe(3, "none", 0)).unwrap();
        assert!(r.text.contains("sample_binary"), "{}", r.text);
        let r = model.complete(&observe(4, "none", 0)).unwrap();
        assert!(r.text.contains("sample_highorder"), "{}", r.text);
        let r = model.complete(&observe(5, "none", 0)).unwrap();
        assert!(r.text.contains("sample_extractor"), "{}", r.text);
    }

    #[test]
    fn funcgen_bucketize_uses_domain_boundaries() {
        let prompt = format!(
            "{CARD}Provide an executable transformation function for the feature 'Bucketized_Age'.\n\
             Feature name: Bucketized_Age\n\
             Relevant columns: Age\n\
             Feature description: group ages into insurance bands\n\
             Operator hint: bucketize\n"
        );
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("FUNCTION: bucketize"));
        assert!(r.text.contains("21"), "{}", r.text);
    }

    #[test]
    fn funcgen_years_since_uses_frozen_year() {
        let prompt = format!(
            "{CARD}Provide an executable transformation function for the feature 'Manufacturing_year'.\n\
             Feature name: Manufacturing_year\n\
             Relevant columns: Age_of_car\n\
             Feature description: manufacturing year of the car\n\
             Operator hint: years_since\n"
        );
        let r = fm().complete(&prompt).unwrap();
        assert!(r.text.contains("offset=2024"), "{}", r.text);
    }

    #[test]
    fn row_completion_answers_density() {
        let prompt = "Complete the value of the last field.\n\
            City: SF, City_population_density: ?";
        let r = fm().complete(prompt).unwrap();
        assert_eq!(r.text, "7272");
    }

    #[test]
    fn row_completion_unknown_without_city() {
        let prompt = "Complete the value of the last field.\n\
            Age: 31, Mystery: ?";
        let r = fm().complete(prompt).unwrap();
        assert_eq!(r.text, "unknown");
    }

    #[test]
    fn meter_accumulates_and_budget_enforced() {
        let model = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 1,
                call_budget: Some(2),
                ..FmConfig::default()
            },
        );
        model.complete("hello").unwrap();
        model.complete("hello").unwrap();
        assert!(matches!(
            model.complete("hello"),
            Err(FmError::BudgetExhausted { budget: 2 })
        ));
        let snap = model.meter().snapshot();
        assert_eq!(snap.calls, 2);
        assert!(snap.cost_usd > 0.0);
        assert!(snap.prompt_tokens > 0);
    }

    #[test]
    fn deterministic_transcripts() {
        let p = format!("{CARD}Propose one binary arithmetic feature for predicting Safe.");
        let run = |seed| {
            let m = SimulatedFm::gpt4(seed);
            (0..5)
                .map(|_| m.complete(&p).unwrap().text)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn error_injection_degrades_some_outputs() {
        let m = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 3,
                error_rate: 1.0,
                ..FmConfig::default()
            },
        );
        let p = format!("{CARD}Propose one binary arithmetic feature for predicting Safe.");
        let good = SimulatedFm::gpt4(3).complete(&p).unwrap().text;
        let bad = m.complete(&p).unwrap().text;
        assert_ne!(good, bad);
    }

    #[test]
    fn shallow_coverage_hedges_knowledge_heavy_answers() {
        let shallow = SimulatedFm::new(
            ModelSpec::babbage_002(),
            FmConfig {
                seed: 42,
                coverage: KnowledgeCoverage::Shallow,
                ..FmConfig::default()
            },
        );
        // Domain confidence collapses to medium.
        let unary = format!(
            "{CARD}Consider the unary operators on the attribute 'Age' that can generate \
             helpful features to predict Safe. List all possible appropriate operators."
        );
        let r = shallow.complete(&unary).unwrap();
        assert!(!r.text.contains("(certain)"), "{}", r.text);
        assert!(!r.text.contains("(high)"), "{}", r.text);
        assert!(r.text.contains("(medium)"), "{}", r.text);
        // World-knowledge lookups are absent.
        let row = "Complete the value of the last field.\n\
            City: SF, City_population_density: ?";
        assert_eq!(shallow.complete(row).unwrap().text, "unknown");
        // Bucket boundaries degrade to the auto placeholder.
        let funcgen = format!(
            "{CARD}Provide an executable transformation function for the feature 'Bucketized_Age'.\n\
             Feature name: Bucketized_Age\n\
             Relevant columns: Age\n\
             Feature description: group ages into insurance bands\n\
             Operator hint: bucketize\n"
        );
        let r = shallow.complete(&funcgen).unwrap();
        assert!(r.text.contains("boundaries=auto"), "{}", r.text);
    }

    #[test]
    fn generic_prompt_gets_generic_answer() {
        let r = fm().complete("What's the weather like?").unwrap();
        assert!(r.text.contains("more context"));
    }

    #[test]
    fn temperature_zero_is_argmaxish() {
        let m = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 5,
                temperature: 0.0,
                ..FmConfig::default()
            },
        );
        let p = format!(
            "{CARD}Generate a groupby feature for predicting Safe by applying \
            'df.groupby(groupby_col)[agg_col].transform(function)'."
        );
        let texts: Vec<String> = (0..10).map(|_| m.complete(&p).unwrap().text).collect();
        let first = &texts[0];
        // Near-argmax sampling: the modal answer strongly dominates.
        let same = texts.iter().filter(|t| *t == first).count();
        assert!(same >= 7, "only {same}/10 identical at T=0");
    }
}
