//! The simulated FM's encoded knowledge.
//!
//! Three layers, mirroring what the paper attributes to GPT-4:
//!
//! 1. a **concept lexicon**: mapping column names/descriptions to semantic
//!    concepts ("age", "income", "city", "glucose", "first-serve
//!    percentage", …). Full words detect strongly; bare abbreviations
//!    (`FSW.1`) only detect when the abbreviation itself is famous enough
//!    (ACE, BMI, …) — this asymmetry is what the paper's
//!    names-only-vs-descriptions ablation measures;
//! 2. **domain thresholds**: practically meaningful bucket boundaries
//!    (the 21-year-old insurance threshold, ADA glucose cutoffs 100/126,
//!    WHO BMI classes 18.5/25/30, …);
//! 3. **world-knowledge tables**: facts a model memorized from the web,
//!    e.g. city → population density (people/km²), with a deterministic
//!    "hallucination" fallback for unknown cities — approximately right in
//!    scale, never exactly right, like a real FM.

/// Semantic concepts the lexicon can attach to a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Concept {
    /// A person's age in years.
    Age,
    /// An age of an object (vehicle, building) in years.
    ObjectAge,
    /// A calendar year of an event (manufacture, admission, …).
    YearOfEvent,
    /// A full date string.
    DateLike,
    /// Monetary amount (income, balance, price, premium, …).
    Money,
    /// A rate / percentage / probability in a bounded range.
    RatePercentage,
    /// An unbounded count of events or items.
    Count,
    /// A 0/1 or yes/no flag.
    BinaryFlag,
    /// Plasma glucose concentration.
    Glucose,
    /// Body-mass index.
    Bmi,
    /// Blood pressure.
    BloodPressure,
    /// Serum insulin.
    Insulin,
    /// Cholesterol level.
    Cholesterol,
    /// Heart rate.
    HeartRate,
    /// A city name.
    GeoCity,
    /// A broader region (state, country, district).
    GeoRegion,
    /// A product make/model/brand category.
    ProductModel,
    /// A demographic category (sex, marital status, race, …).
    PersonCategory,
    /// Education level.
    Education,
    /// Occupation / job.
    Occupation,
    /// Hours (worked, studied, …).
    Hours,
    /// Smoking intensity (cigarettes per day).
    SmokingIntensity,
    /// A sports performance statistic (serves, aces, break points, …).
    SportsStat,
    /// Wins/losses or points won.
    WinLoss,
    /// An opaque identifier (drop candidate; never engineer on it).
    Identifier,
    /// Temperature measurement.
    Temperature,
    /// Week of the year (seasonality).
    WeekOfYear,
    /// A biological species or trap/station label.
    SpeciesOrStation,
    /// Academic score (GPA, LSAT, entrance exam, …).
    AcademicScore,
    /// Geographic coordinate (latitude/longitude).
    Coordinate,
    /// Number of rooms/bedrooms/occupants in housing data.
    HousingSize,
    /// No specific concept detected.
    Generic,
}

impl Concept {
    /// True for concepts that denote a numeric clinical measurement with
    /// medically-standard thresholds.
    pub fn is_clinical(self) -> bool {
        matches!(
            self,
            Concept::Glucose
                | Concept::Bmi
                | Concept::BloodPressure
                | Concept::Insulin
                | Concept::Cholesterol
                | Concept::HeartRate
        )
    }

    /// True for concepts that make a column a good group-by key.
    pub fn is_grouping(self) -> bool {
        matches!(
            self,
            Concept::GeoCity
                | Concept::GeoRegion
                | Concept::ProductModel
                | Concept::PersonCategory
                | Concept::Education
                | Concept::Occupation
                | Concept::SpeciesOrStation
        )
    }
}

/// Keyword → concept, applied to whole words of the name and description.
const WORD_LEXICON: &[(&str, Concept)] = &[
    ("age", Concept::Age),
    ("dob", Concept::DateLike),
    ("birth", Concept::DateLike),
    ("date", Concept::DateLike),
    ("year", Concept::YearOfEvent),
    ("income", Concept::Money),
    ("salary", Concept::Money),
    ("wage", Concept::Money),
    ("balance", Concept::Money),
    ("price", Concept::Money),
    ("value", Concept::Money),
    ("premium", Concept::Money),
    ("loan", Concept::Money),
    ("debt", Concept::Money),
    ("gain", Concept::Money),
    ("loss", Concept::Money),
    ("rate", Concept::RatePercentage),
    ("ratio", Concept::RatePercentage),
    ("percentage", Concept::RatePercentage),
    ("percent", Concept::RatePercentage),
    ("probability", Concept::RatePercentage),
    ("gpa", Concept::AcademicScore),
    ("lsat", Concept::AcademicScore),
    ("score", Concept::AcademicScore),
    ("exam", Concept::AcademicScore),
    ("count", Concept::Count),
    ("number", Concept::Count),
    ("num", Concept::Count),
    ("total", Concept::Count),
    ("pregnancies", Concept::Count),
    ("campaign", Concept::Count),
    ("contacts", Concept::Count),
    ("glucose", Concept::Glucose),
    ("bmi", Concept::Bmi),
    ("mass", Concept::Bmi),
    ("pressure", Concept::BloodPressure),
    ("systolic", Concept::BloodPressure),
    ("diastolic", Concept::BloodPressure),
    ("insulin", Concept::Insulin),
    ("cholesterol", Concept::Cholesterol),
    ("heartrate", Concept::HeartRate),
    ("thalach", Concept::HeartRate),
    ("city", Concept::GeoCity),
    ("town", Concept::GeoCity),
    ("state", Concept::GeoRegion),
    ("country", Concept::GeoRegion),
    ("region", Concept::GeoRegion),
    ("district", Concept::GeoRegion),
    ("block", Concept::GeoRegion),
    ("make", Concept::ProductModel),
    ("model", Concept::ProductModel),
    ("brand", Concept::ProductModel),
    ("vehicle", Concept::ProductModel),
    ("car", Concept::ProductModel),
    ("sex", Concept::PersonCategory),
    ("gender", Concept::PersonCategory),
    ("marital", Concept::PersonCategory),
    ("race", Concept::PersonCategory),
    ("relationship", Concept::PersonCategory),
    ("education", Concept::Education),
    ("degree", Concept::Education),
    ("school", Concept::Education),
    ("occupation", Concept::Occupation),
    ("job", Concept::Occupation),
    ("workclass", Concept::Occupation),
    ("hours", Concept::Hours),
    ("cigs", Concept::SmokingIntensity),
    ("cigarettes", Concept::SmokingIntensity),
    ("smoked", Concept::SmokingIntensity),
    ("serve", Concept::SportsStat),
    ("ace", Concept::SportsStat),
    ("aces", Concept::SportsStat),
    ("fault", Concept::SportsStat),
    ("faults", Concept::SportsStat),
    ("breakpoint", Concept::SportsStat),
    ("break", Concept::SportsStat),
    ("winner", Concept::WinLoss),
    ("winners", Concept::WinLoss),
    ("won", Concept::WinLoss),
    ("points", Concept::WinLoss),
    ("error", Concept::SportsStat),
    ("errors", Concept::SportsStat),
    ("net", Concept::SportsStat),
    ("id", Concept::Identifier),
    ("identifier", Concept::Identifier),
    ("uuid", Concept::Identifier),
    ("temperature", Concept::Temperature),
    ("temp", Concept::Temperature),
    ("week", Concept::WeekOfYear),
    ("season", Concept::WeekOfYear),
    ("species", Concept::SpeciesOrStation),
    ("trap", Concept::SpeciesOrStation),
    ("station", Concept::SpeciesOrStation),
    ("mosquitos", Concept::Count),
    ("mosquitoes", Concept::Count),
    ("latitude", Concept::Coordinate),
    ("longitude", Concept::Coordinate),
    ("rooms", Concept::HousingSize),
    ("bedrooms", Concept::HousingSize),
    ("households", Concept::HousingSize),
    ("population", Concept::Count),
    ("occupancy", Concept::HousingSize),
    ("default", Concept::BinaryFlag),
    ("housing", Concept::BinaryFlag),
    ("claim", Concept::BinaryFlag),
    ("claims", Concept::Count),
];

/// Famous abbreviations a model recognizes even without a description.
/// Deliberately *incomplete*: obscure dataset-specific abbreviations
/// (FSW, SSP, BPC, …) are absent, so names-only prompts lose context —
/// the mechanism behind the paper's feature-description ablation.
const ABBREV_LEXICON: &[(&str, Concept)] = &[
    ("bmi", Concept::Bmi),
    ("ace", Concept::SportsStat),
    ("dbf", Concept::SportsStat),
    ("bp", Concept::BloodPressure),
    ("gpa", Concept::AcademicScore),
    ("lsat", Concept::AcademicScore),
    ("id", Concept::Identifier),
];

/// Tokenize an identifier or phrase into lowercase words
/// (`"Age_of_car"` → `["age", "of", "car"]`, `"FSW.1"` → `["fsw", "1"]`).
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            // split camelCase boundaries (lowercase → uppercase transitions)
            if c.is_uppercase() && prev_lower {
                out.push(std::mem::take(&mut cur));
            }
            cur.push(c.to_ascii_lowercase());
            prev_lower = c.is_lowercase();
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Detect concepts from a column name plus (possibly empty) description.
///
/// With a description, the full word lexicon applies to both. Without one,
/// only name words and famous abbreviations fire — weaker context.
pub fn detect(name: &str, description: &str) -> Vec<Concept> {
    let mut found = Vec::new();
    let mut push = |c: Concept| {
        if !found.contains(&c) {
            found.push(c);
        }
    };
    let name_words = words(name);
    let desc_words = words(description);
    for (kw, concept) in WORD_LEXICON {
        if desc_words.iter().any(|w| w == kw) {
            push(*concept);
        }
    }
    for (kw, concept) in WORD_LEXICON {
        // Name words only count when they are real words (≥ 3 chars) or
        // exact famous abbreviations — a bare "FSW" matches nothing.
        if name_words.iter().any(|w| w == kw) && kw.len() >= 3 {
            push(*concept);
        }
    }
    for (kw, concept) in ABBREV_LEXICON {
        if name_words.iter().any(|w| w == kw) {
            push(*concept);
        }
    }
    // "Week of the year" is seasonality, not an event year.
    if found.contains(&Concept::WeekOfYear) {
        found.retain(|c| *c != Concept::YearOfEvent);
    }
    // An "age" that belongs to an object rather than a person: the name
    // also mentions a product/vehicle ("Age of car", "building age").
    if found.contains(&Concept::Age) && found.contains(&Concept::ProductModel) {
        found.retain(|c| *c != Concept::Age);
        found.insert(0, Concept::ObjectAge);
    }
    if found.is_empty() {
        found.push(Concept::Generic);
    }
    found
}

/// Domain-standard bucket boundaries for a concept, if the simulated model
/// "knows" practically meaningful thresholds.
pub fn bucket_boundaries(concept: Concept) -> Option<Vec<f64>> {
    match concept {
        // Insurance-style age bands; note the famous 21 / 25 thresholds.
        Concept::Age => Some(vec![18.0, 21.0, 25.0, 35.0, 45.0, 55.0, 65.0]),
        // ADA fasting-glucose cutoffs (normal / prediabetes / diabetes).
        Concept::Glucose => Some(vec![100.0, 126.0]),
        // WHO BMI classes.
        Concept::Bmi => Some(vec![18.5, 25.0, 30.0]),
        // Diastolic hypertension stages.
        Concept::BloodPressure => Some(vec![80.0, 90.0]),
        // Fasting insulin reference band (µU/mL).
        Concept::Insulin => Some(vec![25.0, 166.0]),
        // Total cholesterol desirable / borderline / high (mg/dL).
        Concept::Cholesterol => Some(vec![200.0, 240.0]),
        // Old/new vehicle bands used by insurers.
        Concept::ObjectAge => Some(vec![3.0, 5.0, 10.0]),
        // Mosquito-activity temperature thresholds (°F): activity rises
        // sharply above ~50, peaks above ~75.
        Concept::Temperature => Some(vec![50.0, 65.0, 75.0]),
        // Season quarters; weeks 27–40 are the northern-hemisphere
        // arbovirus season.
        Concept::WeekOfYear => Some(vec![14.0, 27.0, 40.0]),
        _ => None,
    }
}

/// The simulated model's notion of "now" — frozen to the paper's period so
/// year-difference features are reproducible.
pub fn current_year() -> i32 {
    2024
}

/// Known city → population density (people per km², approximate 2020s
/// figures a web-trained model would have memorized).
const CITY_DENSITY: &[(&str, f64)] = &[
    ("san francisco", 7272.0),
    ("sf", 7272.0),
    ("los angeles", 3276.0),
    ("la", 3276.0),
    ("seattle", 3608.0),
    ("sea", 3608.0),
    ("new york", 11313.0),
    ("nyc", 11313.0),
    ("chicago", 4594.0),
    ("chi", 4594.0),
    ("houston", 1395.0),
    ("hou", 1395.0),
    ("phoenix", 1200.0),
    ("phx", 1200.0),
    ("philadelphia", 4554.0),
    ("phi", 4554.0),
    ("san antonio", 1250.0),
    ("dallas", 1590.0),
    ("dal", 1590.0),
    ("austin", 1157.0),
    ("aus", 1157.0),
    ("san diego", 1670.0),
    ("sd", 1670.0),
    ("boston", 5344.0),
    ("bos", 5344.0),
    ("miami", 4919.0),
    ("mia", 4919.0),
    ("denver", 1859.0),
    ("den", 1859.0),
    ("detroit", 1849.0),
    ("det", 1849.0),
    ("portland", 1900.0),
    ("pdx", 1900.0),
    ("atlanta", 1470.0),
    ("atl", 1470.0),
];

/// Population density for a city. Known cities return memorized figures;
/// unknown cities return a deterministic, plausibly-scaled value (500 –
/// 8 500 people/km²) — the model "answers confidently" either way, exactly
/// like a real FM asked for world facts.
pub fn city_population_density(city: &str) -> f64 {
    let key = city.trim().to_ascii_lowercase();
    for (name, density) in CITY_DENSITY {
        if *name == key {
            return *density;
        }
    }
    // FNV-1a hash → stable pseudo-knowledge.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    500.0 + (h % 8001) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_identifiers() {
        assert_eq!(words("Age_of_car"), vec!["age", "of", "car"]);
        assert_eq!(words("FSW.1"), vec!["fsw", "1"]);
        assert_eq!(words("capitalGain"), vec!["capital", "gain"]);
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn detect_from_name() {
        assert!(detect("Age", "").contains(&Concept::Age));
        assert!(detect("capital_gain", "").contains(&Concept::Money));
        assert!(detect("City", "").contains(&Concept::GeoCity));
    }

    #[test]
    fn detect_from_description_rescues_abbreviations() {
        // Bare FSW is unknown …
        assert_eq!(detect("FSW.1", ""), vec![Concept::Generic]);
        // … but the description supplies the context.
        let c = detect("FSW.1", "First serve points won by player 1");
        assert!(c.contains(&Concept::SportsStat));
        assert!(c.contains(&Concept::WinLoss));
    }

    #[test]
    fn famous_abbreviations_fire_without_description() {
        assert!(detect("BMI", "").contains(&Concept::Bmi));
        assert!(detect("ACE.1", "").contains(&Concept::SportsStat));
    }

    #[test]
    fn generic_fallback() {
        assert_eq!(detect("xyzzy", ""), vec![Concept::Generic]);
    }

    #[test]
    fn clinical_boundaries_match_guidelines() {
        assert_eq!(
            bucket_boundaries(Concept::Glucose),
            Some(vec![100.0, 126.0])
        );
        assert_eq!(
            bucket_boundaries(Concept::Bmi),
            Some(vec![18.5, 25.0, 30.0])
        );
        let age = bucket_boundaries(Concept::Age).unwrap();
        assert!(age.contains(&21.0), "insurance threshold present");
        assert!(bucket_boundaries(Concept::Generic).is_none());
    }

    #[test]
    fn known_city_density() {
        assert_eq!(city_population_density("SF"), 7272.0);
        assert_eq!(city_population_density("san francisco"), 7272.0);
        assert_eq!(city_population_density("  NYC  "), 11313.0);
    }

    #[test]
    fn unknown_city_is_deterministic_and_plausible() {
        let a = city_population_density("Middletown");
        let b = city_population_density("Middletown");
        assert_eq!(a, b);
        assert!((500.0..=8500.0).contains(&a));
        assert_ne!(
            city_population_density("Middletown"),
            city_population_density("Middleton")
        );
    }

    #[test]
    fn grouping_concepts() {
        assert!(Concept::ProductModel.is_grouping());
        assert!(Concept::GeoCity.is_grouping());
        assert!(!Concept::Money.is_grouping());
    }

    #[test]
    fn clinical_concepts() {
        assert!(Concept::Glucose.is_clinical());
        assert!(!Concept::Age.is_clinical());
    }
}
