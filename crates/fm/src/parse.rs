//! Prompt reading: how the simulated FM extracts the serialized data card
//! and task phrasing from a natural-language prompt.
//!
//! SMARTFEAT's prompt templates (paper Table 2) serialize the evolving
//! *dataset feature description* plus the prediction target and downstream
//! model into every prompt. A real FM reads that prose; the simulated one
//! parses the same text here. If a prompt doesn't carry the expected
//! structure the oracle answers unhelpfully — exactly what a real model
//! does when under-prompted.

use crate::knowledge::{detect, Concept};

/// One feature as described inside a prompt's data card.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureInfo {
    /// Column name.
    pub name: String,
    /// Declared type tag (`int`, `float`, `str`, `bool`).
    pub dtype: String,
    /// Declared distinct-value count, when present.
    pub distinct: Option<usize>,
    /// Free-text description (may be empty for the names-only ablation).
    pub description: String,
}

impl FeatureInfo {
    /// Concepts the simulated model associates with this feature.
    pub fn concepts(&self) -> Vec<Concept> {
        detect(&self.name, &self.description)
    }

    /// True if the declared type is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self.dtype.as_str(), "int" | "float" | "bool")
    }

    /// True for features that are *derived codes or aggregates* rather than
    /// raw quantities — bucket indices, one-hot dummies, date parts,
    /// group-by aggregates, existing arithmetic combinations. A competent
    /// model reading the data card does not propose dividing two bucket
    /// codes or grouping by a group-by output; the oracle follows suit.
    pub fn is_derived_code(&self) -> bool {
        const PREFIXES: &[&str] = &[
            "Bucketized_",
            "GroupBy_",
            "Dummies_",
            "Datesplit_",
            "Normalized_",
            "Log_",
            "Sqrt_",
            "Squared_",
            "Abs_",
            "Reciprocal_",
            "YearsSince_",
            "caafe_",
            "Performance_index",
            "Health_risk_index",
        ];
        const INFIXES: &[&str] = &["_div_", "_plus_", "_minus_", "_times_"];
        PREFIXES.iter().any(|p| self.name.starts_with(p))
            || INFIXES.iter().any(|i| self.name.contains(i))
            || self.description.starts_with("df.groupby")
            || self.description.contains("one-hot")
            // per-unit extractor outputs describe themselves as divisions
            || self.description.contains("divided by")
    }

    /// True for derived group-by / arithmetic outputs specifically (these
    /// are also unusable as group keys, unlike bucket codes).
    pub fn is_aggregate_output(&self) -> bool {
        self.name.starts_with("GroupBy_")
            || self.name.starts_with("caafe_gb_")
            || self.name.starts_with("Log_")
            || self.description.starts_with("df.groupby")
            || self.description.contains("divided by")
            || ["_div_", "_plus_", "_minus_", "_times_"]
                .iter()
                .any(|i| self.name.contains(i))
    }

    /// True if this looks like a usable group-by key: a declared
    /// categorical, a conceptually-grouping column, or a genuinely
    /// low-cardinality code (bucket indices, small label sets). Raw counts
    /// and measurements with dozens of values are *not* group keys — a
    /// model reading "aces won by player 1" does not group by it.
    pub fn is_groupable(&self) -> bool {
        if self.description.contains("one-hot") || self.is_aggregate_output() {
            return false;
        }
        let low_card = self.distinct.is_some_and(|d| (2..=10).contains(&d));
        // A conceptual group key must still have sane cardinality — a
        // column with thousands of distinct values is not a key no matter
        // what its description mentions.
        let conceptual = self.concepts().iter().any(|c| c.is_grouping())
            && self.distinct.is_none_or(|d| (2..=200).contains(&d));
        (self.dtype == "str" && self.distinct.is_none_or(|d| d <= 200)) || low_card || conceptual
    }
}

/// Everything the oracle extracted from one prompt.
#[derive(Debug, Clone, Default)]
pub struct PromptContext {
    /// The serialized data card, in order of appearance.
    pub features: Vec<FeatureInfo>,
    /// The prediction target named in the prompt.
    pub target: Option<String>,
    /// The downstream model named in the prompt.
    pub model: Option<String>,
}

impl PromptContext {
    /// Parse the data-card section of a prompt.
    ///
    /// Recognized lines:
    /// - `- Name (dtype, distinct=N): description`
    /// - `- Name (dtype): description`
    /// - `- Name: description`
    /// - `- Name`
    /// - `Prediction target: Y`
    /// - `Downstream model: RF`
    pub fn parse(prompt: &str) -> PromptContext {
        let mut ctx = PromptContext::default();
        for line in prompt.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("Prediction target:") {
                ctx.target = Some(rest.trim().to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("Downstream model:") {
                ctx.model = Some(rest.trim().to_string());
                continue;
            }
            let Some(body) = line.strip_prefix("- ") else {
                continue;
            };
            if let Some(info) = parse_feature_line(body) {
                ctx.features.push(info);
            }
        }
        ctx
    }

    /// Find a feature by exact name.
    pub fn feature(&self, name: &str) -> Option<&FeatureInfo> {
        self.features.iter().find(|f| f.name == name)
    }

    /// All numeric features.
    pub fn numeric_features(&self) -> Vec<&FeatureInfo> {
        self.features.iter().filter(|f| f.is_numeric()).collect()
    }

    /// All group-by candidates.
    pub fn groupable_features(&self) -> Vec<&FeatureInfo> {
        self.features.iter().filter(|f| f.is_groupable()).collect()
    }
}

fn parse_feature_line(body: &str) -> Option<FeatureInfo> {
    // Split off the description at the first ": " outside parentheses.
    let (head, description) = split_head(body);
    let head = head.trim();
    if head.is_empty() {
        return None;
    }
    // Head is `Name` or `Name (dtype)` or `Name (dtype, distinct=N)`.
    if let Some(open) = head.find('(') {
        let name = head[..open].trim().to_string();
        let inner = head[open + 1..].trim_end_matches(')');
        let mut dtype = String::new();
        let mut distinct = None;
        for part in inner.split(',') {
            let part = part.trim();
            if let Some(n) = part.strip_prefix("distinct=") {
                distinct = n.trim().parse().ok();
            } else if !part.is_empty() && dtype.is_empty() {
                dtype = part.to_string();
            }
        }
        (!name.is_empty()).then_some(FeatureInfo {
            name,
            dtype,
            distinct,
            description,
        })
    } else {
        Some(FeatureInfo {
            name: head.to_string(),
            dtype: String::new(),
            distinct: None,
            description,
        })
    }
}

/// Split `Name (…): desc` into head and description, ignoring colons
/// inside the parenthesized type annotation.
fn split_head(body: &str) -> (&str, String) {
    let mut depth = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ':' if depth == 0 => {
                return (&body[..i], body[i + 1..].trim().to_string());
            }
            _ => {}
        }
    }
    (body, String::new())
}

/// Extract the quoted or brace-free value following a marker phrase, e.g.
/// `field_after(prompt, "the attribute")` on
/// `"… the attribute 'Age' that can …"` returns `Some("Age")`.
pub fn field_after(text: &str, marker: &str) -> Option<String> {
    let pos = text.find(marker)? + marker.len();
    let rest = text[pos..].trim_start();
    if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        return Some(stripped[..end].to_string());
    }
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        return Some(stripped[..end].to_string());
    }
    let token: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | '-'))
        .collect();
    (!token.is_empty()).then_some(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROMPT: &str = "You are a data scientist.\n\
        Dataset features:\n\
        - Age (int, distinct=47): Age of the policyholder in years\n\
        - City (str, distinct=3): City where the policyholder lives\n\
        - Claim (int, distinct=2): Whether a claim was filed in the last 6 months\n\
        - FSW.1\n\
        Prediction target: Safe\n\
        Downstream model: RF\n\
        Consider the unary operators on the attribute 'Age'.";

    #[test]
    fn parses_full_card() {
        let ctx = PromptContext::parse(PROMPT);
        assert_eq!(ctx.features.len(), 4);
        assert_eq!(ctx.target.as_deref(), Some("Safe"));
        assert_eq!(ctx.model.as_deref(), Some("RF"));
        let age = ctx.feature("Age").unwrap();
        assert_eq!(age.dtype, "int");
        assert_eq!(age.distinct, Some(47));
        assert!(age.description.contains("policyholder"));
    }

    #[test]
    fn bare_name_line() {
        let ctx = PromptContext::parse(PROMPT);
        let f = ctx.feature("FSW.1").unwrap();
        assert_eq!(f.dtype, "");
        assert!(f.description.is_empty());
    }

    #[test]
    fn numeric_and_groupable_partitions() {
        let ctx = PromptContext::parse(PROMPT);
        let numeric: Vec<&str> = ctx
            .numeric_features()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(numeric.contains(&"Age"));
        assert!(!numeric.contains(&"City"));
        let groupable: Vec<&str> = ctx
            .groupable_features()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(groupable.contains(&"City"));
        assert!(groupable.contains(&"Claim"), "distinct=2 is groupable");
    }

    #[test]
    fn field_after_quotes_and_bare() {
        assert_eq!(
            field_after("operators on the attribute 'Age' that", "the attribute"),
            Some("Age".into())
        );
        assert_eq!(
            field_after("for the feature \"Bucketized_Age\" using", "the feature"),
            Some("Bucketized_Age".into())
        );
        assert_eq!(
            field_after("applied to FSW.1 now", "applied to"),
            Some("FSW.1".into())
        );
        assert_eq!(field_after("no marker here", "the attribute"), None);
    }

    #[test]
    fn feature_concepts_flow_through() {
        let ctx = PromptContext::parse(PROMPT);
        assert!(ctx
            .feature("Age")
            .unwrap()
            .concepts()
            .contains(&Concept::Age));
        assert!(ctx
            .feature("City")
            .unwrap()
            .concepts()
            .contains(&Concept::GeoCity));
    }

    #[test]
    fn description_with_colons_inside_parens() {
        let line = "- Ratio (float, distinct=10): wins: losses ratio";
        let ctx = PromptContext::parse(line);
        let f = ctx.feature("Ratio").unwrap();
        assert_eq!(f.description, "wins: losses ratio");
    }

    #[test]
    fn empty_prompt_parses_empty() {
        let ctx = PromptContext::parse("hello world");
        assert!(ctx.features.is_empty());
        assert!(ctx.target.is_none());
    }
}
