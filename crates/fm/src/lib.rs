//! # smartfeat-fm
//!
//! A **simulated foundation model** standing in for OpenAI GPT-4 /
//! GPT-3.5-turbo in the SMARTFEAT reproduction.
//!
//! The simulation is deliberately faithful to the *interaction structure*
//! the paper studies rather than to any particular network:
//!
//! - Requests arrive as plain natural-language prompts (the same template
//!   strings SMARTFEAT's operator selector and function generator emit).
//!   The oracle *reads* them — extracting the serialized data card, target,
//!   downstream model and task phrasing — exactly where a real FM would.
//! - Responses are natural-language-ish structured text that the caller
//!   must parse back, so every SMARTFEAT parsing/validation path is
//!   genuinely exercised.
//! - A [`knowledge`] base supplies the "open-world knowledge" the paper
//!   leans on: a concept lexicon over column names/descriptions (age,
//!   money, dates, cities, clinical measurements, sports statistics, …),
//!   domain bucket boundaries (the 21-year-old insurance threshold,
//!   glucose 100/126 mg/dL, BMI 18.5/25/30, …) and world-knowledge lookup
//!   tables (city → population density).
//! - Token accounting, per-model pricing and a latency model make the
//!   cost/efficiency axis of Figure 1 exactly measurable, and a
//!   configurable error rate injects the malformed/duplicated outputs whose
//!   handling Section 3.2's error threshold exists for.
//!
//! Determinism: all sampling is driven by a seeded RNG in the oracle, so
//! identical call sequences produce identical transcripts.

pub mod backend;
pub mod cascade;
pub mod chat;
pub mod cost;
pub mod knowledge;
pub mod oracle;
pub mod parse;
pub mod stats;
pub mod token;

pub use backend::{BackendKind, FmBackend, KnowledgeCoverage, SimulatedBackend};
pub use cascade::CascadeFm;
pub use chat::{Exchange, Transcribing};
pub use cost::ModelSpec;
pub use oracle::{prompt_kind, FmConfig, FmError, FmResponse, FoundationModel, SimulatedFm};
pub use stats::{RouteStat, RoutingSnapshot, UsageMeter, UsageSnapshot};
