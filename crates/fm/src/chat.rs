//! Chat transcript recording: wraps any [`FoundationModel`] and captures
//! every (prompt, response) exchange.
//!
//! The original system's repository ships its prompt logs; this wrapper
//! provides the same visibility — the `custom_dataset` example prints a
//! transcript, and tests use it to assert on exact dialogue shapes.

use std::sync::Mutex;

use smartfeat_par::lock_or_poison;

use crate::oracle::{FmError, FmResponse, FoundationModel};
use crate::stats::{RoutingSnapshot, UsageMeter};

/// One prompt/response exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    /// The prompt sent.
    pub prompt: String,
    /// The model's text answer.
    pub response: String,
    /// Tokens billed for this exchange (prompt + completion).
    pub tokens: usize,
}

/// A recording wrapper around any foundation model.
pub struct Transcribing<M> {
    inner: M,
    log: Mutex<Vec<Exchange>>,
}

impl<M: FoundationModel> Transcribing<M> {
    /// Wrap a model.
    pub fn new(inner: M) -> Self {
        Transcribing {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// Clone of all recorded exchanges, in call order.
    pub fn transcript(&self) -> Vec<Exchange> {
        lock_or_poison(&self.log).clone()
    }

    /// Number of recorded exchanges.
    pub fn len(&self) -> usize {
        lock_or_poison(&self.log).len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        lock_or_poison(&self.log).is_empty()
    }

    /// Render the transcript as readable text (prompts truncated to
    /// `prompt_chars` characters).
    pub fn render(&self, prompt_chars: usize) -> String {
        let mut out = String::new();
        for (i, e) in lock_or_poison(&self.log).iter().enumerate() {
            let prompt: String = e.prompt.chars().take(prompt_chars).collect();
            let ellipsis = if e.prompt.chars().count() > prompt_chars {
                "…"
            } else {
                ""
            };
            out.push_str(&format!(
                "--- exchange {} ({} tokens) ---\n> {}{}\n< {}\n",
                i + 1,
                e.tokens,
                prompt.replace('\n', "\n> "),
                ellipsis,
                e.response.trim_end().replace('\n', "\n< "),
            ));
        }
        out
    }

    /// Unwrap the inner model.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: FoundationModel> FoundationModel for Transcribing<M> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn complete(&self, prompt: &str) -> Result<FmResponse, FmError> {
        let response = self.inner.complete(prompt)?;
        lock_or_poison(&self.log).push(Exchange {
            prompt: prompt.to_string(),
            response: response.text.clone(),
            tokens: response.prompt_tokens + response.completion_tokens,
        });
        Ok(response)
    }

    fn meter(&self) -> &UsageMeter {
        self.inner.meter()
    }

    fn routing(&self) -> Option<RoutingSnapshot> {
        self.inner.routing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedFm;

    #[test]
    fn records_every_exchange_in_order() {
        let fm = Transcribing::new(SimulatedFm::gpt4(1));
        assert!(fm.is_empty());
        fm.complete("first prompt").unwrap();
        fm.complete("second prompt").unwrap();
        let t = fm.transcript();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].prompt, "first prompt");
        assert_eq!(t[1].prompt, "second prompt");
        assert!(t.iter().all(|e| e.tokens > 0));
        assert_eq!(fm.len(), 2);
    }

    #[test]
    fn render_truncates_prompts() {
        let fm = Transcribing::new(SimulatedFm::gpt35(2));
        fm.complete(&"x".repeat(500)).unwrap();
        let text = fm.render(40);
        assert!(text.contains("exchange 1"));
        assert!(text.contains('…'));
        assert!(!text.contains(&"x".repeat(100)));
    }

    #[test]
    fn passthrough_preserves_accounting_and_errors() {
        use crate::cost::ModelSpec;
        use crate::oracle::FmConfig;
        let inner = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 0,
                call_budget: Some(1),
                ..FmConfig::default()
            },
        );
        let fm = Transcribing::new(inner);
        fm.complete("ok").unwrap();
        assert!(matches!(
            fm.complete("over budget"),
            Err(FmError::BudgetExhausted { .. })
        ));
        assert_eq!(fm.meter().snapshot().calls, 1);
        assert_eq!(fm.len(), 1, "failed calls are not recorded");
    }
}
