//! Approximate tokenizer for usage accounting.
//!
//! Real BPE is unnecessary for reproducing the paper's cost curves; what
//! matters is that token counts grow linearly with serialized data volume
//! (the row-level-vs-feature-level axis of Figure 1). We use the standard
//! "≈ 4 characters or ≈ ¾ words per token" heuristic, taking the larger of
//! the two estimates so code-dense and prose-dense text both count sanely.

/// Approximate the number of tokens in `text`.
pub fn approx_tokens(text: &str) -> usize {
    if text.is_empty() {
        return 0;
    }
    let chars = text.chars().count();
    let words = text.split_whitespace().count();
    let by_chars = chars.div_ceil(4);
    let by_words = words + words / 3;
    by_chars.max(by_words)
}

/// Token estimate for a serialized `name: value` row as the row-level
/// completion path produces (Figure 1's left side).
pub fn row_serialization_tokens(
    n_attrs: usize,
    avg_name_len: usize,
    avg_value_len: usize,
) -> usize {
    // "name: value, " per attribute plus the masked tail "new_feat: ?".
    let per_attr = avg_name_len + avg_value_len + 4;
    approx_tokens(&"x".repeat(per_attr * n_attrs + avg_name_len + 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(approx_tokens(""), 0);
    }

    #[test]
    fn grows_with_length() {
        let short = approx_tokens("age of the policyholder");
        let long = approx_tokens(&"age of the policyholder ".repeat(10));
        assert!(long > short * 8);
    }

    #[test]
    fn word_floor_applies_to_terse_text() {
        // 10 one-char words: char estimate would be 5, word estimate 13.
        let t = approx_tokens("a b c d e f g h i j");
        assert!(t >= 10);
    }

    #[test]
    fn char_estimate_applies_to_long_words() {
        // One 40-char word: word estimate 1, char estimate 10.
        let t = approx_tokens(&"x".repeat(40));
        assert_eq!(t, 10);
    }

    #[test]
    fn row_tokens_scale_with_attributes() {
        let narrow = row_serialization_tokens(5, 8, 6);
        let wide = row_serialization_tokens(20, 8, 6);
        assert!(wide > narrow * 3);
    }
}
