//! The transformation function generator (paper Section 3.3).
//!
//! Three outcomes, as in the paper:
//! 1. an executable [`TransformFunction`] (possibly after an FM round-trip
//!    to pin parameters like bucket boundaries);
//! 2. a row-level-completion transform when no closed form exists;
//! 3. a suggested external data source when neither applies.
//!
//! High-order candidates are constructed **directly** from the operator
//! selector's output without an FM call — the paper calls this out
//! explicitly — and binary candidates likewise carry their full spec.

use smartfeat_fm::FoundationModel;
use smartfeat_frame::ops::{BinaryOp, DatePart, NormKind, UnaryFn};
use smartfeat_obs::Recorder;

use crate::config::SmartFeatConfig;
use crate::error::{CoreError, Result};
use crate::fmout::{self, FunctionSpec};
use crate::operators::{Candidate, OperatorSpec};
use crate::prompts;
use crate::schema::DataAgenda;
use crate::transform::{Boundaries, TransformFunction};

/// The function generator's verdict for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum Generated {
    /// An executable transformation.
    Function(TransformFunction),
    /// No function and no completion path — here is where to find the data.
    SourceSuggestion(String),
}

/// The function generator. Holds the generator-role FM (GPT-3.5-turbo in
/// the paper, for its "comparable performance and better efficiency").
pub struct FunctionGenerator<'a> {
    fm: &'a dyn FoundationModel,
    config: &'a SmartFeatConfig,
    rec: Recorder,
}

impl<'a> FunctionGenerator<'a> {
    /// Create a generator over `fm` with `config`. Pass
    /// [`Recorder::disabled`] when telemetry is off.
    pub fn new(fm: &'a dyn FoundationModel, config: &'a SmartFeatConfig, rec: Recorder) -> Self {
        FunctionGenerator { fm, config, rec }
    }

    /// Produce the transformation for one candidate.
    pub fn generate(&self, agenda: &DataAgenda, candidate: &Candidate) -> Result<Generated> {
        let generated = self.generate_inner(agenda, candidate);
        // Generator calls run on the serial FM walk, so event emission
        // here is determinism-safe.
        self.rec.event(
            "generate.candidate",
            &[
                ("family", candidate.family.name().into()),
                ("name", candidate.name.as_str().into()),
                (
                    "outcome",
                    match &generated {
                        Ok(Generated::Function(_)) => "function".into(),
                        Ok(Generated::SourceSuggestion(_)) => "source_suggestion".into(),
                        Err(_) => "error".into(),
                    },
                ),
            ],
        );
        generated
    }

    fn generate_inner(&self, agenda: &DataAgenda, candidate: &Candidate) -> Result<Generated> {
        match &candidate.spec {
            // Directly constructible — no FM round-trip needed.
            OperatorSpec::Binary { op } => {
                let [left, right] = candidate.columns.as_slice() else {
                    return Err(CoreError::InvalidTransform(format!(
                        "binary candidate {:?} must name exactly two columns",
                        candidate.name
                    )));
                };
                Ok(Generated::Function(TransformFunction::Arithmetic {
                    left: left.clone(),
                    right: right.clone(),
                    op: *op,
                }))
            }
            OperatorSpec::HighOrder {
                group_cols,
                agg_col,
                func,
            } => Ok(Generated::Function(TransformFunction::GroupbyAgg {
                group_cols: group_cols.clone(),
                agg_col: agg_col.clone(),
                func: *func,
            })),
            // Everything else consults the FM for the concrete function.
            _ => {
                let prompt = prompts::function_generation(agenda, candidate);
                let response = self.fm.complete(&prompt)?;
                self.rec.family(candidate.family.name(), |f| {
                    f.fm.add(crate::fm_usage_of(&response))
                });
                let Some(spec) = fmout::parse_function_spec(&response.text) else {
                    return Err(CoreError::InvalidTransform(format!(
                        "unparseable function-generation response: {:?}",
                        truncate(&response.text, 80)
                    )));
                };
                self.lower(candidate, spec)
            }
        }
    }

    /// Lower a parsed [`FunctionSpec`] into an executable transform.
    fn lower(&self, candidate: &Candidate, spec: FunctionSpec) -> Result<Generated> {
        let first_input = || -> Result<String> {
            spec.inputs
                .first()
                .cloned()
                .or_else(|| candidate.columns.first().cloned())
                .ok_or_else(|| {
                    CoreError::InvalidTransform(format!(
                        "function spec for {:?} names no input column",
                        candidate.name
                    ))
                })
        };
        match spec.function.as_str() {
            "bucketize" => {
                let boundaries = match spec.params.get("boundaries").map(String::as_str) {
                    Some("auto") | None => Boundaries::Auto,
                    Some(text) => match fmout::parse_float_list(text) {
                        Some(b) => Boundaries::Given(b),
                        None => Boundaries::Auto,
                    },
                };
                Ok(Generated::Function(TransformFunction::Bucketize {
                    col: first_input()?,
                    boundaries,
                }))
            }
            "normalize" => {
                let kind = match spec.params.get("kind").map(String::as_str) {
                    Some("zscore") => NormKind::ZScore,
                    _ => NormKind::MinMax,
                };
                Ok(Generated::Function(TransformFunction::Normalize {
                    col: first_input()?,
                    kind,
                }))
            }
            "log" => Ok(Generated::Function(TransformFunction::UnaryMap {
                col: first_input()?,
                func: UnaryFn::Log1pAbs,
            })),
            "square" => Ok(Generated::Function(TransformFunction::UnaryMap {
                col: first_input()?,
                func: UnaryFn::Square,
            })),
            "sqrt" => Ok(Generated::Function(TransformFunction::UnaryMap {
                col: first_input()?,
                func: UnaryFn::SqrtAbs,
            })),
            "abs" => Ok(Generated::Function(TransformFunction::UnaryMap {
                col: first_input()?,
                func: UnaryFn::Abs,
            })),
            "reciprocal" => Ok(Generated::Function(TransformFunction::UnaryMap {
                col: first_input()?,
                func: UnaryFn::Reciprocal,
            })),
            "dummies" => Ok(Generated::Function(TransformFunction::Dummies {
                col: first_input()?,
                limit: self.config.one_hot_limit,
            })),
            "frequency" => Ok(Generated::Function(TransformFunction::FrequencyEncode {
                col: first_input()?,
            })),
            "date_split" => {
                let parts = spec
                    .params
                    .get("parts")
                    .map(|p| {
                        p.split(',')
                            .filter_map(|s| match s.trim() {
                                "year" => Some(DatePart::Year),
                                "month" => Some(DatePart::Month),
                                "day" => Some(DatePart::Day),
                                "weekday" => Some(DatePart::Weekday),
                                _ => None,
                            })
                            .collect::<Vec<_>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| vec![DatePart::Year, DatePart::Month, DatePart::Weekday]);
                Ok(Generated::Function(TransformFunction::DateSplit {
                    col: first_input()?,
                    parts,
                }))
            }
            "affine" => {
                let scale = spec
                    .params
                    .get("scale")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1.0);
                let offset = spec
                    .params
                    .get("offset")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0.0);
                Ok(Generated::Function(TransformFunction::Affine {
                    col: first_input()?,
                    scale,
                    offset,
                }))
            }
            "arithmetic" => {
                let op = match spec.params.get("op").map(String::as_str) {
                    Some("+") => BinaryOp::Add,
                    Some("-") => BinaryOp::Sub,
                    Some("*") => BinaryOp::Mul,
                    Some("/") => BinaryOp::Div,
                    other => {
                        return Err(CoreError::InvalidTransform(format!(
                            "unknown arithmetic operator {other:?}"
                        )))
                    }
                };
                let inputs = if spec.inputs.len() == 2 {
                    &spec.inputs
                } else {
                    &candidate.columns
                };
                let [left, right] = inputs.as_slice() else {
                    return Err(CoreError::InvalidTransform(
                        "arithmetic needs exactly two inputs".into(),
                    ));
                };
                Ok(Generated::Function(TransformFunction::Arithmetic {
                    left: left.clone(),
                    right: right.clone(),
                    op,
                }))
            }
            "weighted_index" => {
                let weights = spec
                    .params
                    .get("weights")
                    .and_then(|w| fmout::parse_float_list(w))
                    .ok_or_else(|| {
                        CoreError::InvalidTransform("weighted_index without weights".into())
                    })?;
                let cols = if spec.inputs.is_empty() {
                    candidate.columns.clone()
                } else {
                    spec.inputs.clone()
                };
                if weights.len() != cols.len() {
                    return Err(CoreError::InvalidTransform(format!(
                        "weighted_index has {} columns but {} weights",
                        cols.len(),
                        weights.len()
                    )));
                }
                let normalize = spec.params.get("normalize").map(String::as_str) == Some("true");
                Ok(Generated::Function(TransformFunction::WeightedIndex {
                    cols,
                    weights,
                    normalize,
                }))
            }
            "row_completion" => {
                if !self.config.allow_row_completion {
                    return Err(CoreError::RowCompletionUnavailable(
                        "row-level completion disabled by configuration".into(),
                    ));
                }
                let knowledge = spec.params.get("knowledge").cloned().unwrap_or_default();
                let key_cols = if spec.inputs.is_empty() {
                    candidate.columns.clone()
                } else {
                    spec.inputs.clone()
                };
                Ok(Generated::Function(TransformFunction::RowCompletion {
                    key_cols,
                    knowledge,
                }))
            }
            "unavailable" => Ok(Generated::SourceSuggestion(
                spec.source
                    .or(spec.note)
                    .unwrap_or_else(|| "no data source suggested".to_string()),
            )),
            other => Err(CoreError::InvalidTransform(format!(
                "unknown function kind {other:?}"
            ))),
        }
    }
}

fn truncate(text: &str, n: usize) -> String {
    if text.len() <= n {
        text.to_string()
    } else {
        format!("{}…", &text[..text.floor_char_boundary(n)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperatorFamily;
    use smartfeat_fm::SimulatedFm;
    use smartfeat_frame::ops::AggFunc;
    use smartfeat_frame::{Column, DataFrame};

    fn agenda() -> DataAgenda {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("Age", vec![21, 35]),
            Column::from_i64("Age_of_car", vec![6, 2]),
            Column::from_str_slice("City", &["SF", "LA"]),
            Column::from_i64("Safe", vec![0, 1]),
        ])
        .unwrap();
        DataAgenda::from_frame(
            &df,
            &[
                ("Age", "Age of the policyholder in years"),
                ("Age_of_car", "Age of the insured car in years"),
                ("City", "City where the policyholder lives"),
            ],
            "Safe",
            "RF",
        )
    }

    fn unary(name: &str, col: &str, op: &str, desc: &str) -> Candidate {
        Candidate {
            name: name.into(),
            columns: vec![col.into()],
            description: desc.into(),
            spec: OperatorSpec::Unary { op: op.into() },
            family: OperatorFamily::Unary,
        }
    }

    #[test]
    fn bucketize_age_gets_domain_boundaries() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = unary("Bucketized_Age", "Age", "bucketize", "age bands");
        match gen.generate(&agenda(), &cand).unwrap() {
            Generated::Function(TransformFunction::Bucketize {
                col,
                boundaries: Boundaries::Given(b),
            }) => {
                assert_eq!(col, "Age");
                assert!(b.contains(&21.0));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn years_since_lowers_to_affine() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = unary(
            "YearsSince_Age_of_car",
            "Age_of_car",
            "years_since",
            "manufacturing year of the car",
        );
        match gen.generate(&agenda(), &cand).unwrap() {
            Generated::Function(TransformFunction::Affine { scale, offset, .. }) => {
                assert_eq!(scale, -1.0);
                assert_eq!(offset, 2024.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn binary_constructed_without_fm_call() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "Age_minus_Age_of_car".into(),
            columns: vec!["Age".into(), "Age_of_car".into()],
            description: "difference".into(),
            spec: OperatorSpec::Binary { op: BinaryOp::Sub },
            family: OperatorFamily::Binary,
        };
        let g = gen.generate(&agenda(), &cand).unwrap();
        assert!(matches!(
            g,
            Generated::Function(TransformFunction::Arithmetic {
                op: BinaryOp::Sub,
                ..
            })
        ));
        assert_eq!(fm.meter().snapshot().calls, 0, "no FM call for binary");
    }

    #[test]
    fn highorder_constructed_without_fm_call() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "GroupBy_City_mean_Claim".into(),
            columns: vec!["City".into(), "Claim".into()],
            description: "claim rate per city".into(),
            spec: OperatorSpec::HighOrder {
                group_cols: vec!["City".into()],
                agg_col: "Claim".into(),
                func: AggFunc::Mean,
            },
            family: OperatorFamily::HighOrder,
        };
        let g = gen.generate(&agenda(), &cand).unwrap();
        assert!(matches!(
            g,
            Generated::Function(TransformFunction::GroupbyAgg { .. })
        ));
        assert_eq!(fm.meter().snapshot().calls, 0, "paper: direct construction");
    }

    #[test]
    fn external_lookup_lowers_to_row_completion() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "City_population_density".into(),
            columns: vec!["City".into()],
            description: "population density of the city".into(),
            spec: OperatorSpec::ExternalLookup {
                knowledge: "city_population_density".into(),
            },
            family: OperatorFamily::Extractor,
        };
        match gen.generate(&agenda(), &cand).unwrap() {
            Generated::Function(TransformFunction::RowCompletion { key_cols, .. }) => {
                assert_eq!(key_cols, vec!["City".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn external_lookup_disabled_by_config() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig {
            allow_row_completion: false,
            ..SmartFeatConfig::default()
        };
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "City_population_density".into(),
            columns: vec!["City".into()],
            description: "population density".into(),
            spec: OperatorSpec::ExternalLookup {
                knowledge: "city_population_density".into(),
            },
            family: OperatorFamily::Extractor,
        };
        assert!(matches!(
            gen.generate(&agenda(), &cand),
            Err(CoreError::RowCompletionUnavailable(_))
        ));
    }

    #[test]
    fn unknown_knowledge_becomes_source_suggestion() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "City_crime_rate".into(),
            columns: vec!["City".into()],
            description: "crime rate of the city".into(),
            spec: OperatorSpec::ExternalLookup {
                knowledge: "city_crime_rate".into(),
            },
            family: OperatorFamily::Extractor,
        };
        match gen.generate(&agenda(), &cand).unwrap() {
            Generated::SourceSuggestion(src) => assert!(src.contains("census"), "{src}"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn weighted_index_round_trip() {
        let fm = SimulatedFm::gpt35(0);
        let cfg = SmartFeatConfig::default();
        let gen = FunctionGenerator::new(&fm, &cfg, Recorder::disabled());
        let cand = Candidate {
            name: "Perf_index".into(),
            columns: vec!["Age".into(), "Age_of_car".into()],
            description: "weighted index".into(),
            spec: OperatorSpec::WeightedIndex {
                weights: vec![1.0, -1.0],
                normalize: true,
            },
            family: OperatorFamily::Extractor,
        };
        match gen.generate(&agenda(), &cand).unwrap() {
            Generated::Function(TransformFunction::WeightedIndex {
                cols,
                weights,
                normalize,
            }) => {
                assert_eq!(cols.len(), 2);
                assert_eq!(weights, vec![1.0, -1.0]);
                assert!(normalize);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
