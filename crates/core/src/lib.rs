//! # smartfeat
//!
//! SMARTFEAT: efficient feature construction through **feature-level**
//! foundation-model interactions (Lin, Jagadish, Ding, Zhou — CIDR 2024),
//! reproduced in Rust over a simulated FM.
//!
//! The tool takes a dataset (a [`smartfeat_frame::DataFrame`]), a *data
//! agenda* (feature descriptions + prediction target + downstream model),
//! and two FM handles (the paper uses GPT-4 for operator selection and
//! GPT-3.5-turbo for function generation), and iteratively grows the
//! feature set:
//!
//! 1. the **operator selector** ([`selector`]) prompts the FM with
//!    operator-guided templates — *proposal* strategy for unary operators,
//!    *sampling* strategy for binary / high-order / extractor operators —
//!    and parses candidate features out of the responses;
//! 2. the **function generator** ([`generator`]) turns each candidate into
//!    an executable [`transform::TransformFunction`], falls back to
//!    row-level FM completion when no closed form exists, or surfaces a
//!    suggested external data source;
//! 3. the **feature evaluation** step ([`evaluate`]) removes highly-null,
//!    single-valued and high-cardinality-dummy features, and the pipeline's
//!    drop heuristic retires superseded originals.
//!
//! Everything is orchestrated by [`pipeline::SmartFeat`], which returns a
//! [`report::SmartFeatReport`] with the augmented frame, per-feature
//! provenance, and exact FM usage accounting.

pub mod config;
pub mod error;
pub mod evaluate;
pub mod fmout;
pub mod generator;
pub mod operators;
pub mod pipeline;
pub mod prompts;
pub mod report;
pub mod routing;
pub mod schema;
pub mod search;
pub mod selector;
pub mod transform;

pub use config::{CascadeConfig, SearchConfig, SearchStrategyKind, SmartFeatConfig};
pub use error::{CoreError, Result};
pub use pipeline::SmartFeat;
pub use report::{GeneratedFeature, SkipReason, SmartFeatReport};
pub use routing::build_role_fms;
pub use schema::{DataAgenda, FeatureDescription};
pub use smartfeat_fm::BackendKind;

/// One FM response as an observability usage record.
pub(crate) fn fm_usage_of(r: &smartfeat_fm::FmResponse) -> smartfeat_obs::FmUsage {
    smartfeat_obs::FmUsage {
        calls: 1,
        prompt_tokens: r.prompt_tokens as u64,
        completion_tokens: r.completion_tokens as u64,
        cost_usd: r.cost_usd,
    }
}

/// A `UsageMeter` snapshot (or delta) as an observability usage record.
pub(crate) fn fm_usage_of_snapshot(s: &smartfeat_fm::UsageSnapshot) -> smartfeat_obs::FmUsage {
    smartfeat_obs::FmUsage {
        calls: s.calls as u64,
        prompt_tokens: s.prompt_tokens as u64,
        completion_tokens: s.completion_tokens as u64,
        cost_usd: s.cost_usd,
    }
}
