//! Parsing FM output back into structure (the role LangChain's output
//! parsers play in the original system).
//!
//! The parsers are deliberately tolerant — real models drift in formatting —
//! but they *fail closed*: anything unparseable becomes `None`, which the
//! selector counts against the generation-error threshold.

use std::collections::BTreeMap;

/// Confidence levels of the proposal strategy's template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Lowest.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
    /// Highest.
    Certain,
}

impl Confidence {
    /// Parse from the FM's parenthesized label.
    pub fn parse(text: &str) -> Option<Confidence> {
        match text.trim().to_ascii_lowercase().as_str() {
            "certain" => Some(Confidence::Certain),
            "high" => Some(Confidence::High),
            "medium" => Some(Confidence::Medium),
            "low" => Some(Confidence::Low),
            _ => None,
        }
    }
}

/// One line of a unary-proposal response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposalLine {
    /// Operator name (`bucketize`, `normalize`, …).
    pub op: String,
    /// Stated confidence.
    pub confidence: Confidence,
    /// Operator description (becomes the feature description).
    pub description: String,
}

/// Parse a numbered proposal list:
/// `1. bucketize (certain): group ages into bands`.
pub fn parse_proposals(text: &str) -> Vec<ProposalLine> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        // Strip the leading `N.` ordinal if present.
        let body = match line.split_once('.') {
            Some((num, rest)) if num.trim().parse::<usize>().is_ok() => rest.trim(),
            _ => line,
        };
        let Some(open) = body.find('(') else { continue };
        let Some(close) = body[open..].find(')').map(|i| i + open) else {
            continue;
        };
        let op = body[..open].trim().to_string();
        if op.is_empty() || op.contains(' ') {
            continue;
        }
        let Some(confidence) = Confidence::parse(&body[open + 1..close]) else {
            continue;
        };
        let description = body[close + 1..].trim_start_matches(':').trim().to_string();
        out.push(ProposalLine {
            op,
            confidence,
            description,
        });
    }
    out
}

/// A value in the tolerant JSON-ish dict the sampling strategy returns.
#[derive(Debug, Clone, PartialEq)]
pub enum DictValue {
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A flat list of strings/numbers (rendered to strings).
    List(Vec<String>),
}

impl DictValue {
    /// String view (numbers render).
    pub fn as_str(&self) -> Option<String> {
        match self {
            DictValue::Str(s) => Some(s.clone()),
            DictValue::Num(n) => Some(format!("{n}")),
            DictValue::Bool(b) => Some(b.to_string()),
            DictValue::List(_) => None,
        }
    }

    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            DictValue::Num(n) => Some(*n),
            DictValue::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// List view: a scalar string becomes a one-element list.
    pub fn as_list(&self) -> Vec<String> {
        match self {
            DictValue::List(v) => v.clone(),
            DictValue::Str(s) => vec![s.clone()],
            DictValue::Num(n) => vec![format!("{n}")],
            DictValue::Bool(b) => vec![b.to_string()],
        }
    }
}

/// Parse one flat JSON-ish object (`{"k": "v", "l": [1, 2], "b": true}`).
/// Returns `None` on structural damage (the truncation failure mode).
pub fn parse_dict(text: &str) -> Option<BTreeMap<String, DictValue>> {
    let text = text.trim();
    let start = text.find('{')?;
    let end = text.rfind('}')?;
    if end <= start {
        return None;
    }
    let inner = &text[start + 1..end];
    let mut out = BTreeMap::new();
    let mut chars = inner.char_indices().peekable();
    loop {
        skip_ws(inner, &mut chars);
        let Some(&(_, c)) = chars.peek() else { break };
        if c == ',' {
            chars.next();
            continue;
        }
        let key = parse_string(inner, &mut chars)?;
        skip_ws(inner, &mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(inner, &mut chars);
        let value = parse_value(inner, &mut chars)?;
        out.insert(key, value);
    }
    (!out.is_empty()).then_some(out)
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(_s: &str, chars: &mut CharIter) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(s: &str, chars: &mut CharIter) -> Option<String> {
    skip_ws(s, chars);
    match chars.next() {
        Some((_, '"')) => {
            let mut out = String::new();
            for (_, c) in chars.by_ref() {
                if c == '"' {
                    return Some(out);
                }
                out.push(c);
            }
            None // unterminated
        }
        _ => None,
    }
}

fn parse_value(s: &str, chars: &mut CharIter) -> Option<DictValue> {
    skip_ws(s, chars);
    match chars.peek().copied() {
        Some((_, '"')) => parse_string(s, chars).map(DictValue::Str),
        Some((_, '[')) => {
            chars.next();
            let mut items = Vec::new();
            loop {
                skip_ws(s, chars);
                match chars.peek().copied() {
                    Some((_, ']')) => {
                        chars.next();
                        return Some(DictValue::List(items));
                    }
                    Some((_, ',')) => {
                        chars.next();
                    }
                    Some((_, '"')) => {
                        items.push(parse_string(s, chars)?);
                    }
                    Some(_) => {
                        let tok = parse_bare(s, chars)?;
                        items.push(tok);
                    }
                    None => return None, // truncated list
                }
            }
        }
        Some(_) => {
            let tok = parse_bare(s, chars)?;
            if tok == "true" {
                Some(DictValue::Bool(true))
            } else if tok == "false" {
                Some(DictValue::Bool(false))
            } else if let Ok(n) = tok.parse::<f64>() {
                Some(DictValue::Num(n))
            } else {
                Some(DictValue::Str(tok))
            }
        }
        None => None,
    }
}

fn parse_bare(_s: &str, chars: &mut CharIter) -> Option<String> {
    let mut out = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c == ',' || c == ']' || c == '}' || c.is_whitespace() {
            break;
        }
        out.push(c);
        chars.next();
    }
    (!out.is_empty()).then_some(out)
}

/// A parsed function-generation response.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// The declared function kind (`bucketize`, `arithmetic`, …).
    pub function: String,
    /// Declared input columns.
    pub inputs: Vec<String>,
    /// `key=value` parameters.
    pub params: BTreeMap<String, String>,
    /// Optional data-source suggestion (the unavailable path).
    pub source: Option<String>,
    /// Optional free-text note.
    pub note: Option<String>,
}

/// Parse the structured `FUNCTION:` block a function-generation prompt
/// elicits.
pub fn parse_function_spec(text: &str) -> Option<FunctionSpec> {
    let mut function = None;
    let mut inputs = Vec::new();
    let mut params = BTreeMap::new();
    let mut source = None;
    let mut note = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("FUNCTION:") {
            function = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("INPUT:") {
            inputs = rest
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
        } else if let Some(rest) = line.strip_prefix("PARAMS:") {
            for pair in rest.split(';') {
                if let Some((k, v)) = pair.split_once('=') {
                    params.insert(k.trim().to_string(), v.trim().to_string());
                }
            }
        } else if let Some(rest) = line.strip_prefix("SOURCE:") {
            source = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("NOTE:") {
            note = Some(rest.trim().to_string());
        }
    }
    let function = function?;
    if function.is_empty() {
        return None;
    }
    Some(FunctionSpec {
        function,
        inputs,
        params,
        source,
        note,
    })
}

/// Parse a comma-separated list of floats (bucket boundaries, weights).
pub fn parse_float_list(text: &str) -> Option<Vec<f64>> {
    let vals: Vec<f64> = text
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect::<std::result::Result<_, _>>()
        .ok()?;
    (!vals.is_empty()).then_some(vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposals_parse_and_preserve_order() {
        let text = "1. bucketize (certain): group ages into bands\n\
                    2. normalize (high): scale to [0,1]\n\
                    3. square (low): probably useless\n";
        let p = parse_proposals(text);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].op, "bucketize");
        assert_eq!(p[0].confidence, Confidence::Certain);
        assert!(p[0].description.contains("bands"));
        assert_eq!(p[2].confidence, Confidence::Low);
    }

    #[test]
    fn proposals_skip_garbage_lines() {
        let text = "Here are some ideas:\n1. bucketize (certain): ok\nrandom prose\n\
                    2. bad op no parens\n3. two words (high): nope\n";
        let p = parse_proposals(text);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn proposals_reject_unknown_confidence() {
        let p = parse_proposals("1. log (very sure): yes\n");
        assert!(p.is_empty());
    }

    #[test]
    fn confidence_ordering_supports_filtering() {
        assert!(Confidence::Certain > Confidence::High);
        assert!(Confidence::High > Confidence::Medium);
    }

    #[test]
    fn dict_parses_strings_lists_numbers_bools() {
        let d = parse_dict(
            "{\"left\": \"Age\", \"op\": \"-\", \"cols\": [\"a\", \"b\"], \
             \"weights\": [1, -1], \"normalize\": true, \"n\": 3.5}",
        )
        .unwrap();
        assert_eq!(d["left"].as_str().unwrap(), "Age");
        assert_eq!(d["cols"].as_list(), vec!["a", "b"]);
        assert_eq!(d["weights"].as_list(), vec!["1", "-1"]);
        assert_eq!(d["normalize"], DictValue::Bool(true));
        assert_eq!(d["n"].as_num(), Some(3.5));
    }

    #[test]
    fn dict_rejects_truncation() {
        assert!(parse_dict("{\"left\": \"Age\", \"op\": ").is_none());
        assert!(parse_dict("no braces at all").is_none());
        assert!(parse_dict("{}").is_none());
    }

    #[test]
    fn dict_tolerates_prose_around_it() {
        let d = parse_dict("Sure! Here's a feature:\n{\"a\": \"b\"}\nHope that helps.").unwrap();
        assert_eq!(d["a"].as_str().unwrap(), "b");
    }

    #[test]
    fn dict_rejects_unterminated_string() {
        assert!(parse_dict("{\"a\": \"oops}").is_none());
    }

    #[test]
    fn function_spec_full_block() {
        let spec = parse_function_spec(
            "FUNCTION: bucketize\nINPUT: Age\nPARAMS: boundaries=18,21,25\nNOTE: standard bands\n",
        )
        .unwrap();
        assert_eq!(spec.function, "bucketize");
        assert_eq!(spec.inputs, vec!["Age"]);
        assert_eq!(spec.params["boundaries"], "18,21,25");
        assert_eq!(spec.note.as_deref(), Some("standard bands"));
    }

    #[test]
    fn function_spec_unavailable_with_source() {
        let spec = parse_function_spec("FUNCTION: unavailable\nSOURCE: https://data.census.gov\n")
            .unwrap();
        assert_eq!(spec.function, "unavailable");
        assert!(spec.source.unwrap().contains("census"));
    }

    #[test]
    fn function_spec_requires_function_line() {
        assert!(parse_function_spec("INPUT: Age\n").is_none());
        assert!(parse_function_spec("I'm sorry, I can't do that.").is_none());
    }

    #[test]
    fn float_list_parsing() {
        assert_eq!(parse_float_list("1, 2.5, -3"), Some(vec![1.0, 2.5, -3.0]));
        assert!(parse_float_list("1, x").is_none());
        assert!(parse_float_list("").is_none());
    }

    #[test]
    fn multi_param_spec() {
        let spec = parse_function_spec(
            "FUNCTION: weighted_index\nINPUT: a, b\nPARAMS: weights=1,-1; normalize=true\n",
        )
        .unwrap();
        assert_eq!(spec.params["weights"], "1,-1");
        assert_eq!(spec.params["normalize"], "true");
        assert_eq!(spec.inputs, vec!["a", "b"]);
    }
}
