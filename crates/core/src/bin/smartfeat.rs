//! `smartfeat` — run feature construction on your own CSV from the shell.
//!
//! ```text
//! smartfeat --csv data.csv --target label [options]
//!
//! options:
//!   --csv PATH            input CSV (header row required)
//!   --target NAME         prediction-class column
//!   --out PATH            write the augmented CSV here (default: stdout summary only)
//!   --describe COL=TEXT   feature description (repeatable; quote the pair)
//!   --model NAME          downstream model named in prompts (default RF)
//!   --seed N              FM seed (default 42)
//!   --budget N            sampling budget per operator family (default 10)
//!   --strategy NAME       search strategy: one_shot (default), beam,
//!                         evolutionary, react
//!   --beam-width N        beam: survivors kept per round (default 3)
//!   --beam-depth N        beam: pool-score-prune rounds (default 2)
//!   --generations N       evolutionary: generations (default 3)
//!   --population N        evolutionary: population size (default 6)
//!   --react-turns N       react: observe-think-act turn budget (default 8)
//!   --fm-budget N         cap on selector FM calls for the search
//!                         (default 0 = unlimited)
//!   --backend NAME        serve both roles from one simulated backend:
//!                         babbage-002, gpt-3.5-turbo, gpt-4
//!                         (default: gpt-4 selector + gpt-3.5-turbo generator)
//!   --cascade             route every prompt through the cost-ordered
//!                         cascade (babbage-002 -> gpt-3.5-turbo -> gpt-4),
//!                         escalating on parse failure or hedged output;
//!                         mutually exclusive with --backend
//!   --threads N           worker threads for parallel compute stages
//!                         (default 0 = auto; SMARTFEAT_THREADS overrides;
//!                         output is identical for every value)
//!   --no-drop             disable the original-feature drop heuristic
//!   --fm-removal          enable the FM feature-removal extension
//!   --transcript          print the full FM dialogue afterwards
//!   --trace-out PATH      write the JSONL observability trace here
//!   --metrics-out PATH    write the end-of-run JSON metrics report here
//!                         (timestamps use a deterministic logical clock;
//!                         set SMARTFEAT_OBS_WALLCLOCK=1 for wall time)
//! ```
//!
//! The FM endpoints are in-process simulated model families (the GPT-4 /
//! GPT-3.5 pair by default; see `--backend` / `--cascade`); to target a
//! real API implement `smartfeat_fm::FoundationModel` and use the library
//! interface instead.

use std::process::exit;

use smartfeat::{
    build_role_fms, BackendKind, DataAgenda, SearchConfig, SearchStrategyKind, SmartFeat,
    SmartFeatConfig,
};
use smartfeat_fm::{FoundationModel, Transcribing};
use smartfeat_frame::csv;

struct Args {
    csv: String,
    target: String,
    out: Option<String>,
    descriptions: Vec<(String, String)>,
    model: String,
    seed: u64,
    budget: usize,
    threads: usize,
    search: SearchConfig,
    backend: Option<BackendKind>,
    cascade: bool,
    drop_heuristic: bool,
    fm_removal: bool,
    transcript: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut csv = None;
    let mut target = None;
    let mut out = None;
    let mut descriptions = Vec::new();
    let mut model = "RF".to_string();
    let mut seed = 42u64;
    let mut budget = 10usize;
    let mut threads = 0usize;
    let mut search = SearchConfig::default();
    let mut backend = None;
    let mut cascade = false;
    let mut drop_heuristic = true;
    let mut fm_removal = false;
    let mut transcript = false;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--csv" => csv = Some(value("--csv")?),
            "--target" => target = Some(value("--target")?),
            "--out" => out = Some(value("--out")?),
            "--describe" => {
                let pair = value("--describe")?;
                let (col, text) = pair
                    .split_once('=')
                    .ok_or("--describe expects COL=TEXT".to_string())?;
                descriptions.push((col.trim().to_string(), text.trim().to_string()));
            }
            "--model" => model = value("--model")?,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--budget" => {
                budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--strategy" => {
                let name = value("--strategy")?;
                search.strategy = SearchStrategyKind::parse(&name).ok_or_else(|| {
                    format!(
                        "unknown --strategy {name:?}; choose from {}",
                        SearchStrategyKind::all()
                            .map(SearchStrategyKind::name)
                            .join(", ")
                    )
                })?;
            }
            "--beam-width" => {
                search.beam_width = value("--beam-width")?
                    .parse()
                    .map_err(|e| format!("bad --beam-width: {e}"))?;
            }
            "--beam-depth" => {
                search.beam_depth = value("--beam-depth")?
                    .parse()
                    .map_err(|e| format!("bad --beam-depth: {e}"))?;
            }
            "--generations" => {
                search.generations = value("--generations")?
                    .parse()
                    .map_err(|e| format!("bad --generations: {e}"))?;
            }
            "--population" => {
                search.population = value("--population")?
                    .parse()
                    .map_err(|e| format!("bad --population: {e}"))?;
            }
            "--react-turns" => {
                search.react_turns = value("--react-turns")?
                    .parse()
                    .map_err(|e| format!("bad --react-turns: {e}"))?;
            }
            "--fm-budget" => {
                search.fm_call_budget = value("--fm-budget")?
                    .parse()
                    .map_err(|e| format!("bad --fm-budget: {e}"))?;
            }
            "--backend" => {
                let name = value("--backend")?;
                backend = Some(BackendKind::parse(&name).ok_or_else(|| {
                    format!(
                        "unknown --backend {name:?}; choose from {}",
                        BackendKind::all().map(BackendKind::name).join(", ")
                    )
                })?);
            }
            "--cascade" => cascade = true,
            "--no-drop" => drop_heuristic = false,
            "--fm-removal" => fm_removal = true,
            "--transcript" => transcript = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        csv: csv.ok_or("--csv is required")?,
        target: target.ok_or("--target is required")?,
        out,
        descriptions,
        model,
        seed,
        budget,
        threads,
        search,
        backend,
        cascade,
        drop_heuristic,
        fm_removal,
        transcript,
        trace_out,
        metrics_out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nusage: smartfeat --csv data.csv --target label [options]");
            exit(2);
        }
    };

    let df = match csv::read_csv_path(std::path::Path::new(&args.csv)) {
        Ok(df) => df,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.csv);
            exit(1);
        }
    };
    if !df.has_column(&args.target) {
        eprintln!(
            "error: target column {:?} not found; columns are {:?}",
            args.target,
            df.column_names()
        );
        exit(1);
    }
    for (col, _) in &args.descriptions {
        if !df.has_column(col) {
            eprintln!(
                "warning: --describe names unknown column {col:?}; columns are {:?}",
                df.column_names()
            );
        }
    }
    let pairs: Vec<(&str, &str)> = args
        .descriptions
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let agenda = DataAgenda::from_frame(&df, &pairs, &args.target, &args.model);

    let config = SmartFeatConfig {
        sampling_budget: args.budget,
        search: args.search,
        backend: args.backend,
        cascade: smartfeat::CascadeConfig {
            enabled: args.cascade,
            ..smartfeat::CascadeConfig::default()
        },
        drop_heuristic: args.drop_heuristic,
        fm_feature_removal: args.fm_removal,
        threads: args.threads,
        observability: smartfeat::config::ObservabilityConfig {
            enabled: false,
            trace_out: args.trace_out.clone(),
            metrics_out: args.metrics_out.clone(),
        },
        seed: args.seed,
        ..SmartFeatConfig::default()
    };
    let (selector_fm, generator_fm) = build_role_fms(&config);
    let selector = Transcribing::new(selector_fm);
    let generator = Transcribing::new(generator_fm);
    let report = match SmartFeat::new(&selector, &generator, config).run(&df, &agenda) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            exit(1);
        }
    };

    println!("{}", report.summary());
    println!("Generated features:");
    for g in &report.generated {
        println!("  {:<40} {}", g.name, g.transform);
    }
    if !report.dropped_originals.is_empty() {
        println!("Dropped originals: {:?}", report.dropped_originals);
    }
    if !report.fm_removed.is_empty() {
        println!("FM-removed features: {:?}", report.fm_removed);
    }
    for (feature, source) in &report.source_suggestions {
        println!("Suggested source for {feature}: {source}");
    }

    if let Some(path) = args.out {
        if let Err(e) = csv::write_csv_path(&report.frame, std::path::Path::new(&path)) {
            eprintln!("error writing {path}: {e}");
            exit(1);
        }
        println!(
            "\nAugmented dataset ({} columns) written to {path}",
            report.frame.n_cols()
        );
    }

    if let Some(path) = &args.metrics_out {
        println!("Metrics report written to {path}");
    }
    if let Some(path) = &args.trace_out {
        println!("Trace written to {path}");
    }

    if args.transcript {
        println!(
            "\n=== operator-selector dialogue ({}) ===",
            selector.model_name()
        );
        println!("{}", selector.render(160));
        println!(
            "=== function-generator dialogue ({}) ===",
            generator.model_name()
        );
        println!("{}", generator.render(160));
    }
}
