//! Runtime FM construction from the config: the paper's fixed
//! GPT-4/GPT-3.5 pairing, a single-model override, or a cascade ladder —
//! plus the snapshot-delta bookkeeping that bridges a cascade's
//! per-backend routing stats into the observability report.

use smartfeat_fm::{CascadeFm, FoundationModel, RouteStat, RoutingSnapshot, SimulatedFm};

use crate::config::SmartFeatConfig;

/// Build the `(selector, generator)` FM pair the config asks for. The
/// two roles get distinct seeds (`seed` / `seed + 1`), matching the
/// seeding the default pairing has always used.
pub fn build_role_fms(
    config: &SmartFeatConfig,
) -> (Box<dyn FoundationModel>, Box<dyn FoundationModel>) {
    let seed = config.seed;
    if config.cascade.enabled {
        (
            Box::new(CascadeFm::new(&config.cascade.ladder, seed)),
            Box::new(CascadeFm::new(&config.cascade.ladder, seed.wrapping_add(1))),
        )
    } else if let Some(kind) = config.backend {
        (
            Box::new(kind.fm(seed)),
            Box::new(kind.fm(seed.wrapping_add(1))),
        )
    } else {
        (
            Box::new(SimulatedFm::gpt4(seed)),
            Box::new(SimulatedFm::gpt35(seed.wrapping_add(1))),
        )
    }
}

/// Per-backend delta between two routing snapshots of one FM handle.
/// `None` (a non-routing model) on either side yields an empty map.
pub(crate) fn routing_delta(
    before: &Option<RoutingSnapshot>,
    after: &Option<RoutingSnapshot>,
) -> RoutingSnapshot {
    let Some(after) = after else {
        return RoutingSnapshot::new();
    };
    let zero = RouteStat::default();
    let mut out = RoutingSnapshot::new();
    for (name, stat) in after {
        let earlier = before.as_ref().and_then(|b| b.get(name)).unwrap_or(&zero);
        let d = stat.delta(earlier);
        if !d.is_empty() {
            out.insert(name.clone(), d);
        }
    }
    out
}

/// Merge the two roles' routing deltas into one per-backend map.
pub(crate) fn merge_routing(mut a: RoutingSnapshot, b: RoutingSnapshot) -> RoutingSnapshot {
    for (name, stat) in b {
        a.entry(name).or_default().add(&stat);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_fm::BackendKind;

    use crate::config::CascadeConfig;

    #[test]
    fn default_config_builds_the_paper_pairing() {
        let (sel, gen) = build_role_fms(&SmartFeatConfig::default());
        assert_eq!(sel.model_name(), "gpt-4");
        assert_eq!(gen.model_name(), "gpt-3.5-turbo");
        assert!(sel.routing().is_none());
    }

    #[test]
    fn backend_override_serves_both_roles() {
        let config = SmartFeatConfig {
            backend: Some(BackendKind::Babbage002),
            ..SmartFeatConfig::default()
        };
        let (sel, gen) = build_role_fms(&config);
        assert_eq!(sel.model_name(), "babbage-002");
        assert_eq!(gen.model_name(), "babbage-002");
    }

    #[test]
    fn cascade_config_builds_routers() {
        let config = SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: true,
                ..CascadeConfig::default()
            },
            ..SmartFeatConfig::default()
        };
        let (sel, _gen) = build_role_fms(&config);
        assert_eq!(
            sel.model_name(),
            "cascade(babbage-002->gpt-3.5-turbo->gpt-4)"
        );
        assert!(sel.routing().is_some());
    }

    #[test]
    fn routing_delta_subtracts_and_drops_empty_entries() {
        let mut before = RoutingSnapshot::new();
        before.insert(
            "gpt-4".into(),
            RouteStat {
                calls: 2,
                ..RouteStat::default()
            },
        );
        before.insert(
            "babbage-002".into(),
            RouteStat {
                calls: 5,
                escalations: 1,
                ..RouteStat::default()
            },
        );
        let mut after = before.clone();
        after.get_mut("babbage-002").unwrap().calls = 7;
        let d = routing_delta(&Some(before), &Some(after));
        assert_eq!(d.len(), 1, "unchanged gpt-4 entry dropped: {d:?}");
        assert_eq!(d["babbage-002"].calls, 2);
        assert_eq!(d["babbage-002"].escalations, 0);
        assert!(routing_delta(&None, &None).is_empty());
    }

    #[test]
    fn merge_routing_sums_per_backend() {
        let mut a = RoutingSnapshot::new();
        a.insert(
            "gpt-4".into(),
            RouteStat {
                calls: 1,
                ..RouteStat::default()
            },
        );
        let mut b = RoutingSnapshot::new();
        b.insert(
            "gpt-4".into(),
            RouteStat {
                calls: 2,
                ..RouteStat::default()
            },
        );
        b.insert(
            "babbage-002".into(),
            RouteStat {
                calls: 4,
                ..RouteStat::default()
            },
        );
        let m = merge_routing(a, b);
        assert_eq!(m["gpt-4"].calls, 3);
        assert_eq!(m["babbage-002"].calls, 4);
    }
}
