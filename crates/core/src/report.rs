//! Pipeline outputs: per-feature provenance, skip reasons, usage accounting.

use std::collections::BTreeMap;

use smartfeat_fm::UsageSnapshot;
use smartfeat_frame::DataFrame;

use crate::config::OperatorFamily;
use crate::schema::DataAgenda;

/// Why a candidate (or one of its produced columns) was not kept.
#[derive(Debug, Clone, PartialEq)]
pub enum SkipReason {
    /// Null fraction exceeded the configured limit.
    HighNull(f64),
    /// The column carried a single distinct value.
    SingleValued,
    /// Duplicate of the named existing column (name or values).
    Duplicate(String),
    /// The transform failed to execute (message).
    TransformFailed(String),
    /// The FM's function-generation output could not be lowered (message).
    GenerationFailed(String),
    /// The function generator suggested a data source instead (suggestion).
    SourceOnly(String),
    /// The operator-selector sample was unparseable or referenced unknown
    /// columns.
    InvalidSample,
    /// The sample duplicated an earlier candidate.
    RepeatedSample,
    /// The feature was realized but removed again by a search strategy's
    /// score-guided pruning (beam / evolutionary selection pressure). Not
    /// a generation error: the candidate was valid, just outcompeted.
    Pruned,
}

impl SkipReason {
    /// True for the reasons the paper counts against the generation-error
    /// threshold (invalid or repeated features).
    pub fn is_generation_error(&self) -> bool {
        matches!(
            self,
            SkipReason::InvalidSample
                | SkipReason::RepeatedSample
                | SkipReason::GenerationFailed(_)
        )
    }

    /// Stable machine-readable tag for trace events and metrics counters.
    pub fn tag(&self) -> &'static str {
        match self {
            SkipReason::HighNull(_) => "high_null",
            SkipReason::SingleValued => "single_valued",
            SkipReason::Duplicate(_) => "duplicate",
            SkipReason::TransformFailed(_) => "transform_failed",
            SkipReason::GenerationFailed(_) => "generation_failed",
            SkipReason::SourceOnly(_) => "source_only",
            SkipReason::InvalidSample => "invalid_sample",
            SkipReason::RepeatedSample => "repeated_sample",
            SkipReason::Pruned => "pruned",
        }
    }
}

/// One successfully generated and kept feature.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedFeature {
    /// Column name in the output frame.
    pub name: String,
    /// Operator family that produced it.
    pub family: OperatorFamily,
    /// Input columns.
    pub columns: Vec<String>,
    /// Natural-language description (in the agenda).
    pub description: String,
    /// Debug rendering of the executed transform.
    pub transform: String,
}

/// One candidate that was considered but not kept.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedFeature {
    /// Candidate / column name.
    pub name: String,
    /// Family it came from.
    pub family: OperatorFamily,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Full output of a SMARTFEAT run.
#[derive(Debug, Clone)]
pub struct SmartFeatReport {
    /// The augmented dataframe (new features attached, superseded originals
    /// dropped).
    pub frame: DataFrame,
    /// Features generated and kept, in creation order.
    pub generated: Vec<GeneratedFeature>,
    /// Candidates rejected, with reasons.
    pub skipped: Vec<SkippedFeature>,
    /// Original features removed by the drop heuristic.
    pub dropped_originals: Vec<String>,
    /// Features removed by the FM-removal extension (empty unless
    /// `fm_feature_removal` is enabled).
    pub fm_removed: Vec<String>,
    /// `(feature, suggested source)` pairs from the unavailable path.
    pub source_suggestions: Vec<(String, String)>,
    /// The final data agenda.
    pub agenda: DataAgenda,
    /// Operator-selector FM usage during this run.
    pub selector_usage: UsageSnapshot,
    /// Function-generator FM usage during this run (includes row-level
    /// completions).
    pub generator_usage: UsageSnapshot,
    /// The observability metrics report for this run (`None` when the
    /// config's observability section is inactive). Same JSON document the
    /// `--metrics-out` flag writes.
    pub metrics: Option<smartfeat_frame::json::JsonValue>,
}

impl SmartFeatReport {
    /// Names of generated (kept) features.
    pub fn new_feature_names(&self) -> Vec<&str> {
        self.generated.iter().map(|g| g.name.as_str()).collect()
    }

    /// Generated feature count per family.
    pub fn counts_by_family(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for g in &self.generated {
            *out.entry(g.family.name()).or_insert(0) += 1;
        }
        out
    }

    /// Generation errors counted (paper threshold semantics).
    pub fn generation_errors(&self) -> usize {
        self.skipped
            .iter()
            .filter(|s| s.reason.is_generation_error())
            .count()
    }

    /// Combined FM usage.
    pub fn total_usage(&self) -> UsageSnapshot {
        UsageSnapshot {
            calls: self.selector_usage.calls + self.generator_usage.calls,
            prompt_tokens: self.selector_usage.prompt_tokens + self.generator_usage.prompt_tokens,
            completion_tokens: self.selector_usage.completion_tokens
                + self.generator_usage.completion_tokens,
            cost_usd: self.selector_usage.cost_usd + self.generator_usage.cost_usd,
            latency: self.selector_usage.latency + self.generator_usage.latency,
        }
    }

    /// Human-readable run summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SMARTFEAT generated {} features ({} skipped, {} originals dropped)\n",
            self.generated.len(),
            self.skipped.len(),
            self.dropped_originals.len()
        ));
        for (family, count) in self.counts_by_family() {
            out.push_str(&format!("  {family}: {count}\n"));
        }
        let u = self.total_usage();
        out.push_str(&format!(
            "FM usage: {} calls, {} tokens, ${:.4}, simulated latency {:.1}s\n",
            u.calls,
            u.total_tokens(),
            u.cost_usd,
            u.latency.as_secs_f64()
        ));
        for (feat, src) in &self.source_suggestions {
            out.push_str(&format!("  suggested source for {feat}: {src}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataAgenda;
    use smartfeat_frame::{Column, DataFrame};
    use std::time::Duration;

    fn report() -> SmartFeatReport {
        let df = DataFrame::from_columns(vec![Column::from_i64("a", vec![1, 2])]).unwrap();
        SmartFeatReport {
            frame: df.clone(),
            generated: vec![
                GeneratedFeature {
                    name: "x".into(),
                    family: OperatorFamily::Unary,
                    columns: vec!["a".into()],
                    description: "d".into(),
                    transform: "t".into(),
                },
                GeneratedFeature {
                    name: "y".into(),
                    family: OperatorFamily::Binary,
                    columns: vec!["a".into(), "x".into()],
                    description: "d".into(),
                    transform: "t".into(),
                },
                GeneratedFeature {
                    name: "z".into(),
                    family: OperatorFamily::Unary,
                    columns: vec!["a".into()],
                    description: "d".into(),
                    transform: "t".into(),
                },
            ],
            skipped: vec![
                SkippedFeature {
                    name: "bad".into(),
                    family: OperatorFamily::Binary,
                    reason: SkipReason::InvalidSample,
                },
                SkippedFeature {
                    name: "dup".into(),
                    family: OperatorFamily::Binary,
                    reason: SkipReason::Duplicate("a".into()),
                },
            ],
            dropped_originals: vec!["old".into()],
            fm_removed: vec![],
            source_suggestions: vec![("f".into(), "https://example.org".into())],
            agenda: DataAgenda {
                features: vec![],
                target: "t".into(),
                model: "RF".into(),
            },
            selector_usage: UsageSnapshot {
                calls: 3,
                prompt_tokens: 100,
                completion_tokens: 50,
                cost_usd: 0.01,
                latency: Duration::from_secs(1),
            },
            generator_usage: UsageSnapshot {
                calls: 2,
                prompt_tokens: 60,
                completion_tokens: 20,
                cost_usd: 0.002,
                latency: Duration::from_secs(1),
            },
            metrics: None,
        }
    }

    #[test]
    fn counts_by_family() {
        let r = report();
        let c = r.counts_by_family();
        assert_eq!(c["Unary"], 2);
        assert_eq!(c["Binary"], 1);
    }

    #[test]
    fn generation_error_classification() {
        assert!(SkipReason::InvalidSample.is_generation_error());
        assert!(SkipReason::RepeatedSample.is_generation_error());
        assert!(SkipReason::GenerationFailed("x".into()).is_generation_error());
        assert!(!SkipReason::HighNull(0.9).is_generation_error());
        assert!(!SkipReason::Duplicate("a".into()).is_generation_error());
        assert!(!SkipReason::Pruned.is_generation_error());
        assert_eq!(report().generation_errors(), 1);
    }

    #[test]
    fn skip_reason_tags_are_stable() {
        assert_eq!(SkipReason::HighNull(0.9).tag(), "high_null");
        assert_eq!(SkipReason::Duplicate("a".into()).tag(), "duplicate");
        assert_eq!(SkipReason::InvalidSample.tag(), "invalid_sample");
        assert_eq!(SkipReason::Pruned.tag(), "pruned");
        assert_eq!(
            SkipReason::GenerationFailed("x".into()).tag(),
            "generation_failed"
        );
    }

    #[test]
    fn usage_totals() {
        let u = report().total_usage();
        assert_eq!(u.calls, 5);
        assert_eq!(u.total_tokens(), 230);
        assert!((u.cost_usd - 0.012).abs() < 1e-12);
        assert_eq!(u.latency, Duration::from_secs(2));
    }

    #[test]
    fn summary_mentions_key_facts() {
        let s = report().summary();
        assert!(s.contains("generated 3 features"));
        assert!(s.contains("Unary: 2"));
        assert!(s.contains("suggested source"));
    }
}
