//! The SMARTFEAT pipeline: operator-guided feature generation
//! (paper Section 3.2, "Generating the candidate feature set").
//!
//! Order of exploration, as in the paper: unary operators over each
//! original feature with the *proposal* strategy; then binary and
//! high-order operators with the *sampling* strategy over the enriched
//! agenda; then extractors; finally the drop heuristic retires original
//! features that were unary-transformed and never referenced again.

use std::collections::BTreeSet;

use smartfeat_fm::FoundationModel;
use smartfeat_frame::{Column, DataFrame};
use smartfeat_obs::{PoolCounters, Recorder};

use crate::config::SmartFeatConfig;
use crate::error::Result;
use crate::evaluate::check_new_column_threaded;
use crate::generator::{FunctionGenerator, Generated};
use crate::operators::Candidate;
use crate::report::{GeneratedFeature, SkipReason, SkippedFeature, SmartFeatReport};
use crate::schema::DataAgenda;
use crate::selector::OperatorSelector;
use crate::transform::{self, TransformFunction};

/// The SMARTFEAT tool: two FM handles (selector / generator roles) plus a
/// configuration.
///
/// ```
/// use smartfeat::{DataAgenda, SmartFeat, SmartFeatConfig};
/// use smartfeat_fm::SimulatedFm;
/// use smartfeat_frame::{Column, DataFrame};
///
/// let df = DataFrame::from_columns(vec![
///     Column::from_i64("Age", (0..40).map(|i| 18 + (i * 7) % 50).collect()),
///     Column::from_i64("Safe", (0..40).map(|i| i % 2).collect()),
/// ])
/// .unwrap();
/// let agenda = DataAgenda::from_frame(
///     &df,
///     &[("Age", "Age of the policyholder in years")],
///     "Safe",
///     "RF",
/// );
/// let selector = SimulatedFm::gpt4(1);
/// let generator = SimulatedFm::gpt35(2);
/// let report = SmartFeat::new(&selector, &generator, SmartFeatConfig::default())
///     .run(&df, &agenda)
///     .unwrap();
/// assert!(report.frame.has_column("Bucketized_Age"));
/// ```
pub struct SmartFeat<'a> {
    pub(crate) selector_fm: &'a dyn FoundationModel,
    pub(crate) generator_fm: &'a dyn FoundationModel,
    pub(crate) config: SmartFeatConfig,
}

/// One candidate's progress through [`SmartFeat::realize_batch`]'s serial
/// FM stage, before the parallel transform stage fills the gaps.
enum Staged {
    /// Generation failed or yielded only a source suggestion; the skip (or
    /// suggestion) entry is already recorded. Nothing left to do.
    Rejected,
    /// A pure transform waiting on the parallel execution stage.
    Pending,
    /// Transform execution failed; the skip entry is recorded by the
    /// commit stage so report order follows candidate order.
    Failed(String),
    /// Columns ready for the serial filter-and-commit stage.
    Ready {
        func: TransformFunction,
        columns: Vec<Column>,
    },
}

/// Internal mutable state of one run, threaded through the active
/// [`crate::search::SearchStrategy`].
pub(crate) struct RunState {
    pub(crate) frame: DataFrame,
    pub(crate) agenda: DataAgenda,
    pub(crate) generated: Vec<GeneratedFeature>,
    pub(crate) skipped: Vec<SkippedFeature>,
    pub(crate) source_suggestions: Vec<(String, String)>,
    pub(crate) seen_keys: BTreeSet<String>,
    /// Original features that received a unary-derived feature.
    pub(crate) unary_transformed: BTreeSet<String>,
    /// Original features referenced by accepted non-unary candidates.
    pub(crate) referenced: BTreeSet<String>,
    /// Run-scoped telemetry recorder (disabled unless the config's
    /// observability section is active).
    pub(crate) rec: Recorder,
}

impl<'a> SmartFeat<'a> {
    /// Create the tool. The paper uses GPT-4 as `selector_fm` and
    /// GPT-3.5-turbo as `generator_fm`.
    pub fn new(
        selector_fm: &'a dyn FoundationModel,
        generator_fm: &'a dyn FoundationModel,
        config: SmartFeatConfig,
    ) -> Self {
        SmartFeat {
            selector_fm,
            generator_fm,
            config,
        }
    }

    /// Run feature construction over `df` with the given agenda
    /// (descriptions + target + downstream model).
    pub fn run(&self, df: &DataFrame, agenda: &DataAgenda) -> Result<SmartFeatReport> {
        self.config.validate()?;
        let rec = if self.config.observability.active() {
            Recorder::from_env()
        } else {
            Recorder::disabled()
        };
        let selector_before = self.selector_fm.meter().snapshot();
        let generator_before = self.generator_fm.meter().snapshot();
        let selector_routing_before = self.selector_fm.routing();
        let generator_routing_before = self.generator_fm.routing();
        let pool_before = smartfeat_par::pool_stats();
        let work_before = smartfeat_obs::global::snapshot();
        let run_span = rec.span("run");

        let mut state = RunState {
            frame: df.clone(),
            agenda: agenda.clone(),
            generated: Vec::new(),
            skipped: Vec::new(),
            source_suggestions: Vec::new(),
            seen_keys: BTreeSet::new(),
            unary_transformed: BTreeSet::new(),
            referenced: BTreeSet::new(),
            rec: rec.clone(),
        };
        let selector = OperatorSelector::new(self.selector_fm, &self.config, rec.clone());
        let generator = FunctionGenerator::new(self.generator_fm, &self.config, rec.clone());

        let strategy = crate::search::strategy_for(self.config.search.strategy);
        {
            let _span = rec.span(&format!("stage.search.{}", strategy.name()));
            let mut ctx = crate::search::SearchCtx {
                sf: self,
                selector: &selector,
                generator: &generator,
                state: &mut state,
                selector_calls_start: selector_before.calls,
            };
            strategy.search(&mut ctx)?;
        }

        let dropped_originals = if self.config.drop_heuristic {
            let _span = rec.span("stage.drop_heuristic");
            self.apply_drop_heuristic(&mut state)
        } else {
            Vec::new()
        };
        let fm_removed = if self.config.fm_feature_removal {
            let _span = rec.span("stage.fm_removal");
            self.fm_removal_pass(&mut state)?
        } else {
            Vec::new()
        };
        drop(run_span);

        let selector_after = self.selector_fm.meter().snapshot();
        let generator_after = self.generator_fm.meter().snapshot();
        let selector_usage = snapshot_delta(selector_before, selector_after);
        let generator_usage = snapshot_delta(generator_before, generator_after);
        // Cascade runs expose per-backend routing stats; merge the two
        // roles' deltas into one map (empty for single-model runs).
        let routing = crate::routing::merge_routing(
            crate::routing::routing_delta(&selector_routing_before, &self.selector_fm.routing()),
            crate::routing::routing_delta(&generator_routing_before, &self.generator_fm.routing()),
        );

        let metrics = self.finish_observability(
            &rec,
            &state,
            &dropped_originals,
            &fm_removed,
            &selector_usage,
            &generator_usage,
            &routing,
            pool_before,
            work_before,
        )?;

        Ok(SmartFeatReport {
            frame: state.frame,
            generated: state.generated,
            skipped: state.skipped,
            dropped_originals,
            fm_removed,
            source_suggestions: state.source_suggestions,
            agenda: state.agenda,
            selector_usage,
            generator_usage,
            metrics,
        })
    }

    /// Close out telemetry for the run: bridge the exact FM-meter deltas
    /// and pool/work counters into the recorder, derive per-family outcome
    /// stats from the report state, then write the trace / metrics
    /// artifacts the config asks for. Returns the metrics report.
    #[allow(clippy::too_many_arguments)]
    fn finish_observability(
        &self,
        rec: &Recorder,
        state: &RunState,
        dropped_originals: &[String],
        fm_removed: &[String],
        selector_usage: &smartfeat_fm::UsageSnapshot,
        generator_usage: &smartfeat_fm::UsageSnapshot,
        routing: &smartfeat_fm::RoutingSnapshot,
        pool_before: smartfeat_par::PoolStats,
        work_before: std::collections::BTreeMap<String, smartfeat_obs::global::WorkStat>,
    ) -> Result<Option<smartfeat_frame::json::JsonValue>> {
        if !rec.is_enabled() {
            return Ok(None);
        }
        // Role-level FM usage is bridged from the meters so the report's
        // `fm.total` equals the `crates/fm` accounting exactly. Per-family
        // attribution accumulates separately under `families.<name>.fm`.
        rec.set_fm_usage("selector", crate::fm_usage_of_snapshot(selector_usage));
        rec.set_fm_usage("generator", crate::fm_usage_of_snapshot(generator_usage));
        if !routing.is_empty() {
            rec.set_routing(
                routing
                    .iter()
                    .map(|(name, s)| {
                        (
                            name.clone(),
                            smartfeat_obs::RouteUsage {
                                calls: s.calls as u64,
                                escalations: s.escalations as u64,
                                prompt_tokens: s.prompt_tokens as u64,
                                completion_tokens: s.completion_tokens as u64,
                                cost_usd: s.cost_usd,
                            },
                        )
                    })
                    .collect(),
            );
        }

        let pool_delta = smartfeat_par::pool_stats().since(&pool_before);
        rec.set_pool(PoolCounters {
            batches: pool_delta.batches,
            tasks: pool_delta.tasks,
            workers_spawned: pool_delta.workers_spawned,
        });
        rec.set_work(smartfeat_obs::global::delta(
            &work_before,
            &smartfeat_obs::global::snapshot(),
        ));

        for s in &state.skipped {
            rec.family(s.family.name(), |f| {
                f.skipped += 1;
                if s.reason.is_generation_error() {
                    f.generation_errors += 1;
                }
            });
        }
        rec.incr("features.generated", state.generated.len() as u64);
        rec.incr("features.skipped", state.skipped.len() as u64);
        rec.incr("features.dropped_originals", dropped_originals.len() as u64);
        rec.incr("features.fm_removed", fm_removed.len() as u64);
        rec.incr(
            "features.source_suggestions",
            state.source_suggestions.len() as u64,
        );

        if let Some(path) = &self.config.observability.trace_out {
            std::fs::write(path, rec.trace_jsonl()).map_err(|e| {
                crate::error::CoreError::Io(format!("writing trace to {path}: {e}"))
            })?;
        }
        let report = rec.report();
        if let Some(path) = &self.config.observability.metrics_out {
            let mut text = report.emit();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| {
                crate::error::CoreError::Io(format!("writing metrics to {path}: {e}"))
            })?;
        }
        Ok(Some(report))
    }

    /// Realize a batch of candidates: generate each function, execute it,
    /// filter the resulting column(s), and attach survivors. Returns, per
    /// candidate, whether at least one column was kept.
    pub(crate) fn realize_batch(
        &self,
        generator: &FunctionGenerator,
        state: &mut RunState,
        cands: &[Candidate],
    ) -> Result<Vec<bool>> {
        Ok(self
            .realize_batch_kept(generator, state, cands)?
            .into_iter()
            .map(|names| !names.is_empty())
            .collect())
    }

    /// Like [`SmartFeat::realize_batch`], but returns the kept column
    /// names per candidate so score-guided strategies (beam, evolutionary)
    /// can evaluate and prune exactly what each candidate contributed.
    ///
    /// Three stages keep the output bit-identical for every thread count:
    ///
    /// 1. **Serial FM walk** in candidate order — one generation
    ///    round-trip per candidate, with FM-backed transforms (row
    ///    completion) executed inline, so the generator FM's call sequence
    ///    is a pure function of the candidate list and the oracle's state
    ///    machine never observes the thread count.
    /// 2. **Parallel pure transforms** — the remaining functions touch no
    ///    FM and read only columns that predate the batch, so they run
    ///    concurrently on the pool against the frame as it stood at batch
    ///    start. Transforms read through the frame's zero-copy column
    ///    views (`NumericView` / `KeysView`) instead of materialising
    ///    per-candidate copies of the input columns.
    /// 3. **Serial in-order commit** — filtering and attachment walk the
    ///    candidates in order against the live frame, so duplicate
    ///    detection sees earlier batch survivors exactly as a serial
    ///    pipeline would, and report/agenda order never changes.
    pub(crate) fn realize_batch_kept(
        &self,
        generator: &FunctionGenerator,
        state: &mut RunState,
        cands: &[Candidate],
    ) -> Result<Vec<Vec<String>>> {
        let threads = smartfeat_par::resolve_threads(self.config.threads);

        // Stage 1: serial FM walk.
        let fm_walk_span = state.rec.span("realize.fm_walk");
        let mut staged: Vec<Staged> = Vec::with_capacity(cands.len());
        let mut pure: Vec<(usize, TransformFunction)> = Vec::new();
        for (i, cand) in cands.iter().enumerate() {
            state.rec.family(cand.family.name(), |f| f.candidates += 1);
            let generated = match generator.generate(&state.agenda, cand) {
                Ok(g) => g,
                Err(crate::error::CoreError::InvalidTransform(msg))
                | Err(crate::error::CoreError::RowCompletionUnavailable(msg)) => {
                    state.skipped.push(SkippedFeature {
                        name: cand.name.clone(),
                        family: cand.family,
                        reason: SkipReason::GenerationFailed(msg),
                    });
                    staged.push(Staged::Rejected);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let func = match generated {
                Generated::Function(f) => f,
                Generated::SourceSuggestion(src) => {
                    state
                        .source_suggestions
                        .push((cand.name.clone(), src.clone()));
                    state.skipped.push(SkippedFeature {
                        name: cand.name.clone(),
                        family: cand.family,
                        reason: SkipReason::SourceOnly(src),
                    });
                    staged.push(Staged::Rejected);
                    continue;
                }
            };
            if func.needs_fm() {
                staged.push(
                    match transform::apply(
                        &func,
                        &state.frame,
                        &cand.name,
                        Some(self.generator_fm),
                        self.config.row_completion_max_distinct,
                    ) {
                        Ok(columns) => Staged::Ready { func, columns },
                        Err(e) => Staged::Failed(e.to_string()),
                    },
                );
            } else {
                staged.push(Staged::Pending);
                pure.push((i, func));
            }
        }
        drop(fm_walk_span);

        // Stage 2: parallel pure transforms. No events are emitted from
        // the pool closures — only the span around the whole stage, from
        // this serial frame (see the obs determinism contract).
        let transforms_span = state.rec.span("realize.transforms");
        let frame = &state.frame;
        let max_distinct = self.config.row_completion_max_distinct;
        let applied = smartfeat_par::par_map_indexed(threads, pure.len(), |j| {
            let (i, func) = &pure[j];
            transform::apply(func, frame, &cands[*i].name, None, max_distinct)
        });
        for ((i, func), result) in pure.into_iter().zip(applied) {
            staged[i] = match result {
                Ok(columns) => Staged::Ready { func, columns },
                Err(e) => Staged::Failed(e.to_string()),
            };
        }
        drop(transforms_span);

        // Stage 3: serial in-order filter and commit.
        let commit_span = state.rec.span("realize.commit");
        let mut accepted: Vec<Vec<String>> = Vec::with_capacity(cands.len());
        for (cand, slot) in cands.iter().zip(staged) {
            let (func, columns) = match slot {
                Staged::Rejected => {
                    accepted.push(Vec::new());
                    continue;
                }
                // sfcheck:allow(panic-hygiene, panic-reachability) invariant: the loop above resolves every Pending
                Staged::Pending => unreachable!("stage 2 fills every pending slot"),
                Staged::Failed(msg) => {
                    state.skipped.push(SkippedFeature {
                        name: cand.name.clone(),
                        family: cand.family,
                        reason: SkipReason::TransformFailed(msg),
                    });
                    accepted.push(Vec::new());
                    continue;
                }
                Staged::Ready { func, columns } => (func, columns),
            };
            let mut kept: Vec<String> = Vec::new();
            for col in columns {
                if self.config.feature_filter {
                    let eval_span = state.rec.span("stage.evaluate");
                    let verdict = check_new_column_threaded(
                        &col,
                        &state.frame,
                        self.config.max_null_fraction,
                        threads,
                    );
                    drop(eval_span);
                    if let Some(reason) = verdict {
                        // sfcheck:allow(determinism-taint) the verdict is thread-count-independent: the differential suite pins identical output across SMARTFEAT_THREADS
                        state.rec.event(
                            "candidate.skipped",
                            &[
                                ("family", cand.family.name().into()),
                                ("name", col.name().into()),
                                ("reason", reason.tag().into()),
                            ],
                        );
                        state.skipped.push(SkippedFeature {
                            name: col.name().to_string(),
                            family: cand.family,
                            reason,
                        });
                        continue;
                    }
                } else if state.frame.has_column(col.name()) {
                    state.skipped.push(SkippedFeature {
                        name: col.name().to_string(),
                        family: cand.family,
                        reason: SkipReason::Duplicate(col.name().to_string()),
                    });
                    continue;
                }
                let name = col.name().to_string();
                let dtype = col.dtype().name().to_string();
                let distinct = col.cardinality();
                state.rec.event(
                    "candidate.kept",
                    &[
                        ("family", cand.family.name().into()),
                        ("name", name.as_str().into()),
                    ],
                );
                state.frame.add_column(col)?;
                state.agenda.push_generated(
                    &name,
                    &dtype,
                    Some(distinct),
                    &cand.description,
                    cand.family,
                );
                state.generated.push(GeneratedFeature {
                    name: name.clone(),
                    family: cand.family,
                    columns: cand.columns.clone(),
                    description: cand.description.clone(),
                    transform: format!("{func:?}"),
                });
                kept.push(name);
            }
            if !kept.is_empty() {
                state.rec.family(cand.family.name(), |f| f.accepted += 1);
            }
            accepted.push(kept);
        }
        drop(commit_span);
        Ok(accepted)
    }

    /// EXTENSION (paper §5 future work): ask the FM which features are
    /// unlikely to help, and remove the ones it names. The target column
    /// and anything the FM hallucinates are ignored.
    fn fm_removal_pass(&self, state: &mut RunState) -> Result<Vec<String>> {
        let prompt = crate::prompts::feature_removal(&state.agenda);
        let response = self
            .selector_fm
            .complete(&prompt)
            .map_err(crate::error::CoreError::from)?;
        let text = response.text.trim();
        if text.eq_ignore_ascii_case("none") {
            return Ok(Vec::new());
        }
        let mut removed = Vec::new();
        for name in text.split(',').map(str::trim) {
            if name.is_empty() || name == state.agenda.target {
                continue;
            }
            if state.agenda.has(name) && state.frame.drop_column(name).is_ok() {
                state.agenda.remove(name);
                // Keep the report consistent: a removed column must not be
                // listed as a kept generated feature.
                state.generated.retain(|g| g.name != name);
                removed.push(name.to_string());
            }
        }
        Ok(removed)
    }

    /// Drop heuristic (paper §3.2): an original feature that was unary
    /// transformed and is used by no other operator is removed.
    fn apply_drop_heuristic(&self, state: &mut RunState) -> Vec<String> {
        let mut dropped = Vec::new();
        let originals = state.agenda.original_names();
        for name in originals {
            if state.unary_transformed.contains(&name)
                && !state.referenced.contains(&name)
                && state.frame.drop_column(&name).is_ok()
            {
                state.agenda.remove(&name);
                dropped.push(name);
            }
        }
        dropped
    }
}

fn snapshot_delta(
    before: smartfeat_fm::UsageSnapshot,
    after: smartfeat_fm::UsageSnapshot,
) -> smartfeat_fm::UsageSnapshot {
    smartfeat_fm::UsageSnapshot {
        calls: after.calls - before.calls,
        prompt_tokens: after.prompt_tokens - before.prompt_tokens,
        completion_tokens: after.completion_tokens - before.completion_tokens,
        cost_usd: after.cost_usd - before.cost_usd,
        latency: after.latency.saturating_sub(before.latency),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OperatorFamily, OperatorMask};
    use smartfeat_fm::{FmConfig, ModelSpec, SimulatedFm};
    use smartfeat_frame::Column;

    /// The paper's Table 1 insurance example, expanded to enough rows for
    /// meaningful group-bys.
    fn insurance() -> (DataFrame, DataAgenda) {
        let n = 40usize;
        let cities = ["SF", "LA", "SEA"];
        let models = ["Civic", "Corolla", "Mustang", "Cruze", "X5", "Golf"];
        let mut age = Vec::new();
        let mut car_age = Vec::new();
        let mut city = Vec::new();
        let mut model = Vec::new();
        let mut claim = Vec::new();
        let mut safe = Vec::new();
        for i in 0..n {
            age.push(18 + ((i * 7) % 50) as i64);
            car_age.push(1 + ((i * 3) % 15) as i64);
            city.push(cities[i % 3]);
            model.push(models[i % 6]);
            let c = i64::from(i % 4 == 0);
            claim.push(c);
            safe.push(1 - c);
        }
        let df = DataFrame::from_columns(vec![
            Column::from_i64("Age", age),
            Column::from_i64("Age_of_car", car_age),
            Column::from_str_slice("Make_Model", &model),
            Column::from_i64("Claim", claim),
            Column::from_str_slice("City", &city),
            Column::from_i64("Safe", safe),
        ])
        .unwrap();
        let agenda = DataAgenda::from_frame(
            &df,
            &[
                ("Age", "Age of the policyholder in years"),
                ("Age_of_car", "Age of the insured car in years"),
                ("Make_Model", "Make and model of the car"),
                ("Claim", "Whether a claim was filed in the last 6 months"),
                ("City", "City where the policyholder lives"),
            ],
            "Safe",
            "RF",
        );
        (df, agenda)
    }

    fn run_default(seed: u64) -> SmartFeatReport {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::gpt4(seed);
        let gen = SimulatedFm::gpt35(seed.wrapping_add(1));
        let sf = SmartFeat::new(&sel, &gen, SmartFeatConfig::default());
        sf.run(&df, &agenda).unwrap()
    }

    #[test]
    fn generates_the_papers_motivating_features() {
        let r = run_default(42);
        let names = r.new_feature_names().join(",");
        // F1: bucketized age.
        assert!(names.contains("Bucketized_Age"), "{names}");
        // F2: manufacturing year (years_since on car age).
        assert!(names.contains("YearsSince_Age_of_car"), "{names}");
        // F4: city population density via row completion.
        assert!(names.contains("population_density"), "{names}");
        // F3-style: at least one group-by feature.
        assert!(names.contains("GroupBy_"), "{names}");
    }

    #[test]
    fn report_is_consistent_with_frame() {
        let r = run_default(1);
        for g in &r.generated {
            assert!(
                r.frame.has_column(&g.name),
                "generated {} missing from frame",
                g.name
            );
            assert!(
                r.agenda.has(&g.name),
                "generated {} missing from agenda",
                g.name
            );
        }
        assert_eq!(r.frame.n_rows(), 40);
        // No duplicate names.
        let mut names: Vec<&str> = r.frame.column_names();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_default(9);
        let b = run_default(9);
        assert_eq!(a.new_feature_names(), b.new_feature_names());
        assert_eq!(a.selector_usage.calls, b.selector_usage.calls);
    }

    #[test]
    fn operator_mask_restricts_families() {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::gpt4(5);
        let gen = SimulatedFm::gpt35(6);
        let cfg = SmartFeatConfig {
            operators: OperatorMask::only(crate::config::OperatorFamily::HighOrder),
            ..SmartFeatConfig::default()
        };
        let r = SmartFeat::new(&sel, &gen, cfg).run(&df, &agenda).unwrap();
        assert!(!r.generated.is_empty());
        for g in &r.generated {
            assert_eq!(g.family, OperatorFamily::HighOrder);
        }
        assert_eq!(
            r.generator_usage.calls, 0,
            "high-order functions are built without FM round-trips"
        );
    }

    #[test]
    fn initial_mask_generates_nothing() {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::gpt4(5);
        let gen = SimulatedFm::gpt35(6);
        let cfg = SmartFeatConfig {
            operators: OperatorMask::none(),
            ..SmartFeatConfig::default()
        };
        let r = SmartFeat::new(&sel, &gen, cfg).run(&df, &agenda).unwrap();
        assert!(r.generated.is_empty());
        assert_eq!(r.selector_usage.calls, 0);
        assert_eq!(r.frame.n_cols(), df.n_cols());
    }

    #[test]
    fn error_threshold_stops_sampling_under_degraded_fm() {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 2,
                error_rate: 1.0,
                ..FmConfig::default()
            },
        );
        let gen = SimulatedFm::gpt35(3);
        let cfg = SmartFeatConfig {
            operators: OperatorMask::only(crate::config::OperatorFamily::Binary),
            error_threshold: 3,
            sampling_budget: 50,
            ..SmartFeatConfig::default()
        };
        let r = SmartFeat::new(&sel, &gen, cfg).run(&df, &agenda).unwrap();
        // Sampling must have stopped well before the budget: with every
        // output degraded, errors accumulate fast.
        assert!(
            r.selector_usage.calls < 50,
            "made {} calls",
            r.selector_usage.calls
        );
        assert!(r.generation_errors() >= 3 || r.generated.is_empty());
    }

    #[test]
    fn drop_heuristic_removes_superseded_originals() {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::gpt4(7);
        let gen = SimulatedFm::gpt35(8);
        let cfg = SmartFeatConfig {
            // Unary only: nothing can reference the originals afterwards,
            // so every unary-transformed original should be dropped.
            operators: OperatorMask::only(crate::config::OperatorFamily::Unary),
            ..SmartFeatConfig::default()
        };
        let r = SmartFeat::new(&sel, &gen, cfg).run(&df, &agenda).unwrap();
        assert!(!r.dropped_originals.is_empty());
        for d in &r.dropped_originals {
            assert!(!r.frame.has_column(d));
            assert!(!r.agenda.has(d));
        }
        // Target column is never dropped.
        assert!(r.frame.has_column("Safe"));
    }

    #[test]
    fn drop_heuristic_can_be_disabled() {
        let (df, agenda) = insurance();
        let sel = SimulatedFm::gpt4(7);
        let gen = SimulatedFm::gpt35(8);
        let cfg = SmartFeatConfig {
            drop_heuristic: false,
            ..SmartFeatConfig::default()
        };
        let r = SmartFeat::new(&sel, &gen, cfg).run(&df, &agenda).unwrap();
        assert!(r.dropped_originals.is_empty());
        for name in df.column_names() {
            assert!(r.frame.has_column(name));
        }
    }

    #[test]
    fn usage_is_attributed_to_roles() {
        let r = run_default(11);
        assert!(r.selector_usage.calls > 0, "selector made FM calls");
        assert!(
            r.generator_usage.calls > 0,
            "generator made FM calls (incl. row completion)"
        );
        assert!(r.total_usage().cost_usd > 0.0);
    }

    #[test]
    fn names_only_agenda_still_runs_but_finds_less() {
        let (df, agenda) = insurance();
        let sel_full = SimulatedFm::gpt4(13);
        let gen_full = SimulatedFm::gpt35(14);
        let full = SmartFeat::new(&sel_full, &gen_full, SmartFeatConfig::default())
            .run(&df, &agenda)
            .unwrap();
        let sel_bare = SimulatedFm::gpt4(13);
        let gen_bare = SimulatedFm::gpt35(14);
        let bare = SmartFeat::new(&sel_bare, &gen_bare, SmartFeatConfig::default())
            .run(&df, &agenda.without_descriptions())
            .unwrap();
        // Names in this dataset are fairly descriptive, so both run; the
        // stripped agenda must not generate *more* features.
        assert!(bare.generated.len() <= full.generated.len());
    }
}
