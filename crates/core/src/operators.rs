//! Candidate features: what the operator selector hands to the function
//! generator.

use smartfeat_frame::ops::{AggFunc, BinaryOp};

use crate::config::OperatorFamily;

/// Operator-specific payload of a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorSpec {
    /// A unary operator chosen by the proposal strategy.
    Unary {
        /// Operator name from the FM proposal (`bucketize`, `normalize`, …).
        op: String,
    },
    /// A binary arithmetic combination.
    Binary {
        /// The arithmetic operator.
        op: BinaryOp,
    },
    /// GroupbyThenAgg.
    HighOrder {
        /// Group-key columns.
        group_cols: Vec<String>,
        /// Aggregated column.
        agg_col: String,
        /// Aggregation function.
        func: AggFunc,
    },
    /// A weighted combination of several attributes.
    WeightedIndex {
        /// Component weights aligned with the candidate's columns.
        weights: Vec<f64>,
        /// Standardize components before combining.
        normalize: bool,
    },
    /// A per-unit ratio (extractor flavor of division).
    PerUnit,
    /// External knowledge lookup (no closed-form function).
    ExternalLookup {
        /// Knowledge table identifier (e.g. `city_population_density`).
        knowledge: String,
    },
}

/// One candidate feature: name, inputs, description and how to compute it.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Feature name (paper naming: `OpName_OrgAttr`, `GroupBy_…`, `A_op_B`).
    pub name: String,
    /// Relevant (input) columns.
    pub columns: Vec<String>,
    /// Natural-language description (flows into the data agenda).
    pub description: String,
    /// Operator payload.
    pub spec: OperatorSpec,
    /// Which family produced it.
    pub family: OperatorFamily,
}

impl Candidate {
    /// The operator hint embedded in the function-generation prompt.
    pub fn hint(&self) -> String {
        match &self.spec {
            OperatorSpec::Unary { op } => op.clone(),
            OperatorSpec::Binary { .. } => "arithmetic".into(),
            OperatorSpec::HighOrder { .. } => "groupby".into(),
            OperatorSpec::WeightedIndex { .. } => "weighted_index".into(),
            OperatorSpec::PerUnit => "per_unit".into(),
            OperatorSpec::ExternalLookup { .. } => "external_lookup".into(),
        }
    }

    /// Arithmetic symbol for binary candidates.
    pub fn arithmetic_op(&self) -> Option<&'static str> {
        match &self.spec {
            OperatorSpec::Binary { op } => Some(op.symbol()),
            _ => None,
        }
    }

    /// Aggregate function name for high-order candidates.
    pub fn agg_function(&self) -> Option<&'static str> {
        match &self.spec {
            OperatorSpec::HighOrder { func, .. } => Some(func.name()),
            _ => None,
        }
    }

    /// Weights as CSV for weighted-index candidates.
    pub fn weights_csv(&self) -> Option<String> {
        match &self.spec {
            OperatorSpec::WeightedIndex { weights, .. } => Some(
                weights
                    .iter()
                    .map(|w| format!("{w}"))
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            _ => None,
        }
    }

    /// Knowledge table for external-lookup candidates.
    pub fn knowledge_source(&self) -> Option<&str> {
        match &self.spec {
            OperatorSpec::ExternalLookup { knowledge } => Some(knowledge),
            _ => None,
        }
    }

    /// A dedup key: candidates producing the same feature are duplicates
    /// regardless of the descriptions the FM attached.
    pub fn dedup_key(&self) -> String {
        match &self.spec {
            OperatorSpec::Unary { op } => format!("u:{}:{}", op, self.columns.join(",")),
            OperatorSpec::Binary { op } => {
                let mut cols = self.columns.clone();
                if !op.is_ordered() {
                    cols.sort();
                }
                format!("b:{}:{}", op.token(), cols.join(","))
            }
            OperatorSpec::HighOrder {
                group_cols,
                agg_col,
                func,
            } => {
                let mut g = group_cols.clone();
                g.sort();
                format!("h:{}:{}:{}", g.join("+"), func.name(), agg_col)
            }
            OperatorSpec::WeightedIndex { .. } => format!("w:{}", self.columns.join(",")),
            OperatorSpec::PerUnit => format!("p:{}", self.columns.join(",")),
            OperatorSpec::ExternalLookup { knowledge } => {
                format!("e:{}:{}", knowledge, self.columns.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(cols: &[&str], op: BinaryOp) -> Candidate {
        Candidate {
            name: "x".into(),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
            spec: OperatorSpec::Binary { op },
            family: OperatorFamily::Binary,
        }
    }

    #[test]
    fn commutative_ops_dedup_regardless_of_order() {
        let a = binary(&["A", "B"], BinaryOp::Add);
        let b = binary(&["B", "A"], BinaryOp::Add);
        assert_eq!(a.dedup_key(), b.dedup_key());
        let c = binary(&["A", "B"], BinaryOp::Sub);
        let d = binary(&["B", "A"], BinaryOp::Sub);
        assert_ne!(c.dedup_key(), d.dedup_key());
    }

    #[test]
    fn highorder_dedup_ignores_group_order() {
        let mk = |g: Vec<&str>| Candidate {
            name: "x".into(),
            columns: vec![],
            description: String::new(),
            spec: OperatorSpec::HighOrder {
                group_cols: g.iter().map(|s| s.to_string()).collect(),
                agg_col: "v".into(),
                func: AggFunc::Mean,
            },
            family: OperatorFamily::HighOrder,
        };
        assert_eq!(
            mk(vec!["a", "b"]).dedup_key(),
            mk(vec!["b", "a"]).dedup_key()
        );
    }

    #[test]
    fn hints_cover_all_specs() {
        assert_eq!(binary(&["A", "B"], BinaryOp::Mul).hint(), "arithmetic");
        let u = Candidate {
            name: "n".into(),
            columns: vec!["c".into()],
            description: String::new(),
            spec: OperatorSpec::Unary {
                op: "bucketize".into(),
            },
            family: OperatorFamily::Unary,
        };
        assert_eq!(u.hint(), "bucketize");
        assert_eq!(u.arithmetic_op(), None);
    }

    #[test]
    fn weights_csv_renders() {
        let w = Candidate {
            name: "idx".into(),
            columns: vec!["a".into(), "b".into()],
            description: String::new(),
            spec: OperatorSpec::WeightedIndex {
                weights: vec![1.0, -1.0],
                normalize: true,
            },
            family: OperatorFamily::Extractor,
        };
        assert_eq!(w.weights_csv().unwrap(), "1,-1");
    }
}
