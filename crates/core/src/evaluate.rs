//! Feature evaluation (paper Section 3.3, "Evaluating generated features"):
//! a verification mechanism that rejects low-quality generated columns —
//! highly null, single-valued, or duplicating an existing column.
//! (High-cardinality dummy expansion is rejected earlier, at transform
//! execution, by the cardinality guard.)

use smartfeat_frame::{Column, DataFrame};

use crate::report::SkipReason;

/// Check one freshly-generated column against the frame it would join.
/// Returns the reason to skip it, or `None` if it passes.
pub fn check_new_column(
    col: &Column,
    df: &DataFrame,
    max_null_fraction: f64,
) -> Option<SkipReason> {
    check_new_column_threaded(col, df, max_null_fraction, 1)
}

/// [`check_new_column`] with an explicit thread count for the duplicate
/// scan (0 = auto, 1 = exact serial path). The scan compares the candidate
/// against every existing column; columns are independent, so the pool
/// splits them and the **lowest-index** match is reported — the same
/// verdict the serial left-to-right scan returns.
pub fn check_new_column_threaded(
    col: &Column,
    df: &DataFrame,
    max_null_fraction: f64,
    threads: usize,
) -> Option<SkipReason> {
    let null_fraction = col.null_fraction();
    if null_fraction > max_null_fraction {
        return Some(SkipReason::HighNull(null_fraction));
    }
    if col.is_constant() {
        return Some(SkipReason::SingleValued);
    }
    if df.has_column(col.name()) {
        return Some(SkipReason::Duplicate(col.name().to_string()));
    }
    // A column that is an exact or affine duplicate of an existing one
    // adds no information (identity transforms, min-max/z-score rescales
    // of a column that is still present) — it only double-counts evidence
    // for models like naive Bayes.
    let existing = df.columns();
    let threads = smartfeat_par::resolve_threads(threads);
    smartfeat_par::par_map_indexed(threads, existing.len(), |i| duplicate_of(col, &existing[i]))
        .into_iter()
        .flatten()
        .next()
}

/// Is `col` an exact or positive-affine duplicate of `existing`?
fn duplicate_of(col: &Column, existing: &Column) -> Option<SkipReason> {
    if columns_identical(col, existing) {
        return Some(SkipReason::Duplicate(existing.name().to_string()));
    }
    // Positive-affine rescales of a surviving column (min-max / z-score
    // copies) only double-count evidence; r = +1 with ≥ 3 overlapping
    // points identifies them. Negative-affine derivations (e.g. the
    // paper's manufacturing year = 2024 − car age) re-express the
    // quantity on a meaningful scale and are kept, as the paper does.
    if existing.is_numeric() && col.is_numeric() {
        let a = col.to_f64();
        let b = existing.to_f64();
        let complete = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.is_some() && y.is_some())
            .count();
        if complete >= 3 {
            if let Some(r) = smartfeat_frame::stats::pearson(&a, &b) {
                if r > 0.9999 {
                    return Some(SkipReason::Duplicate(existing.name().to_string()));
                }
            }
        }
    }
    None
}

/// Value-level equality of two columns (nulls align, values render equal).
fn columns_identical(a: &Column, b: &Column) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for i in 0..a.len() {
        match (a.is_null(i), b.is_null(i)) {
            (true, true) => continue,
            (false, false) => {
                // Compare numerically when both are numeric to catch
                // Int-vs-Float storage of the same values.
                let av = a.get(i);
                let bv = b.get(i);
                let equal = match (av.as_f64(), bv.as_f64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => av.render() == bv.render(),
                };
                if !equal {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_frame::DataFrame;

    fn base() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_i64("a", vec![1, 2, 3, 4]),
            Column::from_f64("b", vec![0.5, 1.0, 1.5, 2.0]),
        ])
        .unwrap()
    }

    #[test]
    fn passes_a_good_column() {
        let c = Column::from_f64("new", vec![9.0, 1.0, 7.0, 3.0]);
        assert_eq!(check_new_column(&c, &base(), 0.5), None);
    }

    #[test]
    fn rejects_positive_affine_duplicate_keeps_negated() {
        // 2x + 1 of column "a": same information, rescaled.
        let c = Column::from_f64("a_scaled", vec![3.0, 5.0, 7.0, 9.0]);
        assert!(matches!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::Duplicate(n)) if n == "a"
        ));
        // 2024 − a (the paper's F2 shape): kept.
        let f2 = Column::from_f64("year", vec![2023.0, 2022.0, 2021.0, 2020.0]);
        assert_eq!(check_new_column(&f2, &base(), 0.5), None);
    }

    #[test]
    fn rejects_high_null() {
        let c = Column::from_floats("new", vec![Some(1.0), None, None, None]);
        assert!(matches!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::HighNull(f)) if f == 0.75
        ));
    }

    #[test]
    fn rejects_constant() {
        let c = Column::from_i64("new", vec![7, 7, 7, 7]);
        assert_eq!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::SingleValued)
        );
    }

    #[test]
    fn rejects_name_clash() {
        let c = Column::from_f64("a", vec![9.0, 8.0, 7.0, 6.0]);
        assert!(matches!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::Duplicate(n)) if n == "a"
        ));
    }

    #[test]
    fn rejects_value_duplicate_across_storage_types() {
        // Same values as integer column "a" but stored as floats.
        let c = Column::from_f64("a_copy", vec![1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::Duplicate(n)) if n == "a"
        ));
    }

    #[test]
    fn null_alignment_matters_for_duplicates() {
        let df = DataFrame::from_columns(vec![Column::from_floats(
            "x",
            vec![Some(1.0), None, Some(3.0)],
        )])
        .unwrap();
        let same = Column::from_floats("y", vec![Some(1.0), None, Some(3.0)]);
        assert!(matches!(
            check_new_column(&same, &df, 0.5),
            Some(SkipReason::Duplicate(_))
        ));
        // Only two overlapping pairs with "x": too little evidence for the
        // affine-duplicate check, so the column passes.
        let different = Column::from_floats("z", vec![Some(1.0), Some(9.0), Some(2.0)]);
        assert_eq!(check_new_column(&different, &df, 0.5), None);
    }

    #[test]
    fn threaded_scan_reports_lowest_index_duplicate() {
        // Two existing columns both duplicate the candidate; the verdict
        // must name the leftmost one regardless of worker scheduling.
        let df = DataFrame::from_columns(vec![
            Column::from_i64("first", vec![1, 2, 3, 4]),
            Column::from_i64("second", vec![1, 2, 3, 4]),
        ])
        .unwrap();
        let c = Column::from_i64("copy", vec![1, 2, 3, 4]);
        for threads in [1usize, 2, 4, 8] {
            assert!(matches!(
                check_new_column_threaded(&c, &df, 0.5, threads),
                Some(SkipReason::Duplicate(n)) if n == "first"
            ));
        }
    }

    #[test]
    fn all_null_column_rejected_as_high_null() {
        let c = Column::from_floats("new", vec![None, None, None, None]);
        assert!(matches!(
            check_new_column(&c, &base(), 0.5),
            Some(SkipReason::HighNull(_))
        ));
    }
}
