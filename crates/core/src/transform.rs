//! Executable transformation functions — what the function generator emits
//! instead of the Python lambdas of the original system.
//!
//! A [`TransformFunction`] is a closed description of a dataframe
//! transformation; [`apply`] executes it against a frame. The one
//! exception is [`TransformFunction::RowCompletion`], which has no closed
//! form and must consult the FM — with a distinct-value cache so the number
//! of FM calls is bounded by the key cardinality, not the row count
//! (the feature-level efficiency the paper's Figure 1 argues for).

use smartfeat_fm::FoundationModel;
use smartfeat_frame::ops::{
    binary_op, bucketize, date_part, frequency_encode, get_dummies, groupby_transform, normalize,
    unary_map, AggFunc, BinaryOp, DatePart, NormKind, UnaryFn,
};
use smartfeat_frame::{Column, DataFrame, KeysView, StableMap};

use crate::error::{CoreError, Result};
use crate::prompts;

/// Bucket boundaries: explicit, or data-derived quartiles.
#[derive(Debug, Clone, PartialEq)]
pub enum Boundaries {
    /// Explicit ascending boundaries from domain knowledge.
    Given(Vec<f64>),
    /// Derive quartile boundaries from the column at execution time.
    Auto,
}

/// The transformation vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformFunction {
    /// Bucketize one numeric column.
    Bucketize {
        /// Input column.
        col: String,
        /// Boundaries.
        boundaries: Boundaries,
    },
    /// Normalize one numeric column.
    Normalize {
        /// Input column.
        col: String,
        /// Min-max or z-score.
        kind: NormKind,
    },
    /// Elementwise unary map.
    UnaryMap {
        /// Input column.
        col: String,
        /// Function.
        func: UnaryFn,
    },
    /// `scale * x + offset` (e.g. manufacturing year = 2024 − car age).
    Affine {
        /// Input column.
        col: String,
        /// Multiplier.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
    /// One-hot dummies.
    Dummies {
        /// Input column.
        col: String,
        /// Cardinality guard.
        limit: usize,
    },
    /// Frequency encoding: each value maps to its occurrence fraction —
    /// the high-cardinality alternative to dummies.
    FrequencyEncode {
        /// Input column.
        col: String,
    },
    /// Date splitting into parts.
    DateSplit {
        /// Input column (string dates).
        col: String,
        /// Parts to extract.
        parts: Vec<DatePart>,
    },
    /// Binary arithmetic between two columns.
    Arithmetic {
        /// Left column.
        left: String,
        /// Right column.
        right: String,
        /// Operator.
        op: BinaryOp,
    },
    /// GroupbyThenAgg.
    GroupbyAgg {
        /// Group-key columns.
        group_cols: Vec<String>,
        /// Aggregated column.
        agg_col: String,
        /// Aggregation function.
        func: AggFunc,
    },
    /// Weighted combination of several columns, optionally standardized.
    WeightedIndex {
        /// Component columns.
        cols: Vec<String>,
        /// Weights aligned with `cols`.
        weights: Vec<f64>,
        /// Z-score components before combining.
        normalize: bool,
    },
    /// Row-level FM completion over the distinct values of the key columns.
    RowCompletion {
        /// Key columns serialized into each completion prompt.
        key_cols: Vec<String>,
        /// Knowledge table name (for the oracle's benefit; a real model
        /// ignores it).
        knowledge: String,
    },
}

impl TransformFunction {
    /// Columns this transform reads.
    pub fn input_columns(&self) -> Vec<&str> {
        match self {
            TransformFunction::Bucketize { col, .. }
            | TransformFunction::Normalize { col, .. }
            | TransformFunction::UnaryMap { col, .. }
            | TransformFunction::Affine { col, .. }
            | TransformFunction::Dummies { col, .. }
            | TransformFunction::FrequencyEncode { col }
            | TransformFunction::DateSplit { col, .. } => vec![col],
            TransformFunction::Arithmetic { left, right, .. } => vec![left, right],
            TransformFunction::GroupbyAgg {
                group_cols,
                agg_col,
                ..
            } => {
                let mut v: Vec<&str> = group_cols.iter().map(String::as_str).collect();
                v.push(agg_col);
                v
            }
            TransformFunction::WeightedIndex { cols, .. } => {
                cols.iter().map(String::as_str).collect()
            }
            TransformFunction::RowCompletion { key_cols, .. } => {
                key_cols.iter().map(String::as_str).collect()
            }
        }
    }

    /// True if execution requires an FM handle.
    pub fn needs_fm(&self) -> bool {
        matches!(self, TransformFunction::RowCompletion { .. })
    }
}

/// Execute a transform, producing the new column(s) named `out_name`
/// (dummies derive their own suffixed names).
///
/// `fm` is only consulted for [`TransformFunction::RowCompletion`];
/// `max_distinct` bounds its key cardinality (cost guard).
pub fn apply(
    t: &TransformFunction,
    df: &DataFrame,
    out_name: &str,
    fm: Option<&dyn FoundationModel>,
    max_distinct: usize,
) -> Result<Vec<Column>> {
    for c in t.input_columns() {
        if !df.has_column(c) {
            return Err(CoreError::MissingColumn(c.to_string()));
        }
    }
    match t {
        TransformFunction::Bucketize { col, boundaries } => {
            let column = df.column(col)?;
            let bounds = match boundaries {
                Boundaries::Given(b) => b.clone(),
                Boundaries::Auto => quartiles(column)?,
            };
            Ok(vec![bucketize(column, &bounds, out_name)?])
        }
        TransformFunction::Normalize { col, kind } => {
            Ok(vec![normalize(df.column(col)?, *kind, out_name)?])
        }
        TransformFunction::UnaryMap { col, func } => {
            Ok(vec![unary_map(df.column(col)?, *func, out_name)?])
        }
        TransformFunction::Affine { col, scale, offset } => {
            let xs = df.column(col)?.numeric_view()?;
            let data = xs.iter().map(|x| x.map(|v| scale * v + offset)).collect();
            Ok(vec![Column::from_floats(out_name, data)])
        }
        TransformFunction::Dummies { col, limit } => Ok(get_dummies(df.column(col)?, *limit)?),
        TransformFunction::FrequencyEncode { col } => {
            Ok(vec![frequency_encode(df.column(col)?, out_name)?])
        }
        TransformFunction::DateSplit { col, parts } => {
            let column = df.column(col)?;
            parts
                .iter()
                .map(|p| {
                    date_part(column, *p, &format!("{}_{}", out_name, p.name()))
                        .map_err(CoreError::from)
                })
                .collect()
        }
        TransformFunction::Arithmetic { left, right, op } => Ok(vec![binary_op(
            df.column(left)?,
            df.column(right)?,
            *op,
            out_name,
        )?]),
        TransformFunction::GroupbyAgg {
            group_cols,
            agg_col,
            func,
        } => {
            let groups: Vec<&str> = group_cols.iter().map(String::as_str).collect();
            Ok(vec![groupby_transform(
                df, &groups, agg_col, *func, out_name,
            )?])
        }
        TransformFunction::WeightedIndex {
            cols,
            weights,
            normalize: do_norm,
        } => {
            if cols.len() != weights.len() {
                return Err(CoreError::InvalidTransform(format!(
                    "weighted index has {} columns but {} weights",
                    cols.len(),
                    weights.len()
                )));
            }
            if cols.is_empty() {
                return Err(CoreError::InvalidTransform(
                    "weighted index needs at least one column".into(),
                ));
            }
            let mut component_values: Vec<Vec<Option<f64>>> = Vec::with_capacity(cols.len());
            for c in cols {
                let column = df.column(c)?;
                let values = if *do_norm {
                    normalize(column, NormKind::ZScore, "tmp")?.to_f64()
                } else {
                    column.numeric()?
                };
                component_values.push(values);
            }
            let n = df.n_rows();
            let data: Vec<Option<f64>> = (0..n)
                .map(|i| {
                    let mut acc = 0.0;
                    for (vals, w) in component_values.iter().zip(weights) {
                        match vals[i] {
                            Some(v) => acc += w * v,
                            None => return None,
                        }
                    }
                    Some(acc)
                })
                .collect();
            Ok(vec![Column::from_floats(out_name, data)])
        }
        TransformFunction::RowCompletion { key_cols, .. } => {
            let fm = fm.ok_or_else(|| {
                CoreError::RowCompletionUnavailable("no foundation model handle provided".into())
            })?;
            row_completion(df, key_cols, out_name, fm, max_distinct)
        }
    }
}

/// Quartile boundaries (25/50/75 %) over the non-null values.
fn quartiles(col: &Column) -> Result<Vec<f64>> {
    let mut vals: Vec<f64> = col.numeric()?.into_iter().flatten().collect();
    if vals.is_empty() {
        return Err(CoreError::InvalidTransform(format!(
            "cannot derive boundaries for all-null column {:?}",
            col.name()
        )));
    }
    vals.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| vals[((vals.len() - 1) as f64 * f) as usize];
    // Sorted quartiles are ascending; dedup leaves a strictly-ascending,
    // possibly shorter, boundary list.
    let mut bounds = vec![q(0.25), q(0.5), q(0.75)];
    bounds.dedup();
    Ok(bounds)
}

/// Feature-level-efficient row completion: one FM call per *distinct* key
/// combination, values memoized, then broadcast to all rows.
fn row_completion(
    df: &DataFrame,
    key_cols: &[String],
    out_name: &str,
    fm: &dyn FoundationModel,
    max_distinct: usize,
) -> Result<Vec<Column>> {
    let keys: Vec<KeysView<'_>> = key_cols
        .iter()
        .map(|c| df.column(c).map(|col| col.keys_view()))
        .collect::<std::result::Result<_, _>>()?;
    let n = df.n_rows();
    let mut distinct: StableMap<Vec<String>, Option<f64>> = StableMap::new();
    let mut row_keys: Vec<Option<Vec<String>>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut key = Vec::with_capacity(key_cols.len());
        let mut has_null = false;
        for col in &keys {
            match col.get(i) {
                Some(v) => key.push(v.to_string()),
                None => {
                    has_null = true;
                    break;
                }
            }
        }
        if has_null {
            row_keys.push(None);
        } else {
            distinct.entry_or_insert_with(key.clone(), || None);
            row_keys.push(Some(key));
        }
    }
    if distinct.len() > max_distinct {
        return Err(CoreError::RowCompletionUnavailable(format!(
            "{} distinct key combinations exceed the completion budget of {max_distinct}",
            distinct.len()
        )));
    }
    // One FM call per distinct key. StableMap iterates in first-occurrence
    // order — a pure function of row data, independent of thread count, so
    // the FM-call sequence stays deterministic without the old BTreeMap's
    // per-row log-cardinality lookups.
    let ordered: Vec<Vec<String>> = distinct.keys().cloned().collect();
    for key in ordered {
        let fields: Vec<(String, String)> = key_cols
            .iter()
            .zip(&key)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let prompt = prompts::row_completion(&fields, out_name);
        let response = fm.complete(&prompt).map_err(CoreError::from)?;
        let value = response.text.trim().parse::<f64>().ok();
        distinct.insert(key, value);
    }
    let data: Vec<Option<f64>> = row_keys
        .into_iter()
        .map(|k| k.and_then(|key| distinct.get(&key).copied().flatten()))
        .collect();
    Ok(vec![Column::from_floats(out_name, data)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_fm::SimulatedFm;
    use smartfeat_frame::Value;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_i64("Age", vec![18, 22, 40, 70]),
            Column::from_i64("Age_of_car", vec![6, 2, 8, 14]),
            Column::from_str_slice("City", &["SF", "LA", "SEA", "SF"]),
            Column::from_i64("Claim", vec![1, 0, 0, 1]),
        ])
        .unwrap()
    }

    #[test]
    fn bucketize_given() {
        let t = TransformFunction::Bucketize {
            col: "Age".into(),
            boundaries: Boundaries::Given(vec![21.0, 45.0, 65.0]),
        };
        let out = apply(&t, &frame(), "Bucketized_Age", None, 64).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), Value::Int(0));
        assert_eq!(out[0].get(3), Value::Int(3));
    }

    #[test]
    fn bucketize_auto_quartiles() {
        let t = TransformFunction::Bucketize {
            col: "Age".into(),
            boundaries: Boundaries::Auto,
        };
        let out = apply(&t, &frame(), "b", None, 64).unwrap();
        // Quartiles of a 4-value column give ≥ 3 distinct buckets.
        assert!(out[0].cardinality() >= 3, "{:?}", out[0]);
        assert_eq!(out[0].null_count(), 0);
    }

    #[test]
    fn affine_manufacturing_year() {
        // The paper's F2: manufacturing year = 2024 − age of car.
        let t = TransformFunction::Affine {
            col: "Age_of_car".into(),
            scale: -1.0,
            offset: 2024.0,
        };
        let out = apply(&t, &frame(), "Manufacturing_year", None, 64).unwrap();
        assert_eq!(out[0].get(0), Value::Float(2018.0));
        assert_eq!(out[0].get(3), Value::Float(2010.0));
    }

    #[test]
    fn groupby_claim_rate_per_city() {
        let t = TransformFunction::GroupbyAgg {
            group_cols: vec!["City".into()],
            agg_col: "Claim".into(),
            func: AggFunc::Mean,
        };
        let out = apply(&t, &frame(), "GroupBy_City_mean_Claim", None, 64).unwrap();
        assert_eq!(out[0].get(0), Value::Float(1.0)); // SF: both claims
        assert_eq!(out[0].get(1), Value::Float(0.0));
    }

    #[test]
    fn weighted_index_with_nulls_propagates() {
        let df = DataFrame::from_columns(vec![
            Column::from_floats("a", vec![Some(1.0), None]),
            Column::from_f64("b", vec![2.0, 3.0]),
        ])
        .unwrap();
        let t = TransformFunction::WeightedIndex {
            cols: vec!["a".into(), "b".into()],
            weights: vec![1.0, -1.0],
            normalize: false,
        };
        let out = apply(&t, &df, "idx", None, 64).unwrap();
        assert_eq!(out[0].get(0), Value::Float(-1.0));
        assert!(out[0].is_null(1));
    }

    #[test]
    fn weighted_index_shape_checks() {
        let t = TransformFunction::WeightedIndex {
            cols: vec!["Age".into()],
            weights: vec![1.0, 2.0],
            normalize: false,
        };
        assert!(matches!(
            apply(&t, &frame(), "x", None, 64),
            Err(CoreError::InvalidTransform(_))
        ));
    }

    #[test]
    fn missing_column_rejected() {
        let t = TransformFunction::Normalize {
            col: "Nope".into(),
            kind: NormKind::MinMax,
        };
        assert!(matches!(
            apply(&t, &frame(), "x", None, 64),
            Err(CoreError::MissingColumn(_))
        ));
    }

    #[test]
    fn row_completion_resolves_city_density_with_caching() {
        // The paper's F4. 4 rows but only 3 distinct cities ⇒ 3 FM calls.
        let fm = SimulatedFm::gpt35(0);
        let t = TransformFunction::RowCompletion {
            key_cols: vec!["City".into()],
            knowledge: "city_population_density".into(),
        };
        let out = apply(&t, &frame(), "City_population_density", Some(&fm), 64).unwrap();
        assert_eq!(out[0].get(0), Value::Float(7272.0)); // SF
        assert_eq!(out[0].get(1), Value::Float(3276.0)); // LA
        assert_eq!(out[0].get(2), Value::Float(3608.0)); // SEA
        assert_eq!(out[0].get(3), Value::Float(7272.0)); // SF again, cached
        assert_eq!(fm.meter().snapshot().calls, 3, "distinct-value caching");
    }

    #[test]
    fn row_completion_requires_fm() {
        let t = TransformFunction::RowCompletion {
            key_cols: vec!["City".into()],
            knowledge: "city_population_density".into(),
        };
        assert!(matches!(
            apply(&t, &frame(), "x", None, 64),
            Err(CoreError::RowCompletionUnavailable(_))
        ));
    }

    #[test]
    fn row_completion_distinct_budget_enforced() {
        let fm = SimulatedFm::gpt35(0);
        let t = TransformFunction::RowCompletion {
            key_cols: vec!["City".into()],
            knowledge: "city_population_density".into(),
        };
        assert!(matches!(
            apply(&t, &frame(), "x", Some(&fm), 2),
            Err(CoreError::RowCompletionUnavailable(_))
        ));
        assert_eq!(fm.meter().snapshot().calls, 0, "no calls spent over budget");
    }

    #[test]
    fn dummies_and_date_split() {
        let df = DataFrame::from_columns(vec![
            Column::from_str_slice("Sex", &["M", "F"]),
            Column::from_str_slice("D", &["2020-05-04", "2021-01-01"]),
        ])
        .unwrap();
        let d = apply(
            &TransformFunction::Dummies {
                col: "Sex".into(),
                limit: 10,
            },
            &df,
            "ignored",
            None,
            64,
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        let parts = apply(
            &TransformFunction::DateSplit {
                col: "D".into(),
                parts: vec![DatePart::Year, DatePart::Month],
            },
            &df,
            "D",
            None,
            64,
        )
        .unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].name(), "D_year");
        assert_eq!(parts[0].get(0), Value::Int(2020));
    }

    #[test]
    fn input_columns_reported() {
        let t = TransformFunction::GroupbyAgg {
            group_cols: vec!["a".into(), "b".into()],
            agg_col: "v".into(),
            func: AggFunc::Max,
        };
        assert_eq!(t.input_columns(), vec!["a", "b", "v"]);
        assert!(!t.needs_fm());
        let rc = TransformFunction::RowCompletion {
            key_cols: vec!["c".into()],
            knowledge: "k".into(),
        };
        assert!(rc.needs_fm());
    }
}
