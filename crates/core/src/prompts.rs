//! Prompt templates (paper Table 2 and Section 3.3).
//!
//! Every prompt serializes the current [`crate::DataAgenda`] as its prefix,
//! then appends the operator-specific instruction. The exact phrasings are
//! load-bearing: the simulated FM dispatches on them, the same way template
//! wording steers a real model.

use crate::operators::Candidate;
use crate::schema::DataAgenda;

/// Proposal-strategy prompt for unary operators on one attribute
/// (paper Table 2, row 1).
pub fn unary_proposal(agenda: &DataAgenda, attribute: &str) -> String {
    format!(
        "{}Consider the unary operators on the attribute '{attribute}' that can generate \
         helpful features to predict {target}. List all possible appropriate operators, and \
         your confidence levels (certain/high/medium/low).\n",
        agenda.render(),
        target = agenda.target,
    )
}

/// Sampling-strategy prompt for one binary arithmetic feature.
pub fn binary_sample(agenda: &DataAgenda) -> String {
    format!(
        "{}Propose one binary arithmetic feature for predicting {target} by combining two \
         numeric attributes with one of +, -, *, /. Respond with a JSON object containing \
         \"left\", \"op\", \"right\", and \"description\".\n",
        agenda.render(),
        target = agenda.target,
    )
}

/// Sampling-strategy prompt for the high-order GroupbyThenAgg operator
/// (paper Table 2, row 2).
pub fn highorder_sample(agenda: &DataAgenda) -> String {
    format!(
        "{}Generate a groupby feature for predicting {target} by applying \
         'df.groupby(groupby_col)[agg_col].transform(function)'. Specify the groupby_col, \
         agg_col, and the aggregation function.\n",
        agenda.render(),
        target = agenda.target,
    )
}

/// Sampling-strategy prompt for extractor operators.
pub fn extractor_sample(agenda: &DataAgenda) -> String {
    format!(
        "{}Propose one extractor feature for predicting {target}: a more complex \
         transformation such as a weighted index over several attributes, a library \
         function, or information drawn from external knowledge. Respond with a JSON \
         object containing \"kind\", \"name\", \"columns\", and \"description\".\n",
        agenda.render(),
        target = agenda.target,
    )
}

/// Function-generation prompt (Section 3.3): ask for an executable
/// transformation for one selected candidate.
pub fn function_generation(agenda: &DataAgenda, candidate: &Candidate) -> String {
    let mut out = format!(
        "{}Provide an executable transformation function for the feature '{}'.\n\
         Feature name: {}\n\
         Relevant columns: {}\n\
         Feature description: {}\n\
         Operator hint: {}\n",
        agenda.render(),
        candidate.name,
        candidate.name,
        candidate.columns.join(", "),
        candidate.description,
        candidate.hint(),
    );
    if let Some(op) = candidate.arithmetic_op() {
        out.push_str(&format!("Arithmetic operator: {op}\n"));
    }
    if let Some(agg) = candidate.agg_function() {
        out.push_str(&format!("Aggregate function: {agg}\n"));
    }
    if let Some(w) = candidate.weights_csv() {
        out.push_str(&format!("Component weights: {w}\n"));
    }
    if let Some(k) = candidate.knowledge_source() {
        out.push_str(&format!("Knowledge source: {k}\n"));
    }
    out
}

/// Evolutionary-search prompt: mutate one surviving candidate into a
/// variant feature (LLM-FE-style, see PAPERS.md).
pub fn mutate_candidate(agenda: &DataAgenda, parent: &Candidate) -> String {
    format!(
        "{}Mutate the candidate feature below into a different feature for predicting \
         {target}: change one ingredient (an operand, the operator, or the aggregation) \
         while keeping what makes it useful. Respond with a JSON object tagged with a \
         \"family\" key (Binary/HighOrder/Extractor) and that family's sampling fields.\n\
         Parent family: {family}\n\
         Parent name: {name}\n\
         Parent columns: {columns}\n\
         Parent description: {description}\n",
        agenda.render(),
        target = agenda.target,
        family = parent.family.name(),
        name = parent.name,
        columns = parent.columns.join(", "),
        description = parent.description,
    )
}

/// Evolutionary-search prompt: combine two surviving candidates into one
/// offspring feature.
pub fn crossover_candidates(agenda: &DataAgenda, a: &Candidate, b: &Candidate) -> String {
    format!(
        "{}Combine the two parent features below into one offspring feature for \
         predicting {target}, inheriting ingredients from both. Respond with a JSON \
         object tagged with a \"family\" key (Binary/HighOrder/Extractor) and that \
         family's sampling fields.\n\
         Parent A family: {fa}\n\
         Parent A name: {na}\n\
         Parent A columns: {ca}\n\
         Parent B family: {fb}\n\
         Parent B name: {nb}\n\
         Parent B columns: {cb}\n",
        agenda.render(),
        target = agenda.target,
        fa = a.family.name(),
        na = a.name,
        ca = a.columns.join(", "),
        fb = b.family.name(),
        nb = b.name,
        cb = b.columns.join(", "),
    )
}

/// ReAct-strategy prompt: show the observation from the last turn and ask
/// for the next exploration action.
pub fn react_decision(agenda: &DataAgenda, observation: &str) -> String {
    format!(
        "{}Decide the next exploration action for predicting {target}. Actions: \
         propose_unary (with \"attribute\"), sample_binary, sample_highorder, \
         sample_extractor, stop. Respond with a JSON object containing \"action\" \
         and, for propose_unary, \"attribute\".\n\
         Observation:\n{observation}",
        agenda.render(),
        target = agenda.target,
    )
}

/// EXTENSION (paper §5 future work): ask the FM which features are
/// unlikely to help the prediction and can be removed.
pub fn feature_removal(agenda: &DataAgenda) -> String {
    format!(
        "{}List the features that are unlikely to help predict {target} and can be \
         removed from the dataset. Respond with a comma-separated list of feature \
         names, or 'none'.\n",
        agenda.render(),
        target = agenda.target,
    )
}

/// Row-level completion prompt: serialize one row with the new feature
/// masked (`A1: v1, …, A_new: ?` — the paper's Section 3.3 fallback).
pub fn row_completion(fields: &[(String, String)], new_feature: &str) -> String {
    let mut row: Vec<String> = fields.iter().map(|(k, v)| format!("{k}: {v}")).collect();
    row.push(format!("{new_feature}: ?"));
    format!("Complete the value of the last field.\n{}", row.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperatorFamily;
    use crate::operators::{Candidate, OperatorSpec};

    fn agenda() -> DataAgenda {
        DataAgenda {
            features: vec![crate::schema::FeatureDescription {
                name: "Age".into(),
                dtype: "int".into(),
                distinct: Some(40),
                description: "age of the policyholder".into(),
                origin: crate::schema::Origin::Original,
            }],
            target: "Safe".into(),
            model: "RF".into(),
        }
    }

    #[test]
    fn unary_prompt_contains_template_phrase_and_card() {
        let p = unary_proposal(&agenda(), "Age");
        assert!(p.contains("Consider the unary operators on the attribute 'Age'"));
        assert!(p.contains("- Age (int, distinct=40): age of the policyholder"));
        assert!(p.contains("Prediction target: Safe"));
        assert!(p.contains("confidence levels"));
    }

    #[test]
    fn sampling_prompts_have_distinct_markers() {
        let a = agenda();
        assert!(binary_sample(&a).contains("Propose one binary arithmetic feature"));
        assert!(highorder_sample(&a).contains("Generate a groupby feature"));
        assert!(
            highorder_sample(&a).contains("'df.groupby(groupby_col)[agg_col].transform(function)'")
        );
        assert!(extractor_sample(&a).contains("Propose one extractor feature"));
    }

    #[test]
    fn function_prompt_carries_candidate_fields() {
        let cand = Candidate {
            name: "Bucketized_Age".into(),
            columns: vec!["Age".into()],
            description: "age bands".into(),
            spec: OperatorSpec::Unary {
                op: "bucketize".into(),
            },
            family: OperatorFamily::Unary,
        };
        let p = function_generation(&agenda(), &cand);
        assert!(p.contains("Provide an executable transformation function"));
        assert!(p.contains("Relevant columns: Age"));
        assert!(p.contains("Operator hint: bucketize"));
    }

    #[test]
    fn mutation_prompt_carries_parent_and_marker() {
        let parent = Candidate {
            name: "Age_div_Claim".into(),
            columns: vec!["Age".into(), "Claim".into()],
            description: "claims per year of age".into(),
            spec: OperatorSpec::Binary {
                op: smartfeat_frame::ops::BinaryOp::Div,
            },
            family: OperatorFamily::Binary,
        };
        let p = mutate_candidate(&agenda(), &parent);
        assert!(p.contains("Mutate the candidate feature"));
        assert!(p.contains("Parent family: Binary"));
        assert!(p.contains("Parent name: Age_div_Claim"));
        assert!(p.contains("Parent columns: Age, Claim"));
        assert!(p.contains("Prediction target: Safe"));
    }

    #[test]
    fn crossover_prompt_carries_both_parents_and_marker() {
        let mk = |name: &str| Candidate {
            name: name.into(),
            columns: vec!["Age".into()],
            description: "d".into(),
            spec: OperatorSpec::Unary {
                op: "normalize".into(),
            },
            family: OperatorFamily::Unary,
        };
        let p = crossover_candidates(&agenda(), &mk("A_feat"), &mk("B_feat"));
        assert!(p.contains("Combine the two parent features"));
        assert!(p.contains("Parent A name: A_feat"));
        assert!(p.contains("Parent B name: B_feat"));
        assert!(p.contains("\"family\" key"));
    }

    #[test]
    fn react_prompt_lists_actions_and_ends_with_observation() {
        let p = react_decision(&agenda(), "Turn: 0/8\nConsecutive failures: 0\n");
        assert!(p.contains("Decide the next exploration action"));
        for action in [
            "propose_unary",
            "sample_binary",
            "sample_highorder",
            "sample_extractor",
            "stop",
        ] {
            assert!(p.contains(action), "missing action {action}");
        }
        assert!(p.ends_with("Observation:\nTurn: 0/8\nConsecutive failures: 0\n"));
    }

    #[test]
    fn row_completion_masks_new_feature() {
        let p = row_completion(
            &[("City".into(), "SF".into()), ("Age".into(), "21".into())],
            "City_density",
        );
        assert!(p.ends_with("City: SF, Age: 21, City_density: ?"));
        assert!(p.contains("Complete the value of the last field."));
    }
}
