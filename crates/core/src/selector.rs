//! The operator selector (paper Section 3.2): prompts the FM with
//! operator-guided templates and parses candidate features from the output.
//!
//! - **Proposal strategy** (unary): one call enumerates all appropriate
//!   operators for one attribute; only `certain`/`high` confidence survives.
//! - **Sampling strategy** (binary / high-order / extractor): one call
//!   draws one candidate from the rich combination space.

use smartfeat_fm::FoundationModel;
use smartfeat_frame::ops::{AggFunc, BinaryOp};
use smartfeat_obs::Recorder;

use crate::config::{OperatorFamily, SmartFeatConfig};
use crate::error::Result;
use crate::fmout::{self, Confidence};
use crate::operators::{Candidate, OperatorSpec};
use crate::prompts;
use crate::schema::DataAgenda;

/// Unary operator names the pipeline can execute. Anything else coming back
/// from the FM is an invalid proposal.
pub const KNOWN_UNARY_OPS: &[&str] = &[
    "bucketize",
    "normalize",
    "log",
    "dummies",
    "frequency",
    "date_split",
    "years_since",
    "square",
    "sqrt",
    "abs",
    "reciprocal",
];

/// Display label used when composing `OpName_OrgAttr` feature names.
fn op_label(op: &str) -> &'static str {
    match op {
        "bucketize" => "Bucketized",
        "normalize" => "Normalized",
        "log" => "Log",
        "dummies" => "Dummies",
        "frequency" => "Frequency",
        "date_split" => "Datesplit",
        "years_since" => "YearsSince",
        "square" => "Squared",
        "sqrt" => "Sqrt",
        "abs" => "Abs",
        "reciprocal" => "Reciprocal",
        _ => "Derived",
    }
}

/// The operator selector. Holds the selector-role FM (GPT-4 in the paper).
pub struct OperatorSelector<'a> {
    fm: &'a dyn FoundationModel,
    config: &'a SmartFeatConfig,
    rec: Recorder,
}

/// Outcome of one sampling call.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// A well-formed candidate.
    Candidate(Box<Candidate>),
    /// The FM's output was unparseable or referenced unknown columns.
    Invalid(String),
    /// The FM explicitly declined (extractor `kind: none`).
    Exhausted,
}

impl<'a> OperatorSelector<'a> {
    /// Create a selector over `fm` with `config`. Pass
    /// [`Recorder::disabled`] when telemetry is off.
    pub fn new(fm: &'a dyn FoundationModel, config: &'a SmartFeatConfig, rec: Recorder) -> Self {
        OperatorSelector { fm, config, rec }
    }

    /// Attribute one FM response's usage to `family`. Selector calls run
    /// on the serial FM walk, so event emission here is determinism-safe.
    fn note_fm(&self, family: OperatorFamily, response: &smartfeat_fm::FmResponse) {
        self.rec
            .family(family.name(), |f| f.fm.add(crate::fm_usage_of(response)));
    }

    /// Emit the per-candidate trace event for one sampling outcome.
    fn note_sample(&self, family: OperatorFamily, sample: &Sample) {
        match sample {
            Sample::Candidate(c) => self.rec.event(
                "select.sample",
                &[
                    ("family", family.name().into()),
                    ("outcome", "candidate".into()),
                    ("name", c.name.as_str().into()),
                ],
            ),
            Sample::Invalid(_) => self.rec.event(
                "select.sample",
                &[
                    ("family", family.name().into()),
                    ("outcome", "invalid".into()),
                ],
            ),
            Sample::Exhausted => self.rec.event(
                "select.sample",
                &[
                    ("family", family.name().into()),
                    ("outcome", "exhausted".into()),
                ],
            ),
        }
    }

    /// Proposal strategy: all appropriate unary operators for `attribute`,
    /// filtered to high confidence (paper behaviour).
    pub fn propose_unary(&self, agenda: &DataAgenda, attribute: &str) -> Result<Vec<Candidate>> {
        let prompt = prompts::unary_proposal(agenda, attribute);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(OperatorFamily::Unary, &response);
        let min_conf = if self.config.high_confidence_only {
            Confidence::High
        } else {
            Confidence::Medium
        };
        let mut out = Vec::new();
        for line in fmout::parse_proposals(&response.text) {
            if line.confidence < min_conf {
                continue;
            }
            if !KNOWN_UNARY_OPS.contains(&line.op.as_str()) {
                continue;
            }
            out.push(Candidate {
                name: format!("{}_{}", op_label(&line.op), attribute),
                columns: vec![attribute.to_string()],
                description: line.description,
                spec: OperatorSpec::Unary { op: line.op },
                family: OperatorFamily::Unary,
            });
        }
        self.rec.event(
            "select.proposals",
            &[
                ("attribute", attribute.into()),
                ("kept", (out.len() as u64).into()),
            ],
        );
        Ok(out)
    }

    /// Sampling strategy: one binary arithmetic candidate.
    pub fn sample_binary(&self, agenda: &DataAgenda) -> Result<Sample> {
        let sample = self.sample_binary_inner(agenda)?;
        self.note_sample(OperatorFamily::Binary, &sample);
        Ok(sample)
    }

    fn sample_binary_inner(&self, agenda: &DataAgenda) -> Result<Sample> {
        let prompt = prompts::binary_sample(agenda);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(OperatorFamily::Binary, &response);
        let Some(dict) = fmout::parse_dict(&response.text) else {
            return Ok(Sample::Invalid(response.text));
        };
        Ok(parse_binary_dict(agenda, &dict, &response.text))
    }

    /// Sampling strategy: one GroupbyThenAgg candidate.
    pub fn sample_highorder(&self, agenda: &DataAgenda) -> Result<Sample> {
        let sample = self.sample_highorder_inner(agenda)?;
        self.note_sample(OperatorFamily::HighOrder, &sample);
        Ok(sample)
    }

    fn sample_highorder_inner(&self, agenda: &DataAgenda) -> Result<Sample> {
        let prompt = prompts::highorder_sample(agenda);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(OperatorFamily::HighOrder, &response);
        let Some(dict) = fmout::parse_dict(&response.text) else {
            return Ok(Sample::Invalid(response.text));
        };
        Ok(parse_highorder_dict(agenda, &dict, &response.text))
    }

    /// Sampling strategy: one extractor candidate.
    pub fn sample_extractor(&self, agenda: &DataAgenda) -> Result<Sample> {
        let sample = self.sample_extractor_inner(agenda)?;
        self.note_sample(OperatorFamily::Extractor, &sample);
        Ok(sample)
    }

    fn sample_extractor_inner(&self, agenda: &DataAgenda) -> Result<Sample> {
        let prompt = prompts::extractor_sample(agenda);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(OperatorFamily::Extractor, &response);
        let Some(dict) = fmout::parse_dict(&response.text) else {
            return Ok(Sample::Invalid(response.text));
        };
        Ok(parse_extractor_dict(agenda, &dict, &response.text))
    }

    /// Evolutionary-search step: ask the FM to mutate one surviving
    /// candidate into a variant. The offspring dict carries a `family`
    /// tag routing it to the matching sampling parser.
    pub fn mutate(&self, agenda: &DataAgenda, parent: &Candidate) -> Result<Sample> {
        let prompt = prompts::mutate_candidate(agenda, parent);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(parent.family, &response);
        let sample = parse_offspring(agenda, &response.text);
        self.note_sample(sample_family(&sample).unwrap_or(parent.family), &sample);
        Ok(sample)
    }

    /// Evolutionary-search step: ask the FM to combine two surviving
    /// candidates into one offspring feature.
    pub fn crossover(&self, agenda: &DataAgenda, a: &Candidate, b: &Candidate) -> Result<Sample> {
        let prompt = prompts::crossover_candidates(agenda, a, b);
        let response = self.fm.complete(&prompt)?;
        self.note_fm(a.family, &response);
        let sample = parse_offspring(agenda, &response.text);
        self.note_sample(sample_family(&sample).unwrap_or(a.family), &sample);
        Ok(sample)
    }

    /// ReAct step: show the FM the current observation (generated
    /// features, last outcome, remaining attributes) and parse its next
    /// action.
    pub fn decide(&self, agenda: &DataAgenda, observation: &str) -> Result<ReactDecision> {
        let prompt = prompts::react_decision(agenda, observation);
        let response = self.fm.complete(&prompt)?;
        self.rec
            .family("ReAct", |f| f.fm.add(crate::fm_usage_of(&response)));
        let Some(dict) = fmout::parse_dict(&response.text) else {
            return Ok(ReactDecision::Invalid);
        };
        let action = dict
            .get("action")
            .and_then(|v| v.as_str())
            .unwrap_or_default();
        Ok(match action.as_str() {
            "propose_unary" => {
                ReactDecision::ProposeUnary(dict.get("attribute").and_then(|v| v.as_str()))
            }
            "sample_binary" => ReactDecision::SampleFamily(OperatorFamily::Binary),
            "sample_highorder" => ReactDecision::SampleFamily(OperatorFamily::HighOrder),
            "sample_extractor" => ReactDecision::SampleFamily(OperatorFamily::Extractor),
            "stop" => ReactDecision::Stop,
            _ => ReactDecision::Invalid,
        })
    }
}

/// One parsed observe-think-act decision from the ReAct strategy's FM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReactDecision {
    /// Run the unary proposal strategy on the named attribute (or the
    /// first unexplored one when `None` / unknown).
    ProposeUnary(Option<String>),
    /// Draw one sample from the named family.
    SampleFamily(OperatorFamily),
    /// End the search.
    Stop,
    /// The decision was unparseable; counts as an error turn.
    Invalid,
}

/// Family of a parsed sample, when it is a candidate.
fn sample_family(sample: &Sample) -> Option<OperatorFamily> {
    match sample {
        Sample::Candidate(c) => Some(c.family),
        _ => None,
    }
}

/// Route a mutation / crossover offspring dict — tagged with a `family`
/// key — to the matching sampling parser.
fn parse_offspring(agenda: &DataAgenda, text: &str) -> Sample {
    let Some(dict) = fmout::parse_dict(text) else {
        return Sample::Invalid(text.to_string());
    };
    let family = dict
        .get("family")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    match family.as_str() {
        "Binary" => parse_binary_dict(agenda, &dict, text),
        "HighOrder" => parse_highorder_dict(agenda, &dict, text),
        "Extractor" => parse_extractor_dict(agenda, &dict, text),
        _ => Sample::Invalid(text.to_string()),
    }
}

/// Validate a binary-arithmetic dict into a candidate. Shared between the
/// sampling strategy and evolutionary offspring parsing.
fn parse_binary_dict(
    agenda: &DataAgenda,
    dict: &std::collections::BTreeMap<String, fmout::DictValue>,
    raw: &str,
) -> Sample {
    let (Some(left), Some(op_text), Some(right)) = (
        dict.get("left").and_then(|v| v.as_str()),
        dict.get("op").and_then(|v| v.as_str()),
        dict.get("right").and_then(|v| v.as_str()),
    ) else {
        return Sample::Invalid(raw.to_string());
    };
    let op = match op_text.trim() {
        "+" => BinaryOp::Add,
        "-" => BinaryOp::Sub,
        "*" => BinaryOp::Mul,
        "/" => BinaryOp::Div,
        _ => return Sample::Invalid(raw.to_string()),
    };
    if !agenda.has(&left) || !agenda.has(&right) || left == right {
        return Sample::Invalid(raw.to_string());
    }
    let description = dict
        .get("description")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    Sample::Candidate(Box::new(Candidate {
        name: format!("{}_{}_{}", left, op.token(), right),
        columns: vec![left, right],
        description,
        spec: OperatorSpec::Binary { op },
        family: OperatorFamily::Binary,
    }))
}

/// Validate a GroupbyThenAgg dict into a candidate.
fn parse_highorder_dict(
    agenda: &DataAgenda,
    dict: &std::collections::BTreeMap<String, fmout::DictValue>,
    raw: &str,
) -> Sample {
    let group_cols: Vec<String> = dict
        .get("groupby_col")
        .map(|v| v.as_list())
        .unwrap_or_default();
    let (Some(agg_col), Some(func_text)) = (
        dict.get("agg_col").and_then(|v| v.as_str()),
        dict.get("function").and_then(|v| v.as_str()),
    ) else {
        return Sample::Invalid(raw.to_string());
    };
    let Some(func) = AggFunc::parse(&func_text) else {
        return Sample::Invalid(raw.to_string());
    };
    if group_cols.is_empty()
        || !agenda.has(&agg_col)
        || group_cols.iter().any(|g| !agenda.has(g))
        || group_cols.contains(&agg_col)
    {
        return Sample::Invalid(raw.to_string());
    }
    let name = format!(
        "GroupBy_{}_{}_{}",
        group_cols.join("_"),
        func.name(),
        agg_col
    );
    let description = format!(
        "df.groupby([{}])[{}].transform({})",
        group_cols.join(", "),
        agg_col,
        func.name()
    );
    let mut columns = group_cols.clone();
    columns.push(agg_col.clone());
    Sample::Candidate(Box::new(Candidate {
        name,
        columns,
        description,
        spec: OperatorSpec::HighOrder {
            group_cols,
            agg_col,
            func,
        },
        family: OperatorFamily::HighOrder,
    }))
}

/// Validate an extractor dict into a candidate.
fn parse_extractor_dict(
    agenda: &DataAgenda,
    dict: &std::collections::BTreeMap<String, fmout::DictValue>,
    raw: &str,
) -> Sample {
    let kind = dict
        .get("kind")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    if kind == "none" {
        return Sample::Exhausted;
    }
    let columns: Vec<String> = dict.get("columns").map(|v| v.as_list()).unwrap_or_default();
    if columns.is_empty() || columns.iter().any(|c| !agenda.has(c)) {
        return Sample::Invalid(raw.to_string());
    }
    let name = dict
        .get("name")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| format!("Extracted_{}", columns.join("_")));
    let description = dict
        .get("description")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    let spec = match kind.as_str() {
        "weighted_index" => {
            let weights: Vec<f64> = dict
                .get("weights")
                .map(|v| v.as_list().iter().filter_map(|s| s.parse().ok()).collect())
                .unwrap_or_default();
            if weights.len() != columns.len() {
                return Sample::Invalid(raw.to_string());
            }
            let normalize = matches!(dict.get("normalize"), Some(fmout::DictValue::Bool(true)));
            OperatorSpec::WeightedIndex { weights, normalize }
        }
        "per_unit" => {
            if columns.len() != 2 {
                return Sample::Invalid(raw.to_string());
            }
            OperatorSpec::PerUnit
        }
        "external_lookup" => {
            let knowledge = dict
                .get("knowledge")
                .and_then(|v| v.as_str())
                .unwrap_or_default();
            OperatorSpec::ExternalLookup { knowledge }
        }
        _ => return Sample::Invalid(raw.to_string()),
    };
    Sample::Candidate(Box::new(Candidate {
        name,
        columns,
        description,
        spec,
        family: OperatorFamily::Extractor,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartfeat_fm::{FmConfig, ModelSpec, SimulatedFm};
    use smartfeat_frame::{Column, DataFrame};

    fn insurance_agenda() -> DataAgenda {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("Age", vec![21, 35, 42, 22]),
            Column::from_i64("Age_of_car", vec![6, 2, 8, 14]),
            Column::from_str_slice("Make_Model", &["Civic", "Corolla", "Mustang", "Cruze"]),
            Column::from_i64("Claim", vec![1, 0, 0, 1]),
            Column::from_str_slice("City", &["SF", "LA", "SEA", "SF"]),
            Column::from_i64("Safe", vec![0, 1, 1, 0]),
        ])
        .unwrap();
        DataAgenda::from_frame(
            &df,
            &[
                ("Age", "Age of the policyholder in years"),
                ("Age_of_car", "Age of the insured car in years"),
                ("Make_Model", "Make and model of the car"),
                ("Claim", "Whether a claim was filed in the last 6 months"),
                ("City", "City where the policyholder lives"),
            ],
            "Safe",
            "RF",
        )
    }

    #[test]
    fn unary_proposals_filtered_to_high_confidence() {
        let fm = SimulatedFm::gpt4(1);
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        let cands = sel.propose_unary(&insurance_agenda(), "Age").unwrap();
        assert!(!cands.is_empty());
        assert!(cands.iter().any(|c| c.name == "Bucketized_Age"));
        for c in &cands {
            assert_eq!(c.columns, vec!["Age".to_string()]);
            assert_eq!(c.family, OperatorFamily::Unary);
        }
    }

    #[test]
    fn unary_for_car_age_includes_years_since() {
        let fm = SimulatedFm::gpt4(1);
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        let cands = sel
            .propose_unary(&insurance_agenda(), "Age_of_car")
            .unwrap();
        assert!(
            cands.iter().any(|c| c.name == "YearsSince_Age_of_car"),
            "{cands:?}"
        );
    }

    #[test]
    fn binary_sampling_yields_valid_candidates() {
        let fm = SimulatedFm::gpt4(7);
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        let agenda = insurance_agenda();
        let mut got_candidate = false;
        for _ in 0..10 {
            match sel.sample_binary(&agenda).unwrap() {
                Sample::Candidate(c) => {
                    got_candidate = true;
                    assert_eq!(c.columns.len(), 2);
                    assert!(agenda.has(&c.columns[0]));
                    assert!(agenda.has(&c.columns[1]));
                }
                Sample::Invalid(_) | Sample::Exhausted => {}
            }
        }
        assert!(got_candidate);
    }

    #[test]
    fn highorder_sampling_parses_groupby() {
        let fm = SimulatedFm::gpt4(3);
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        let agenda = insurance_agenda();
        let mut seen = 0;
        for _ in 0..10 {
            if let Sample::Candidate(c) = sel.sample_highorder(&agenda).unwrap() {
                seen += 1;
                assert!(c.name.starts_with("GroupBy_"));
                match &c.spec {
                    OperatorSpec::HighOrder {
                        group_cols,
                        agg_col,
                        ..
                    } => {
                        assert!(!group_cols.is_empty());
                        assert!(agenda.has(agg_col));
                    }
                    other => panic!("unexpected spec {other:?}"),
                }
            }
        }
        assert!(seen >= 5, "only {seen}/10 valid high-order samples");
    }

    #[test]
    fn extractor_sampling_finds_city_lookup() {
        let fm = SimulatedFm::gpt4(5);
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        match sel.sample_extractor(&insurance_agenda()).unwrap() {
            Sample::Candidate(c) => {
                assert_eq!(c.family, OperatorFamily::Extractor);
                assert!(matches!(
                    &c.spec,
                    OperatorSpec::ExternalLookup { knowledge } if knowledge == "city_population_density"
                ));
            }
            other => panic!("expected candidate, got {other:?}"),
        }
    }

    #[test]
    fn malformed_fm_output_becomes_invalid_sample() {
        // Force 100 % degraded outputs.
        let fm = SimulatedFm::new(
            ModelSpec::gpt4(),
            FmConfig {
                seed: 11,
                error_rate: 1.0,
                ..FmConfig::default()
            },
        );
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&fm, &cfg, Recorder::disabled());
        let agenda = insurance_agenda();
        let mut invalid = 0;
        for _ in 0..10 {
            match sel.sample_highorder(&agenda).unwrap() {
                Sample::Invalid(_) => invalid += 1,
                // A degraded output can coincidentally be a repetition of a
                // valid one — the pipeline's dedup catches those instead.
                Sample::Candidate(_) | Sample::Exhausted => {}
            }
        }
        assert!(
            invalid >= 3,
            "only {invalid} invalid under full degradation"
        );
    }

    #[test]
    fn binary_rejects_unknown_columns() {
        // A canned FM that returns a dict mentioning a nonexistent column.
        struct Canned;
        impl FoundationModel for Canned {
            fn model_name(&self) -> &str {
                "canned"
            }
            fn complete(
                &self,
                _prompt: &str,
            ) -> std::result::Result<smartfeat_fm::FmResponse, smartfeat_fm::FmError> {
                Ok(smartfeat_fm::FmResponse {
                    text: "{\"left\": \"Ghost\", \"op\": \"+\", \"right\": \"Age\"}".into(),
                    prompt_tokens: 1,
                    completion_tokens: 1,
                    cost_usd: 0.0,
                    latency: std::time::Duration::ZERO,
                })
            }
            fn meter(&self) -> &smartfeat_fm::UsageMeter {
                static METER: std::sync::OnceLock<smartfeat_fm::UsageMeter> =
                    std::sync::OnceLock::new();
                METER.get_or_init(smartfeat_fm::UsageMeter::new)
            }
        }
        let cfg = SmartFeatConfig::default();
        let sel = OperatorSelector::new(&Canned, &cfg, Recorder::disabled());
        assert!(matches!(
            sel.sample_binary(&insurance_agenda()).unwrap(),
            Sample::Invalid(_)
        ));
    }
}
