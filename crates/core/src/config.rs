//! Pipeline configuration.

use serde::{Deserialize, Serialize};

/// Which operator families run — the knob behind the paper's Table 7
/// ablation (`Initial / +Unary / +Binary / +High-order / +Extractor / all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorMask {
    /// Enable unary operators (proposal strategy).
    pub unary: bool,
    /// Enable binary arithmetic operators (sampling strategy).
    pub binary: bool,
    /// Enable the high-order GroupbyThenAgg operator (sampling strategy).
    pub high_order: bool,
    /// Enable extractor operators (sampling strategy).
    pub extractor: bool,
}

impl OperatorMask {
    /// All operator families enabled (the paper's "all" column).
    pub fn all() -> Self {
        OperatorMask {
            unary: true,
            binary: true,
            high_order: true,
            extractor: true,
        }
    }

    /// No operator families enabled (the paper's "Initial" column).
    pub fn none() -> Self {
        OperatorMask {
            unary: false,
            binary: false,
            high_order: false,
            extractor: false,
        }
    }

    /// Exactly one family enabled — the Table 7 `+Family` columns.
    pub fn only(family: OperatorFamily) -> Self {
        let mut m = OperatorMask::none();
        match family {
            OperatorFamily::Unary => m.unary = true,
            OperatorFamily::Binary => m.binary = true,
            OperatorFamily::HighOrder => m.high_order = true,
            OperatorFamily::Extractor => m.extractor = true,
        }
        m
    }
}

impl Default for OperatorMask {
    fn default() -> Self {
        OperatorMask::all()
    }
}

/// The four operator families of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorFamily {
    /// Normalization, bucketization, dummies, date splitting, ….
    Unary,
    /// The four basic arithmetic operators.
    Binary,
    /// GroupbyThenAgg.
    HighOrder,
    /// Complex extractions: indices, external knowledge, library functions.
    Extractor,
}

impl OperatorFamily {
    /// All families in pipeline order.
    pub fn all() -> [OperatorFamily; 4] {
        [
            OperatorFamily::Unary,
            OperatorFamily::Binary,
            OperatorFamily::HighOrder,
            OperatorFamily::Extractor,
        ]
    }

    /// Display name matching the paper's Table 7 headers.
    pub fn name(self) -> &'static str {
        match self {
            OperatorFamily::Unary => "Unary",
            OperatorFamily::Binary => "Binary",
            OperatorFamily::HighOrder => "High-order",
            OperatorFamily::Extractor => "Extractor",
        }
    }
}

/// Full pipeline configuration (paper Section 3 defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmartFeatConfig {
    /// Sampling budget per sampled operator family (the paper sets 10).
    pub sampling_budget: usize,
    /// Generation-error threshold per family: invalid or repeated samples
    /// counted before the family's sampling stops.
    pub error_threshold: usize,
    /// Which operator families run.
    pub operators: OperatorMask,
    /// Keep only proposals at `certain`/`high` confidence (paper behaviour).
    /// Disabling admits `medium` too — an ablation knob.
    pub high_confidence_only: bool,
    /// Allow the row-level completion fallback for knowledge features.
    pub allow_row_completion: bool,
    /// Row completion is attempted only when the relevant columns have at
    /// most this many distinct value combinations (cost guard the paper
    /// describes as "provide users with several examples and let them
    /// decide … considering the associated cost").
    pub row_completion_max_distinct: usize,
    /// Dummy-expansion cardinality limit.
    pub one_hot_limit: usize,
    /// Apply the drop heuristic for superseded original features.
    pub drop_heuristic: bool,
    /// Apply the feature-evaluation filter (null / constant / high-card
    /// dummies).
    pub feature_filter: bool,
    /// Null-fraction above which a generated feature is rejected.
    pub max_null_fraction: f64,
    /// Re-ask the FM this many times when a sampling response cannot be
    /// parsed, before counting it against the error threshold (the
    /// LangChain-style retry the paper's error discussion motivates).
    pub retry_malformed: usize,
    /// EXTENSION (paper §5 future work): after generation, ask the FM
    /// which features are unlikely to help and remove them.
    pub fm_feature_removal: bool,
    /// Seed for everything stochastic in the pipeline.
    pub seed: u64,
}

impl Default for SmartFeatConfig {
    fn default() -> Self {
        SmartFeatConfig {
            sampling_budget: 10,
            error_threshold: 5,
            operators: OperatorMask::all(),
            high_confidence_only: true,
            allow_row_completion: true,
            row_completion_max_distinct: 64,
            one_hot_limit: 20,
            drop_heuristic: true,
            feature_filter: true,
            max_null_fraction: 0.5,
            retry_malformed: 1,
            fm_feature_removal: false,
            seed: 0,
        }
    }
}

impl SmartFeatConfig {
    /// Validate invariants.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.sampling_budget == 0 {
            return Err(crate::error::CoreError::InvalidConfig(
                "sampling_budget must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.max_null_fraction) {
            return Err(crate::error::CoreError::InvalidConfig(format!(
                "max_null_fraction {} outside [0, 1]",
                self.max_null_fraction
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SmartFeatConfig::default();
        assert_eq!(c.sampling_budget, 10);
        assert!(c.operators.unary && c.operators.extractor);
        assert!(c.high_confidence_only);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn only_masks() {
        let m = OperatorMask::only(OperatorFamily::Binary);
        assert!(m.binary);
        assert!(!m.unary && !m.high_order && !m.extractor);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = SmartFeatConfig {
            sampling_budget: 0,
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SmartFeatConfig {
            max_null_fraction: 1.5,
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn family_names() {
        assert_eq!(OperatorFamily::HighOrder.name(), "High-order");
        assert_eq!(OperatorFamily::all().len(), 4);
    }
}
