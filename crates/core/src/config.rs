//! Pipeline configuration.

use smartfeat_fm::BackendKind;
use smartfeat_frame::json::{JsonError, JsonValue};

/// Which operator families run — the knob behind the paper's Table 7
/// ablation (`Initial / +Unary / +Binary / +High-order / +Extractor / all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorMask {
    /// Enable unary operators (proposal strategy).
    pub unary: bool,
    /// Enable binary arithmetic operators (sampling strategy).
    pub binary: bool,
    /// Enable the high-order GroupbyThenAgg operator (sampling strategy).
    pub high_order: bool,
    /// Enable extractor operators (sampling strategy).
    pub extractor: bool,
}

impl OperatorMask {
    /// All operator families enabled (the paper's "all" column).
    pub fn all() -> Self {
        OperatorMask {
            unary: true,
            binary: true,
            high_order: true,
            extractor: true,
        }
    }

    /// No operator families enabled (the paper's "Initial" column).
    pub fn none() -> Self {
        OperatorMask {
            unary: false,
            binary: false,
            high_order: false,
            extractor: false,
        }
    }

    /// Exactly one family enabled — the Table 7 `+Family` columns.
    pub fn only(family: OperatorFamily) -> Self {
        let mut m = OperatorMask::none();
        match family {
            OperatorFamily::Unary => m.unary = true,
            OperatorFamily::Binary => m.binary = true,
            OperatorFamily::HighOrder => m.high_order = true,
            OperatorFamily::Extractor => m.extractor = true,
        }
        m
    }

    /// Serialize as a JSON object of four booleans.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("unary", self.unary.into()),
            ("binary", self.binary.into()),
            ("high_order", self.high_order.into()),
            ("extractor", self.extractor.into()),
        ])
    }

    /// Inverse of [`OperatorMask::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(OperatorMask {
            unary: get_bool(v, "unary")?,
            binary: get_bool(v, "binary")?,
            high_order: get_bool(v, "high_order")?,
            extractor: get_bool(v, "extractor")?,
        })
    }
}

impl Default for OperatorMask {
    fn default() -> Self {
        OperatorMask::all()
    }
}

/// The four operator families of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorFamily {
    /// Normalization, bucketization, dummies, date splitting, ….
    Unary,
    /// The four basic arithmetic operators.
    Binary,
    /// GroupbyThenAgg.
    HighOrder,
    /// Complex extractions: indices, external knowledge, library functions.
    Extractor,
}

impl OperatorFamily {
    /// All families in pipeline order.
    pub fn all() -> [OperatorFamily; 4] {
        [
            OperatorFamily::Unary,
            OperatorFamily::Binary,
            OperatorFamily::HighOrder,
            OperatorFamily::Extractor,
        ]
    }

    /// Display name matching the paper's Table 7 headers.
    pub fn name(self) -> &'static str {
        match self {
            OperatorFamily::Unary => "Unary",
            OperatorFamily::Binary => "Binary",
            OperatorFamily::HighOrder => "High-order",
            OperatorFamily::Extractor => "Extractor",
        }
    }

    /// Serialize as a JSON string (the variant identifier).
    pub fn to_json(&self) -> JsonValue {
        let tag = match self {
            OperatorFamily::Unary => "Unary",
            OperatorFamily::Binary => "Binary",
            OperatorFamily::HighOrder => "HighOrder",
            OperatorFamily::Extractor => "Extractor",
        };
        JsonValue::Str(tag.to_string())
    }

    /// Inverse of [`OperatorFamily::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Unary") => Ok(OperatorFamily::Unary),
            Some("Binary") => Ok(OperatorFamily::Binary),
            Some("HighOrder") => Ok(OperatorFamily::HighOrder),
            Some("Extractor") => Ok(OperatorFamily::Extractor),
            _ => Err(JsonError::decode(format!("unknown operator family: {v}"))),
        }
    }
}

/// Observability settings: whether the run records structured telemetry
/// and where the artifacts land. Off by default — the pipeline behaves
/// exactly as before when disabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObservabilityConfig {
    /// Record spans, counters, and FM-budget telemetry for the run.
    /// Implied by setting either output path.
    pub enabled: bool,
    /// Write the JSONL trace (one event per line) to this path.
    pub trace_out: Option<String>,
    /// Write the end-of-run JSON metrics report to this path.
    pub metrics_out: Option<String>,
}

impl ObservabilityConfig {
    /// Whether the run should record telemetry: explicitly enabled, or
    /// implied by requesting an output artifact.
    pub fn active(&self) -> bool {
        self.enabled || self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Serialize as a JSON object; `None` paths emit as `null`.
    pub fn to_json(&self) -> JsonValue {
        let path = |p: &Option<String>| match p {
            Some(s) => JsonValue::Str(s.clone()),
            None => JsonValue::Null,
        };
        JsonValue::object([
            ("enabled", self.enabled.into()),
            ("trace_out", path(&self.trace_out)),
            ("metrics_out", path(&self.metrics_out)),
        ])
    }

    /// Inverse of [`ObservabilityConfig::to_json`]. Lenient: missing keys
    /// take their defaults, so hand-written configs can set only `enabled`.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let path = |key: &str| -> Result<Option<String>, JsonError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(JsonError::decode(format!(
                    "non-string field: observability.{key}"
                ))),
            }
        };
        Ok(ObservabilityConfig {
            enabled: match v.get("enabled") {
                None => false,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| JsonError::decode("non-bool field: observability.enabled"))?,
            },
            trace_out: path("trace_out")?,
            metrics_out: path("metrics_out")?,
        })
    }
}

/// Which [`SearchStrategy`](crate::search::SearchStrategy) drives the
/// propose→realize→evaluate→prune loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategyKind {
    /// The paper's single-pass proposal/sampling walk (the default).
    #[default]
    OneShot,
    /// Beam search: pool candidates per round, keep the top `beam_width`
    /// by single-feature CV score, prune the rest.
    Beam,
    /// LLM-FE-style evolutionary loop: seeded population, mutation and
    /// crossover of survivors through FM prompts.
    Evolutionary,
    /// ReAct-style observe-think-act agent consuming evaluation feedback.
    React,
}

impl SearchStrategyKind {
    /// All strategies, in documentation order.
    pub fn all() -> [SearchStrategyKind; 4] {
        [
            SearchStrategyKind::OneShot,
            SearchStrategyKind::Beam,
            SearchStrategyKind::Evolutionary,
            SearchStrategyKind::React,
        ]
    }

    /// Stable identifier: the JSON tag, the CLI `--strategy` value, and
    /// the `stage.search.<name>` obs span suffix.
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategyKind::OneShot => "one_shot",
            SearchStrategyKind::Beam => "beam",
            SearchStrategyKind::Evolutionary => "evolutionary",
            SearchStrategyKind::React => "react",
        }
    }

    /// Inverse of [`SearchStrategyKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        SearchStrategyKind::all()
            .into_iter()
            .find(|k| k.name() == s)
    }

    /// Serialize as a JSON string (the stable identifier).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }

    /// Inverse of [`SearchStrategyKind::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str()
            .and_then(SearchStrategyKind::parse)
            .ok_or_else(|| JsonError::decode(format!("unknown search strategy: {v}")))
    }
}

/// Search-strategy settings. The knobs only apply to the strategy that
/// reads them; `one_shot` ignores everything but `fm_call_budget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Which strategy drives the search loop.
    pub strategy: SearchStrategyKind,
    /// Beam: survivors kept per round (and samples pooled per family).
    pub beam_width: usize,
    /// Beam: number of pool-score-prune rounds.
    pub beam_depth: usize,
    /// Evolutionary: number of mutate/crossover generations after the
    /// seed generation.
    pub generations: usize,
    /// Evolutionary: population size, invariant across generations.
    pub population: usize,
    /// ReAct: maximum observe-think-act turns.
    pub react_turns: usize,
    /// Upper bound on selector-role FM calls for the whole search
    /// (0 = unlimited). Strategies stop before a step that could
    /// exceed it.
    pub fm_call_budget: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: SearchStrategyKind::OneShot,
            beam_width: 3,
            beam_depth: 2,
            generations: 3,
            population: 6,
            react_turns: 8,
            fm_call_budget: 0,
        }
    }
}

impl SearchConfig {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("strategy", self.strategy.to_json()),
            ("beam_width", self.beam_width.into()),
            ("beam_depth", self.beam_depth.into()),
            ("generations", self.generations.into()),
            ("population", self.population.into()),
            ("react_turns", self.react_turns.into()),
            ("fm_call_budget", self.fm_call_budget.into()),
        ])
    }

    /// Inverse of [`SearchConfig::to_json`]. Lenient like
    /// [`ObservabilityConfig::from_json`]: missing keys take their
    /// defaults, so hand-written configs can set only `strategy`.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let d = SearchConfig::default();
        let knob = |key: &str, dflt: usize| -> Result<usize, JsonError> {
            v.get(key)
                .map(|x| {
                    x.as_usize().ok_or_else(|| {
                        JsonError::decode(format!("non-integer field: search.{key}"))
                    })
                })
                .transpose()
                .map(|x| x.unwrap_or(dflt))
        };
        Ok(SearchConfig {
            strategy: v
                .get("strategy")
                .map(SearchStrategyKind::from_json)
                .transpose()?
                .unwrap_or_default(),
            beam_width: knob("beam_width", d.beam_width)?,
            beam_depth: knob("beam_depth", d.beam_depth)?,
            generations: knob("generations", d.generations)?,
            population: knob("population", d.population)?,
            react_turns: knob("react_turns", d.react_turns)?,
            fm_call_budget: knob("fm_call_budget", d.fm_call_budget)?,
        })
    }
}

/// Cascade-routing settings: when enabled, both FM roles are served by a
/// cascade that tries the cheapest eligible backend first and escalates
/// on parse failure or low-confidence output (see
/// `smartfeat_fm::CascadeFm`). Off by default — the paper's fixed
/// GPT-4/GPT-3.5 pairing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeConfig {
    /// Route both FM roles through the cascade ladder.
    pub enabled: bool,
    /// Backends to try, in order. Must be non-empty when enabled.
    pub ladder: Vec<BackendKind>,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            enabled: false,
            ladder: BackendKind::all().to_vec(),
        }
    }
}

impl CascadeConfig {
    /// Serialize as a JSON object; the ladder is an array of backend
    /// names.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("enabled", self.enabled.into()),
            (
                "ladder",
                JsonValue::Array(
                    self.ladder
                        .iter()
                        .map(|k| JsonValue::Str(k.name().to_string()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`CascadeConfig::to_json`]. Lenient like
    /// [`ObservabilityConfig::from_json`]: missing keys take their
    /// defaults, so hand-written configs can set only `enabled`.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let d = CascadeConfig::default();
        Ok(CascadeConfig {
            enabled: match v.get("enabled") {
                None => d.enabled,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| JsonError::decode("non-bool field: cascade.enabled"))?,
            },
            ladder: match v.get("ladder") {
                None => d.ladder,
                Some(l) => l
                    .as_array()
                    .ok_or_else(|| JsonError::decode("non-array field: cascade.ladder"))?
                    .iter()
                    .map(|item| {
                        item.as_str().and_then(BackendKind::parse).ok_or_else(|| {
                            JsonError::decode(format!("unknown cascade backend: {item}"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
        })
    }
}

/// Full pipeline configuration (paper Section 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SmartFeatConfig {
    /// Sampling budget per sampled operator family (the paper sets 10).
    pub sampling_budget: usize,
    /// Generation-error threshold per family: invalid or repeated samples
    /// counted before the family's sampling stops.
    pub error_threshold: usize,
    /// Which operator families run.
    pub operators: OperatorMask,
    /// Keep only proposals at `certain`/`high` confidence (paper behaviour).
    /// Disabling admits `medium` too — an ablation knob.
    pub high_confidence_only: bool,
    /// Allow the row-level completion fallback for knowledge features.
    pub allow_row_completion: bool,
    /// Row completion is attempted only when the relevant columns have at
    /// most this many distinct value combinations (cost guard the paper
    /// describes as "provide users with several examples and let them
    /// decide … considering the associated cost").
    pub row_completion_max_distinct: usize,
    /// Dummy-expansion cardinality limit.
    pub one_hot_limit: usize,
    /// Apply the drop heuristic for superseded original features.
    pub drop_heuristic: bool,
    /// Apply the feature-evaluation filter (null / constant / high-card
    /// dummies).
    pub feature_filter: bool,
    /// Null-fraction above which a generated feature is rejected.
    pub max_null_fraction: f64,
    /// Re-ask the FM this many times when a sampling response cannot be
    /// parsed, before counting it against the error threshold (the
    /// LangChain-style retry the paper's error discussion motivates).
    pub retry_malformed: usize,
    /// EXTENSION (paper §5 future work): after generation, ask the FM
    /// which features are unlikely to help and remove them.
    pub fm_feature_removal: bool,
    /// Worker threads for the parallel compute stages (candidate
    /// transforms, duplicate scans): 0 = auto-detect, 1 = exact serial
    /// path. The `SMARTFEAT_THREADS` environment variable overrides this
    /// at run time. Output is bit-identical for every value.
    pub threads: usize,
    /// Structured-telemetry settings (off by default; see
    /// [`ObservabilityConfig`]).
    pub observability: ObservabilityConfig,
    /// Search-strategy settings (the paper's one-shot walk by default;
    /// see [`SearchConfig`]).
    pub search: SearchConfig,
    /// Serve both FM roles from one model family instead of the paper's
    /// GPT-4/GPT-3.5 pairing. `None` (the default) keeps the pairing.
    /// Mutually exclusive with `cascade.enabled`.
    pub backend: Option<BackendKind>,
    /// Cascade-routing settings (off by default; see [`CascadeConfig`]).
    pub cascade: CascadeConfig,
    /// Seed for everything stochastic in the pipeline.
    pub seed: u64,
}

impl Default for SmartFeatConfig {
    fn default() -> Self {
        SmartFeatConfig {
            sampling_budget: 10,
            error_threshold: 5,
            operators: OperatorMask::all(),
            high_confidence_only: true,
            allow_row_completion: true,
            row_completion_max_distinct: 64,
            one_hot_limit: 20,
            drop_heuristic: true,
            feature_filter: true,
            max_null_fraction: 0.5,
            retry_malformed: 1,
            fm_feature_removal: false,
            threads: 0,
            observability: ObservabilityConfig::default(),
            search: SearchConfig::default(),
            backend: None,
            cascade: CascadeConfig::default(),
            seed: 0,
        }
    }
}

impl SmartFeatConfig {
    /// Validate invariants.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.sampling_budget == 0 {
            return Err(crate::error::CoreError::InvalidConfig(
                "sampling_budget must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.max_null_fraction) {
            return Err(crate::error::CoreError::InvalidConfig(format!(
                "max_null_fraction {} outside [0, 1]",
                self.max_null_fraction
            )));
        }
        for (name, value) in [
            ("search.beam_width", self.search.beam_width),
            ("search.beam_depth", self.search.beam_depth),
            ("search.generations", self.search.generations),
            ("search.react_turns", self.search.react_turns),
        ] {
            if value == 0 {
                return Err(crate::error::CoreError::InvalidConfig(format!(
                    "{name} must be positive"
                )));
            }
        }
        if self.search.population < 2 {
            return Err(crate::error::CoreError::InvalidConfig(
                "search.population must be at least 2".into(),
            ));
        }
        if self.cascade.enabled && self.cascade.ladder.is_empty() {
            return Err(crate::error::CoreError::InvalidConfig(
                "cascade.ladder must be non-empty when cascade is enabled".into(),
            ));
        }
        if self.backend.is_some() && self.cascade.enabled {
            return Err(crate::error::CoreError::InvalidConfig(
                "backend and cascade are mutually exclusive".into(),
            ));
        }
        Ok(())
    }

    /// Serialize as a flat JSON object (one key per field).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("sampling_budget", self.sampling_budget.into()),
            ("error_threshold", self.error_threshold.into()),
            ("operators", self.operators.to_json()),
            ("high_confidence_only", self.high_confidence_only.into()),
            ("allow_row_completion", self.allow_row_completion.into()),
            (
                "row_completion_max_distinct",
                self.row_completion_max_distinct.into(),
            ),
            ("one_hot_limit", self.one_hot_limit.into()),
            ("drop_heuristic", self.drop_heuristic.into()),
            ("feature_filter", self.feature_filter.into()),
            ("max_null_fraction", self.max_null_fraction.into()),
            ("retry_malformed", self.retry_malformed.into()),
            ("fm_feature_removal", self.fm_feature_removal.into()),
            ("threads", self.threads.into()),
            ("observability", self.observability.to_json()),
            ("search", self.search.to_json()),
            (
                "backend",
                match self.backend {
                    Some(k) => JsonValue::Str(k.name().to_string()),
                    None => JsonValue::Null,
                },
            ),
            ("cascade", self.cascade.to_json()),
            ("seed", self.seed.into()),
        ])
    }

    /// Emit the compact JSON text of [`SmartFeatConfig::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().emit()
    }

    /// Inverse of [`SmartFeatConfig::to_json`]. Every field is required.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(SmartFeatConfig {
            sampling_budget: get_usize(v, "sampling_budget")?,
            error_threshold: get_usize(v, "error_threshold")?,
            operators: OperatorMask::from_json(
                v.get("operators")
                    .ok_or_else(|| JsonError::decode("missing field: operators"))?,
            )?,
            high_confidence_only: get_bool(v, "high_confidence_only")?,
            allow_row_completion: get_bool(v, "allow_row_completion")?,
            row_completion_max_distinct: get_usize(v, "row_completion_max_distinct")?,
            one_hot_limit: get_usize(v, "one_hot_limit")?,
            drop_heuristic: get_bool(v, "drop_heuristic")?,
            feature_filter: get_bool(v, "feature_filter")?,
            max_null_fraction: get_f64(v, "max_null_fraction")?,
            retry_malformed: get_usize(v, "retry_malformed")?,
            fm_feature_removal: get_bool(v, "fm_feature_removal")?,
            // Absent in configs serialized before the parallel subsystem
            // existed — default to auto rather than rejecting them.
            threads: v
                .get("threads")
                .map(|t| {
                    t.as_usize()
                        .ok_or_else(|| JsonError::decode("non-integer field: threads"))
                })
                .transpose()?
                .unwrap_or(0),
            // Absent in configs serialized before the observability layer
            // existed — default to off, matching the `threads` precedent.
            observability: v
                .get("observability")
                .map(ObservabilityConfig::from_json)
                .transpose()?
                .unwrap_or_default(),
            // Absent in configs serialized before pluggable search
            // strategies existed — default to one_shot, same precedent.
            search: v
                .get("search")
                .map(SearchConfig::from_json)
                .transpose()?
                .unwrap_or_default(),
            // Absent in configs serialized before backend selection
            // existed — default to the paper's pairing, same precedent.
            backend: match v.get("backend") {
                None | Some(JsonValue::Null) => None,
                Some(b) => Some(
                    b.as_str()
                        .and_then(BackendKind::parse)
                        .ok_or_else(|| JsonError::decode(format!("unknown backend: {b}")))?,
                ),
            },
            // Absent in configs serialized before cascade routing
            // existed — default to off, same precedent.
            cascade: v
                .get("cascade")
                .map(CascadeConfig::from_json)
                .transpose()?
                .unwrap_or_default(),
            seed: v
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode("missing or non-integer field: seed"))?,
        })
    }

    /// Parse the JSON text emitted by [`SmartFeatConfig::to_json_string`].
    pub fn from_json_string(text: &str) -> Result<Self, JsonError> {
        SmartFeatConfig::from_json(&JsonValue::parse(text)?)
    }
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, JsonError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| JsonError::decode(format!("missing or non-bool field: {key}")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, JsonError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| JsonError::decode(format!("missing or non-integer field: {key}")))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, JsonError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| JsonError::decode(format!("missing or non-number field: {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SmartFeatConfig::default();
        assert_eq!(c.sampling_budget, 10);
        assert!(c.operators.unary && c.operators.extractor);
        assert!(c.high_confidence_only);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn only_masks() {
        let m = OperatorMask::only(OperatorFamily::Binary);
        assert!(m.binary);
        assert!(!m.unary && !m.high_order && !m.extractor);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = SmartFeatConfig {
            sampling_budget: 0,
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SmartFeatConfig {
            max_null_fraction: 1.5,
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn family_names() {
        assert_eq!(OperatorFamily::HighOrder.name(), "High-order");
        assert_eq!(OperatorFamily::all().len(), 4);
    }

    #[test]
    fn config_json_roundtrip() {
        let c = SmartFeatConfig {
            sampling_budget: 7,
            operators: OperatorMask::only(OperatorFamily::HighOrder),
            high_confidence_only: false,
            max_null_fraction: 0.25,
            seed: 123_456_789,
            ..SmartFeatConfig::default()
        };
        let text = c.to_json_string();
        let back = SmartFeatConfig::from_json_string(&text).unwrap();
        assert_eq!(back, c);
        // Default round-trips too, and emission is deterministic.
        let d = SmartFeatConfig::default();
        assert_eq!(
            SmartFeatConfig::from_json_string(&d.to_json_string()).unwrap(),
            d
        );
        assert_eq!(d.to_json_string(), d.to_json_string());
    }

    #[test]
    fn config_from_json_rejects_missing_fields() {
        assert!(SmartFeatConfig::from_json_string("{}").is_err());
        let mut v = SmartFeatConfig::default().to_json();
        if let JsonValue::Object(m) = &mut v {
            m.remove("operators");
        }
        assert!(SmartFeatConfig::from_json(&v).is_err());
    }

    #[test]
    fn config_without_threads_field_defaults_to_auto() {
        let mut v = SmartFeatConfig {
            threads: 4,
            ..SmartFeatConfig::default()
        }
        .to_json();
        if let JsonValue::Object(m) = &mut v {
            m.remove("threads");
        }
        let back = SmartFeatConfig::from_json(&v).unwrap();
        assert_eq!(back.threads, 0);
        assert_eq!(
            back,
            SmartFeatConfig::default(),
            "pre-parallelism configs parse to the auto thread count"
        );
    }

    #[test]
    fn observability_json_roundtrip() {
        let c = SmartFeatConfig {
            observability: ObservabilityConfig {
                enabled: true,
                trace_out: Some("trace.jsonl".into()),
                metrics_out: Some("metrics.json".into()),
            },
            ..SmartFeatConfig::default()
        };
        let back = SmartFeatConfig::from_json_string(&c.to_json_string()).unwrap();
        assert_eq!(back, c);
        assert!(back.observability.active());
        // Default (all off) round-trips and is inactive.
        let d = SmartFeatConfig::default();
        let back = SmartFeatConfig::from_json_string(&d.to_json_string()).unwrap();
        assert_eq!(back, d);
        assert!(!back.observability.active());
    }

    #[test]
    fn config_without_observability_field_defaults_to_off() {
        let mut v = SmartFeatConfig {
            observability: ObservabilityConfig {
                enabled: true,
                trace_out: Some("t.jsonl".into()),
                metrics_out: None,
            },
            ..SmartFeatConfig::default()
        }
        .to_json();
        if let JsonValue::Object(m) = &mut v {
            m.remove("observability");
        }
        let back = SmartFeatConfig::from_json(&v).unwrap();
        assert_eq!(back.observability, ObservabilityConfig::default());
        assert!(!back.observability.active());
        assert_eq!(
            back,
            SmartFeatConfig::default(),
            "pre-observability configs parse with telemetry off"
        );
    }

    #[test]
    fn observability_partial_object_is_lenient() {
        let v = JsonValue::parse(r#"{"enabled": true}"#).unwrap();
        let o = ObservabilityConfig::from_json(&v).unwrap();
        assert!(o.enabled && o.active());
        assert_eq!(o.trace_out, None);
        assert_eq!(o.metrics_out, None);
        // Setting only an output path implies active() without `enabled`.
        let v = JsonValue::parse(r#"{"metrics_out": "m.json"}"#).unwrap();
        let o = ObservabilityConfig::from_json(&v).unwrap();
        assert!(!o.enabled);
        assert!(o.active());
        // Type errors are still rejected.
        let v = JsonValue::parse(r#"{"trace_out": 3}"#).unwrap();
        assert!(ObservabilityConfig::from_json(&v).is_err());
    }

    #[test]
    fn search_json_roundtrip() {
        let c = SmartFeatConfig {
            search: SearchConfig {
                strategy: SearchStrategyKind::Evolutionary,
                beam_width: 5,
                generations: 2,
                population: 4,
                fm_call_budget: 40,
                ..SearchConfig::default()
            },
            ..SmartFeatConfig::default()
        };
        let back = SmartFeatConfig::from_json_string(&c.to_json_string()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn config_without_search_field_defaults_to_one_shot() {
        let mut v = SmartFeatConfig {
            search: SearchConfig {
                strategy: SearchStrategyKind::Beam,
                ..SearchConfig::default()
            },
            ..SmartFeatConfig::default()
        }
        .to_json();
        if let JsonValue::Object(m) = &mut v {
            m.remove("search");
        }
        let back = SmartFeatConfig::from_json(&v).unwrap();
        assert_eq!(back.search.strategy, SearchStrategyKind::OneShot);
        assert_eq!(
            back,
            SmartFeatConfig::default(),
            "pre-strategy configs parse to the one-shot walk"
        );
    }

    #[test]
    fn search_partial_object_is_lenient() {
        let v = JsonValue::parse(r#"{"strategy": "react"}"#).unwrap();
        let s = SearchConfig::from_json(&v).unwrap();
        assert_eq!(s.strategy, SearchStrategyKind::React);
        assert_eq!(s.react_turns, SearchConfig::default().react_turns);
        let v = JsonValue::parse(r#"{"strategy": "hill_climb"}"#).unwrap();
        assert!(SearchConfig::from_json(&v).is_err());
        let v = JsonValue::parse(r#"{"beam_width": "wide"}"#).unwrap();
        assert!(SearchConfig::from_json(&v).is_err());
    }

    #[test]
    fn strategy_names_roundtrip() {
        for k in SearchStrategyKind::all() {
            assert_eq!(SearchStrategyKind::parse(k.name()), Some(k));
            assert_eq!(SearchStrategyKind::from_json(&k.to_json()).unwrap(), k);
        }
        assert_eq!(SearchStrategyKind::parse("simulated_annealing"), None);
    }

    #[test]
    fn validation_rejects_bad_search_knobs() {
        for bad in [
            SearchConfig {
                beam_width: 0,
                ..SearchConfig::default()
            },
            SearchConfig {
                beam_depth: 0,
                ..SearchConfig::default()
            },
            SearchConfig {
                generations: 0,
                ..SearchConfig::default()
            },
            SearchConfig {
                react_turns: 0,
                ..SearchConfig::default()
            },
            SearchConfig {
                population: 1,
                ..SearchConfig::default()
            },
        ] {
            let c = SmartFeatConfig {
                search: bad,
                ..SmartFeatConfig::default()
            };
            assert!(c.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn cascade_json_roundtrip() {
        let c = SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: true,
                ladder: vec![BackendKind::Babbage002, BackendKind::Gpt4],
            },
            ..SmartFeatConfig::default()
        };
        let back = SmartFeatConfig::from_json_string(&c.to_json_string()).unwrap();
        assert_eq!(back, c);
        let c = SmartFeatConfig {
            backend: Some(BackendKind::Gpt35Turbo),
            ..SmartFeatConfig::default()
        };
        let back = SmartFeatConfig::from_json_string(&c.to_json_string()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn config_without_cascade_or_backend_field_defaults_to_single_model() {
        let mut v = SmartFeatConfig {
            backend: Some(BackendKind::Gpt4),
            cascade: CascadeConfig {
                enabled: false,
                ladder: vec![BackendKind::Gpt4],
            },
            ..SmartFeatConfig::default()
        }
        .to_json();
        if let JsonValue::Object(m) = &mut v {
            m.remove("backend");
            m.remove("cascade");
        }
        let back = SmartFeatConfig::from_json(&v).unwrap();
        assert_eq!(back.backend, None);
        assert_eq!(back.cascade, CascadeConfig::default());
        assert_eq!(
            back,
            SmartFeatConfig::default(),
            "pre-cascade configs parse to the paper's GPT-4/GPT-3.5 pairing"
        );
    }

    #[test]
    fn cascade_partial_object_is_lenient() {
        let v = JsonValue::parse(r#"{"enabled": true}"#).unwrap();
        let c = CascadeConfig::from_json(&v).unwrap();
        assert!(c.enabled);
        assert_eq!(c.ladder, BackendKind::all().to_vec());
        let v = JsonValue::parse(r#"{"ladder": ["gpt-4"]}"#).unwrap();
        let c = CascadeConfig::from_json(&v).unwrap();
        assert!(!c.enabled);
        assert_eq!(c.ladder, vec![BackendKind::Gpt4]);
        // Unknown family names and type errors are rejected.
        let v = JsonValue::parse(r#"{"ladder": ["gpt-5"]}"#).unwrap();
        assert!(CascadeConfig::from_json(&v).is_err());
        let v = JsonValue::parse(r#"{"ladder": "gpt-4"}"#).unwrap();
        assert!(CascadeConfig::from_json(&v).is_err());
    }

    #[test]
    fn validation_rejects_bad_cascade_configs() {
        let c = SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: true,
                ladder: Vec::new(),
            },
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err(), "empty enabled ladder rejected");
        let c = SmartFeatConfig {
            backend: Some(BackendKind::Gpt4),
            cascade: CascadeConfig {
                enabled: true,
                ..CascadeConfig::default()
            },
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_err(), "backend + cascade rejected");
        // A disabled empty ladder is fine, as is backend alone.
        let c = SmartFeatConfig {
            cascade: CascadeConfig {
                enabled: false,
                ladder: Vec::new(),
            },
            backend: Some(BackendKind::Babbage002),
            ..SmartFeatConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn family_json_roundtrip() {
        for f in OperatorFamily::all() {
            assert_eq!(OperatorFamily::from_json(&f.to_json()).unwrap(), f);
        }
        assert!(OperatorFamily::from_json(&JsonValue::Str("Nope".into())).is_err());
    }
}
