//! Error type for the SMARTFEAT core.

use std::fmt;

/// Errors surfaced by the SMARTFEAT pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying frame operation failed.
    Frame(smartfeat_frame::FrameError),
    /// The FM transport failed (e.g. call budget exhausted).
    Fm(String),
    /// A transform referenced a column missing from the frame.
    MissingColumn(String),
    /// A transform was constructed with invalid parameters.
    InvalidTransform(String),
    /// The configuration is inconsistent.
    InvalidConfig(String),
    /// Row-level completion was required but disabled or over budget.
    RowCompletionUnavailable(String),
    /// Writing a run artifact (trace / metrics report) failed.
    Io(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frame(e) => write!(f, "frame error: {e}"),
            CoreError::Fm(msg) => write!(f, "foundation model error: {msg}"),
            CoreError::MissingColumn(c) => write!(f, "column {c:?} not found in frame"),
            CoreError::InvalidTransform(msg) => write!(f, "invalid transform: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::RowCompletionUnavailable(msg) => {
                write!(f, "row-level completion unavailable: {msg}")
            }
            CoreError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smartfeat_frame::FrameError> for CoreError {
    fn from(e: smartfeat_frame::FrameError) -> Self {
        CoreError::Frame(e)
    }
}

impl From<smartfeat_fm::FmError> for CoreError {
    fn from(e: smartfeat_fm::FmError) -> Self {
        CoreError::Fm(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_error_converts() {
        let fe = smartfeat_frame::FrameError::ColumnNotFound("x".into());
        let ce: CoreError = fe.into();
        assert!(ce.to_string().contains("column not found"));
    }

    #[test]
    fn fm_error_converts() {
        let ce: CoreError = smartfeat_fm::FmError::BudgetExhausted { budget: 5 }.into();
        assert!(ce.to_string().contains("budget"));
    }
}
