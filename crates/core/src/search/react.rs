//! ReAct-style search: an observe-think-act loop where the FM reads the
//! run so far (features generated, remaining attributes, the last
//! action's outcome and CV score) and picks the next exploration move —
//! a unary proposal on a named attribute, one sample from a family, or
//! stop. Turns are bounded by `react_turns`; unparseable decisions and
//! fruitless actions count as failures against `error_threshold`.

use std::collections::BTreeSet;

use crate::config::OperatorFamily;
use crate::error::Result;
use crate::operators::Candidate;
use crate::report::{SkipReason, SkippedFeature};
use crate::selector::{ReactDecision, Sample};

use super::{SearchCtx, SearchStrategy};

/// Observe-think-act agent over the operator space.
pub(crate) struct React;

impl SearchStrategy for React {
    fn name(&self) -> &'static str {
        "react"
    }

    fn search(&self, ctx: &mut SearchCtx<'_, '_>) -> Result<()> {
        let turns = ctx.sf.config.search.react_turns;
        let mut failures = 0usize;
        let mut last_action = "start".to_string();
        let mut last_outcome = "n/a".to_string();
        let mut last_score = "n/a".to_string();
        // Attributes already proposed on this run, fruitful or not —
        // `unary_transformed` only records fruitful ones, and retrying a
        // fruitless attribute would burn every remaining turn on it.
        let mut explored: BTreeSet<String> = BTreeSet::new();
        for turn in 0..turns {
            if failures >= ctx.sf.config.error_threshold {
                break;
            }
            // Worst case per turn: one decision call plus one sampling
            // step with retries.
            if !ctx.can_spend(1 + ctx.sample_cost()) {
                break;
            }
            let turn_span = ctx.state.rec.span("search.react.turn");
            let observation = observe(
                ctx,
                &explored,
                turn,
                turns,
                &last_action,
                &last_outcome,
                &last_score,
                failures,
            );
            let select_span = ctx.state.rec.span("stage.select");
            let decision = ctx.selector.decide(&ctx.state.agenda, &observation)?;
            drop(select_span);

            let mut kept: Vec<String> = Vec::new();
            let (action, outcome) = match decision {
                ReactDecision::Stop => {
                    drop(turn_span);
                    ctx.state.rec.event(
                        "search.react.turn",
                        &[
                            ("turn", (turn as u64).into()),
                            ("action", "stop".into()),
                            ("outcome", "stopped".into()),
                        ],
                    );
                    break;
                }
                ReactDecision::Invalid => {
                    failures += 1;
                    ("invalid", "failed".to_string())
                }
                ReactDecision::ProposeUnary(attr) => {
                    let attr = attr
                        .filter(|a| unexplored(ctx, &explored).contains(a))
                        .or_else(|| unexplored(ctx, &explored).first().cloned());
                    match attr {
                        None => {
                            failures += 1;
                            ("propose_unary", "exhausted".to_string())
                        }
                        Some(attr) => {
                            explored.insert(attr.clone());
                            kept = propose_step(ctx, &attr)?;
                            if kept.is_empty() {
                                failures += 1;
                                ("propose_unary", "nothing_kept".to_string())
                            } else {
                                failures = 0;
                                ("propose_unary", format!("kept {}", kept.len()))
                            }
                        }
                    }
                }
                ReactDecision::SampleFamily(family) => {
                    if !family_enabled(ctx, family) {
                        failures += 1;
                        ("sample", "family_disabled".to_string())
                    } else {
                        let (outcome, k) = sample_step(ctx, family)?;
                        kept = k;
                        if kept.is_empty() {
                            failures += 1;
                        } else {
                            failures = 0;
                        }
                        ("sample", outcome)
                    }
                }
            };
            last_action = action.to_string();
            last_outcome = outcome.clone();
            last_score = if kept.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.2}", ctx.best_feature_score(&kept))
            };
            drop(turn_span);
            ctx.state.rec.event(
                "search.react.turn",
                &[
                    ("turn", (turn as u64).into()),
                    ("action", action.into()),
                    ("outcome", outcome.as_str().into()),
                ],
            );
        }
        Ok(())
    }
}

/// Original attributes not yet unary-proposed this run, in agenda order.
fn unexplored(ctx: &SearchCtx<'_, '_>, explored: &BTreeSet<String>) -> Vec<String> {
    ctx.state
        .agenda
        .original_names()
        .into_iter()
        .filter(|a| {
            !explored.contains(a)
                && !ctx.state.unary_transformed.contains(a)
                && *a != ctx.state.agenda.target
        })
        .collect()
}

fn family_enabled(ctx: &SearchCtx<'_, '_>, family: OperatorFamily) -> bool {
    let m = ctx.sf.config.operators;
    match family {
        OperatorFamily::Unary => m.unary,
        OperatorFamily::Binary => m.binary,
        OperatorFamily::HighOrder => m.high_order,
        OperatorFamily::Extractor => m.extractor,
    }
}

/// Render the observation block the FM sees at the top of each turn.
#[allow(clippy::too_many_arguments)]
fn observe(
    ctx: &SearchCtx<'_, '_>,
    explored: &BTreeSet<String>,
    turn: usize,
    turns: usize,
    last_action: &str,
    last_outcome: &str,
    last_score: &str,
    failures: usize,
) -> String {
    let unexplored = unexplored(ctx, explored);
    let unexplored = if unexplored.is_empty() {
        "none".to_string()
    } else {
        unexplored.join(", ")
    };
    format!(
        "Turn: {turn}/{turns}\n\
         Features generated: {}\n\
         Unexplored attributes: {unexplored}\n\
         Last action: {last_action}\n\
         Last outcome: {last_outcome}\n\
         Last feature score: {last_score}\n\
         Consecutive failures: {failures}\n",
        ctx.state.generated.len(),
    )
}

/// One unary-proposal action on `attr`; returns the kept column names.
fn propose_step(ctx: &mut SearchCtx<'_, '_>, attr: &str) -> Result<Vec<String>> {
    let select_span = ctx.state.rec.span("stage.select");
    let candidates = ctx.selector.propose_unary(&ctx.state.agenda, attr)?;
    drop(select_span);
    let fresh: Vec<Candidate> = candidates
        .into_iter()
        .filter(|cand| ctx.state.seen_keys.insert(cand.dedup_key()))
        .collect();
    let kept: Vec<String> = ctx
        .sf
        .realize_batch_kept(ctx.generator, ctx.state, &fresh)?
        .into_iter()
        .flatten()
        .collect();
    if !kept.is_empty() {
        ctx.state.unary_transformed.insert(attr.to_string());
    }
    Ok(kept)
}

/// One sampling action from `family`; returns the outcome tag and kept
/// column names.
fn sample_step(
    ctx: &mut SearchCtx<'_, '_>,
    family: OperatorFamily,
) -> Result<(String, Vec<String>)> {
    match ctx.draw_sample(family)? {
        Sample::Exhausted => Ok(("exhausted".to_string(), Vec::new())),
        Sample::Invalid(_) => {
            ctx.state.skipped.push(SkippedFeature {
                name: format!("<{} sample>", family.name()),
                family,
                reason: SkipReason::InvalidSample,
            });
            Ok(("invalid_sample".to_string(), Vec::new()))
        }
        Sample::Candidate(cand) => {
            if !ctx.state.seen_keys.insert(cand.dedup_key()) {
                ctx.state.skipped.push(SkippedFeature {
                    name: cand.name.clone(),
                    family,
                    reason: SkipReason::RepeatedSample,
                });
                return Ok(("repeated_sample".to_string(), Vec::new()));
            }
            let kept = ctx
                .sf
                .realize_batch_kept(ctx.generator, ctx.state, std::slice::from_ref(&cand))?
                .swap_remove(0);
            if kept.is_empty() {
                Ok(("nothing_kept".to_string(), Vec::new()))
            } else {
                for col in &cand.columns {
                    ctx.state.referenced.insert(col.clone());
                }
                Ok((format!("kept {}", kept.len()), kept))
            }
        }
    }
}
