//! The paper's single-pass walk (Section 3.2), unchanged: unary
//! proposals per original attribute, then one sampling loop per enabled
//! family. With `fm_call_budget = 0` (the default) this emits exactly
//! the FM calls, events, and report rows of the pre-trait pipeline —
//! `tests/strategy_oracle.rs` holds the byte-level proof.

use crate::config::OperatorFamily;
use crate::error::Result;
use crate::operators::Candidate;
use crate::report::{SkipReason, SkippedFeature};
use crate::selector::Sample;

use super::{SearchCtx, SearchStrategy};

/// The default strategy: one proposal pass, one sampling pass per family.
pub(crate) struct OneShot;

impl SearchStrategy for OneShot {
    fn name(&self) -> &'static str {
        "one_shot"
    }

    fn search(&self, ctx: &mut SearchCtx<'_, '_>) -> Result<()> {
        if ctx.sf.config.operators.unary {
            let _span = ctx.state.rec.span("phase.unary");
            unary_phase(ctx)?;
        }
        if ctx.sf.config.operators.binary {
            let _span = ctx.state.rec.span("phase.binary");
            sampling_phase(ctx, OperatorFamily::Binary)?;
        }
        if ctx.sf.config.operators.high_order {
            let _span = ctx.state.rec.span("phase.high_order");
            sampling_phase(ctx, OperatorFamily::HighOrder)?;
        }
        if ctx.sf.config.operators.extractor {
            let _span = ctx.state.rec.span("phase.extractor");
            sampling_phase(ctx, OperatorFamily::Extractor)?;
        }
        Ok(())
    }
}

/// Unary exploration with the proposal strategy, one call per original
/// feature.
pub(crate) fn unary_phase(ctx: &mut SearchCtx<'_, '_>) -> Result<()> {
    for attr in ctx.state.agenda.original_names() {
        if !ctx.can_spend(1) {
            break;
        }
        let select_span = ctx.state.rec.span("stage.select");
        let candidates = ctx.selector.propose_unary(&ctx.state.agenda, &attr)?;
        drop(select_span);
        // Dedup serially (the seen-set is ordered state), then realize
        // the attribute's surviving candidates as one batch: their
        // pure transforms run concurrently on the pool.
        let fresh: Vec<Candidate> = candidates
            .into_iter()
            .filter(|cand| ctx.state.seen_keys.insert(cand.dedup_key()))
            .collect();
        let accepted = ctx.sf.realize_batch(ctx.generator, ctx.state, &fresh)?;
        if accepted.contains(&true) {
            ctx.state.unary_transformed.insert(attr.clone());
        }
    }
    Ok(())
}

/// Sampling exploration for one family: continue until the sampling
/// budget or the generation-error threshold is reached (paper §3.2).
pub(crate) fn sampling_phase(ctx: &mut SearchCtx<'_, '_>, family: OperatorFamily) -> Result<()> {
    let mut errors = 0usize;
    for _ in 0..ctx.sf.config.sampling_budget {
        if errors >= ctx.sf.config.error_threshold {
            break;
        }
        if !ctx.can_spend(ctx.sample_cost()) {
            break;
        }
        // One sample, with LangChain-style retries when the response is
        // unparseable: re-ask up to `retry_malformed` times before the
        // failure counts against the error threshold.
        let sample = ctx.draw_sample(family)?;
        match sample {
            Sample::Exhausted => break,
            Sample::Invalid(_) => {
                errors += 1;
                ctx.state.skipped.push(SkippedFeature {
                    name: format!("<{} sample>", family.name()),
                    family,
                    reason: SkipReason::InvalidSample,
                });
            }
            Sample::Candidate(cand) => {
                if !ctx.state.seen_keys.insert(cand.dedup_key()) {
                    errors += 1;
                    ctx.state.rec.event(
                        "sample.repeated",
                        &[
                            ("family", family.name().into()),
                            ("name", cand.name.as_str().into()),
                        ],
                    );
                    ctx.state.skipped.push(SkippedFeature {
                        name: cand.name.clone(),
                        family,
                        reason: SkipReason::RepeatedSample,
                    });
                    continue;
                }
                // A batch of one: each sample's prompt depends on the
                // agenda as enriched by earlier acceptances, so the
                // sampling loop is inherently serial across iterations.
                let accepted =
                    ctx.sf
                        .realize_batch(ctx.generator, ctx.state, std::slice::from_ref(&cand))?[0];
                if accepted {
                    for col in &cand.columns {
                        ctx.state.referenced.insert(col.clone());
                    }
                }
            }
        }
    }
    Ok(())
}
