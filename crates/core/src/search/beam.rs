//! Beam search: pooled sampling rounds with CV-score-guided pruning.
//!
//! Each of the `beam_depth` rounds pools up to `beam_width` samples per
//! enabled family (so the FM sees one enriched agenda per round), scores
//! every column the round kept with the single-feature CV scorer, and
//! prunes the round's keeps down to the top `beam_width` across all
//! families. Survivors stay in the frame and agenda, steering the next
//! round's prompts; pruned candidates keep their dedup keys, so the beam
//! never revisits them. Unary proposals seed the beam exactly as in the
//! one-shot walk.

use crate::error::Result;
use crate::selector::Sample;

use super::{one_shot, SearchCtx, SearchStrategy};

/// Score-guided beam over the sampled operator families.
pub(crate) struct Beam;

impl SearchStrategy for Beam {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn search(&self, ctx: &mut SearchCtx<'_, '_>) -> Result<()> {
        if ctx.sf.config.operators.unary {
            let _span = ctx.state.rec.span("phase.unary");
            one_shot::unary_phase(ctx)?;
        }
        let width = ctx.sf.config.search.beam_width;
        let families = ctx.sampled_families();
        if families.is_empty() {
            return Ok(());
        }
        let mut errors = 0usize;
        for round in 0..ctx.sf.config.search.beam_depth {
            let round_span = ctx.state.rec.span("search.beam.round");
            // Pool: up to `width` samples per family, realized one by one
            // so each prompt sees the agenda as enriched so far.
            let mut kept_this_round: Vec<String> = Vec::new();
            let mut pooled = 0usize;
            for &family in &families {
                for _ in 0..width {
                    if errors >= ctx.sf.config.error_threshold || !ctx.can_spend(ctx.sample_cost())
                    {
                        break;
                    }
                    pooled += 1;
                    match ctx.draw_sample(family)? {
                        Sample::Exhausted => break,
                        Sample::Invalid(_) => {
                            errors += 1;
                            ctx.state.skipped.push(crate::report::SkippedFeature {
                                name: format!("<{} sample>", family.name()),
                                family,
                                reason: crate::report::SkipReason::InvalidSample,
                            });
                        }
                        Sample::Candidate(cand) => {
                            if !ctx.state.seen_keys.insert(cand.dedup_key()) {
                                errors += 1;
                                ctx.state.skipped.push(crate::report::SkippedFeature {
                                    name: cand.name.clone(),
                                    family,
                                    reason: crate::report::SkipReason::RepeatedSample,
                                });
                                continue;
                            }
                            let kept = ctx.sf.realize_batch_kept(
                                ctx.generator,
                                ctx.state,
                                std::slice::from_ref(&cand),
                            )?;
                            if !kept[0].is_empty() {
                                for col in &cand.columns {
                                    ctx.state.referenced.insert(col.clone());
                                }
                                kept_this_round.extend(kept[0].iter().cloned());
                            }
                        }
                    }
                }
            }
            // Score and prune: keep the round's top `width` columns by CV
            // AUC, ties broken by name so the ranking is total.
            let mut scored: Vec<(String, f64)> = kept_this_round
                .iter()
                .map(|name| (name.clone(), ctx.feature_score(name)))
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            for (name, _) in scored.iter().skip(width) {
                ctx.prune_feature(name);
            }
            let survivors = scored.len().min(width);
            drop(round_span);
            ctx.state.rec.event(
                "search.beam.round",
                &[
                    ("round", (round as u64).into()),
                    ("pooled", (pooled as u64).into()),
                    ("kept", (survivors as u64).into()),
                ],
            );
            if errors >= ctx.sf.config.error_threshold || !ctx.can_spend(ctx.sample_cost()) {
                break;
            }
        }
        Ok(())
    }
}
