//! Evolutionary search in the LLM-FE mold (see PAPERS.md): a seeded
//! population of sampled candidates evolves for `generations` rounds.
//! Each round ranks members by single-feature CV score, keeps the top
//! half as survivors, prunes the losers' columns from the frame, and
//! refills the population with FM-generated offspring — mutations of one
//! survivor or crossovers of two, parents drawn with a seeded rng from
//! survivors only. The population size is invariant across generations:
//! when the FM cannot produce enough viable offspring, the best
//! survivors are cloned to pad (clones share columns and cost no FM
//! calls).

use std::collections::BTreeSet;

use smartfeat_rng::{seed_jump, Rng};

use crate::error::Result;
use crate::operators::Candidate;
use crate::report::{SkipReason, SkippedFeature};
use crate::selector::Sample;

use super::{one_shot, SearchCtx, SearchStrategy, EVOLUTION_STREAM};

/// One population member: the candidate and what its realization kept.
struct Member {
    cand: Candidate,
    kept: Vec<String>,
    score: f64,
}

/// Population-based mutate/crossover search.
pub(crate) struct Evolutionary;

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn search(&self, ctx: &mut SearchCtx<'_, '_>) -> Result<()> {
        if ctx.sf.config.operators.unary {
            let _span = ctx.state.rec.span("phase.unary");
            one_shot::unary_phase(ctx)?;
        }
        let families = ctx.sampled_families();
        if families.is_empty() {
            return Ok(());
        }
        let population = ctx.sf.config.search.population;
        let mut errors = 0usize;

        // Seed generation: families round-robin until the population is
        // full (or the FM runs dry).
        let seed_span = ctx.state.rec.span("search.seed_population");
        let mut members: Vec<Member> = Vec::with_capacity(population);
        let mut attempts = 0usize;
        while members.len() < population
            && attempts < 2 * population
            && errors < ctx.sf.config.error_threshold
            && ctx.can_spend(ctx.sample_cost())
        {
            let family = families[attempts % families.len()];
            attempts += 1;
            match ctx.draw_sample(family)? {
                Sample::Exhausted => continue,
                Sample::Invalid(_) => {
                    errors += 1;
                    ctx.state.skipped.push(SkippedFeature {
                        name: format!("<{} sample>", family.name()),
                        family,
                        reason: SkipReason::InvalidSample,
                    });
                }
                Sample::Candidate(cand) => {
                    if !ctx.state.seen_keys.insert(cand.dedup_key()) {
                        errors += 1;
                        ctx.state.skipped.push(SkippedFeature {
                            name: cand.name.clone(),
                            family,
                            reason: SkipReason::RepeatedSample,
                        });
                        continue;
                    }
                    members.push(realize_member(ctx, *cand)?);
                }
            }
        }
        drop(seed_span);
        if members.is_empty() {
            return Ok(());
        }

        for generation in 0..ctx.sf.config.search.generations {
            let gen_span = ctx.state.rec.span("search.generation");
            let mut rng = Rng::seed_from_u64(seed_jump(
                seed_jump(ctx.sf.config.seed, EVOLUTION_STREAM),
                generation as u64,
            ));

            // Selection: rank by score (name-tie-broken), keep the top
            // half, prune every column only losers hold.
            rank(&mut members);
            let cut = members.len().div_ceil(2);
            let losers: Vec<Member> = members.split_off(cut);
            let survivor_cols: BTreeSet<&String> =
                members.iter().flat_map(|m| m.kept.iter()).collect();
            let pruned: Vec<String> = losers
                .iter()
                .flat_map(|m| m.kept.iter())
                .filter(|c| !survivor_cols.contains(c))
                .cloned()
                .collect();
            for col in &pruned {
                ctx.prune_feature(col);
            }
            for m in &members {
                ctx.state.rec.event(
                    "search.survivor",
                    &[
                        ("generation", (generation as u64).into()),
                        ("name", m.cand.name.as_str().into()),
                    ],
                );
            }

            // Offspring: mutate one survivor or cross over two, parents
            // drawn from survivors only.
            let survivors = members.len();
            let mut offspring = 0usize;
            let mut attempts = 0usize;
            while members.len() < population
                && attempts < 2 * population
                && errors < ctx.sf.config.error_threshold
                && ctx.can_spend(1)
            {
                attempts += 1;
                let crossover = survivors >= 2 && rng.gen_bool(0.5);
                let (sample, op, parent_family, parents) = if crossover {
                    let a = rng.gen_range(0..survivors);
                    let mut b = rng.gen_range(0..survivors - 1);
                    if b >= a {
                        b += 1;
                    }
                    (
                        ctx.selector.crossover(
                            &ctx.state.agenda,
                            &members[a].cand,
                            &members[b].cand,
                        )?,
                        "crossover",
                        members[a].cand.family,
                        format!("{}|{}", members[a].cand.name, members[b].cand.name),
                    )
                } else {
                    let p = rng.gen_range(0..survivors);
                    (
                        ctx.selector.mutate(&ctx.state.agenda, &members[p].cand)?,
                        "mutate",
                        members[p].cand.family,
                        members[p].cand.name.clone(),
                    )
                };
                match sample {
                    Sample::Exhausted => continue,
                    Sample::Invalid(_) => {
                        errors += 1;
                        ctx.state.skipped.push(SkippedFeature {
                            name: format!("<{op} offspring>"),
                            family: parent_family,
                            reason: SkipReason::InvalidSample,
                        });
                    }
                    Sample::Candidate(cand) => {
                        if !ctx.state.seen_keys.insert(cand.dedup_key()) {
                            errors += 1;
                            ctx.state.skipped.push(SkippedFeature {
                                name: cand.name.clone(),
                                family: cand.family,
                                reason: SkipReason::RepeatedSample,
                            });
                            continue;
                        }
                        ctx.state.rec.event(
                            "search.child",
                            &[
                                ("generation", (generation as u64).into()),
                                ("op", op.into()),
                                ("name", cand.name.as_str().into()),
                                ("parents", parents.as_str().into()),
                            ],
                        );
                        members.push(realize_member(ctx, *cand)?);
                        offspring += 1;
                    }
                }
            }

            // Pad with clones of the best survivors so the population
            // size stays invariant (clones share realized columns).
            let mut pad = 0usize;
            while members.len() < population && survivors > 0 {
                let src = &members[pad % survivors];
                members.push(Member {
                    cand: src.cand.clone(),
                    kept: src.kept.clone(),
                    score: src.score,
                });
                pad += 1;
            }
            drop(gen_span);
            ctx.state.rec.event(
                "search.generation",
                &[
                    ("generation", (generation as u64).into()),
                    ("survivors", (survivors as u64).into()),
                    ("offspring", (offspring as u64).into()),
                    ("population", (members.len() as u64).into()),
                ],
            );
        }
        Ok(())
    }
}

/// Realize one candidate (a batch of one) and score its best kept column.
fn realize_member(ctx: &mut SearchCtx<'_, '_>, cand: Candidate) -> Result<Member> {
    let kept = ctx
        .sf
        .realize_batch_kept(ctx.generator, ctx.state, std::slice::from_ref(&cand))?
        .swap_remove(0);
    if !kept.is_empty() {
        for col in &cand.columns {
            ctx.state.referenced.insert(col.clone());
        }
    }
    let score = ctx.best_feature_score(&kept);
    Ok(Member { cand, kept, score })
}

/// Sort members best-first: score descending, then name ascending so the
/// ranking is total and deterministic.
fn rank(members: &mut [Member]) {
    members.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cand.name.cmp(&b.cand.name))
    });
}
