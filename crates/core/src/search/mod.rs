//! Pluggable search strategies over the propose→realize→evaluate→prune
//! loop.
//!
//! The paper explores the operator space with a single pass (unary
//! proposals, then one sampling walk per family). This module extracts
//! that loop behind the [`SearchStrategy`] trait and adds three
//! score-guided alternatives:
//!
//! - [`one_shot::OneShot`] — the paper's walk, bit-for-bit;
//! - [`beam::Beam`] — pooled sampling rounds pruned to the top
//!   `beam_width` columns by single-feature CV AUC;
//! - [`evolution::Evolutionary`] — an LLM-FE-style population loop that
//!   mutates and crosses over survivors through FM prompts;
//! - [`react::React`] — an observe-think-act agent that feeds evaluation
//!   results back to the FM and lets it pick the next move.
//!
//! # Determinism contract
//!
//! Every strategy must produce bit-identical reports for every thread
//! count. The obligations (DESIGN.md §13):
//!
//! - FM calls, sampling decisions, and event emission happen only on the
//!   serial control path; parallelism stays inside
//!   [`SmartFeat::realize_batch_kept`] and the CV scorer, both of which
//!   are ordered and thread-invariant.
//! - Randomness comes from [`smartfeat_rng::Rng`] streams derived from
//!   `config.seed` via [`smartfeat_rng::seed_jump`] with a per-purpose
//!   stream constant — never from ambient state.
//! - Candidate ordering ties are broken by name, never by map iteration
//!   order.

pub(crate) mod beam;
pub(crate) mod evolution;
pub(crate) mod one_shot;
pub(crate) mod react;

use crate::config::{OperatorFamily, SearchStrategyKind};
use crate::error::Result;
use crate::generator::FunctionGenerator;
use crate::pipeline::{RunState, SmartFeat};
use crate::report::{SkipReason, SkippedFeature};
use crate::selector::{OperatorSelector, Sample};

/// `seed_jump` stream for the single-feature CV scorer.
pub(crate) const SCORE_STREAM: u64 = 101;
/// `seed_jump` stream base for the evolutionary loop's per-generation rng.
pub(crate) const EVOLUTION_STREAM: u64 = 211;

/// One search strategy: owns the explore loop between the pipeline's
/// setup and its drop-heuristic / removal epilogue.
pub(crate) trait SearchStrategy {
    /// Stable identifier; also the `stage.search.<name>` span suffix.
    fn name(&self) -> &'static str;
    /// Run the search, mutating `ctx.state` (frame, agenda, report rows).
    fn search(&self, ctx: &mut SearchCtx<'_, '_>) -> Result<()>;
}

/// Resolve the configured strategy to its implementation.
pub(crate) fn strategy_for(kind: SearchStrategyKind) -> Box<dyn SearchStrategy> {
    match kind {
        SearchStrategyKind::OneShot => Box::new(one_shot::OneShot),
        SearchStrategyKind::Beam => Box::new(beam::Beam),
        SearchStrategyKind::Evolutionary => Box::new(evolution::Evolutionary),
        SearchStrategyKind::React => Box::new(react::React),
    }
}

/// Everything a strategy needs: the tool (config + FM handles), the two
/// FM-facing components, and the run's mutable state.
pub(crate) struct SearchCtx<'a, 'r> {
    pub(crate) sf: &'r SmartFeat<'a>,
    pub(crate) selector: &'r OperatorSelector<'r>,
    pub(crate) generator: &'r FunctionGenerator<'r>,
    pub(crate) state: &'r mut RunState,
    /// Selector-meter call count when the run started; the FM-call budget
    /// is measured against the delta from here.
    pub(crate) selector_calls_start: usize,
}

impl SearchCtx<'_, '_> {
    /// Selector-role FM calls spent by this run so far.
    pub(crate) fn selector_calls_used(&self) -> usize {
        self.sf
            .selector_fm
            .meter()
            .snapshot()
            .calls
            .saturating_sub(self.selector_calls_start)
    }

    /// Whether `n` more selector calls fit in `search.fm_call_budget`
    /// (0 = unlimited). Strategies gate each step on the worst-case cost
    /// of that step, so the budget is never exceeded, only undershot.
    pub(crate) fn can_spend(&self, n: usize) -> bool {
        let budget = self.sf.config.search.fm_call_budget;
        budget == 0 || self.selector_calls_used() + n <= budget
    }

    /// Worst-case selector calls for one sampling step (the initial ask
    /// plus the malformed-response retries).
    pub(crate) fn sample_cost(&self) -> usize {
        1 + self.sf.config.retry_malformed
    }

    /// Draw one sample from `family` with the LangChain-style retry loop
    /// and the `stage.select` span — the exact call pattern of the
    /// paper's sampling phase.
    pub(crate) fn draw_sample(&mut self, family: OperatorFamily) -> Result<Sample> {
        let mut sample = Sample::Invalid(String::new());
        let select_span = self.state.rec.span("stage.select");
        for _attempt in 0..=self.sf.config.retry_malformed {
            sample = match family {
                OperatorFamily::Binary => self.selector.sample_binary(&self.state.agenda)?,
                OperatorFamily::HighOrder => self.selector.sample_highorder(&self.state.agenda)?,
                OperatorFamily::Extractor => self.selector.sample_extractor(&self.state.agenda)?,
                // sfcheck:allow(panic-hygiene, panic-reachability) invariant: strategies route Unary to propose_unary
                OperatorFamily::Unary => unreachable!("unary uses the proposal strategy"),
            };
            if !matches!(sample, Sample::Invalid(_)) {
                break;
            }
        }
        drop(select_span);
        Ok(sample)
    }

    /// Score one realized feature column: 3-fold CV AUC of a linear model
    /// over that single column. Returns 0.0 whenever the frame cannot be
    /// scored (string target, degenerate folds) so ranking stays total
    /// and deterministic instead of erroring the run.
    pub(crate) fn feature_score(&self, name: &str) -> f64 {
        let target = self.state.agenda.target.clone();
        let Ok(labels) = self.state.frame.to_labels(&target) else {
            return 0.0;
        };
        let Ok(rows) = self.state.frame.to_matrix(&[name], 0.0) else {
            return 0.0;
        };
        let Ok(x) = smartfeat_ml::Matrix::from_rows(rows) else {
            return 0.0;
        };
        let seed = smartfeat_rng::seed_jump(self.sf.config.seed, SCORE_STREAM);
        smartfeat_ml::kfold_cv_auc_threaded(
            smartfeat_ml::ModelKind::LR,
            &x,
            &labels,
            3,
            seed,
            self.sf.config.threads,
        )
        .unwrap_or(0.0)
    }

    /// Best [`SearchCtx::feature_score`] across a candidate's kept
    /// columns (0.0 when nothing was kept).
    pub(crate) fn best_feature_score(&self, kept: &[String]) -> f64 {
        kept.iter()
            .map(|name| self.feature_score(name))
            .fold(0.0, f64::max)
    }

    /// Remove a previously kept feature that lost a selection round:
    /// drop the column, retract it from the agenda and the generated
    /// list, and record a [`SkipReason::Pruned`] row. The candidate's
    /// dedup key stays in `seen_keys`, so a pruned feature is never
    /// re-admitted.
    pub(crate) fn prune_feature(&mut self, name: &str) {
        let Some(pos) = self.state.generated.iter().position(|g| g.name == name) else {
            return;
        };
        let gone = self.state.generated.remove(pos);
        let _ = self.state.frame.drop_column(name);
        self.state.agenda.remove(name);
        if gone.family == OperatorFamily::Unary {
            // Without any surviving unary feature over the same original,
            // the drop heuristic must not retire that original.
            let still_covered = self
                .state
                .generated
                .iter()
                .any(|g| g.family == OperatorFamily::Unary && g.columns == gone.columns);
            if !still_covered {
                if let Some(attr) = gone.columns.first() {
                    self.state.unary_transformed.remove(attr);
                }
            }
        }
        self.state.rec.event(
            "search.pruned",
            &[("family", gone.family.name().into()), ("name", name.into())],
        );
        self.state.skipped.push(SkippedFeature {
            name: name.to_string(),
            family: gone.family,
            reason: SkipReason::Pruned,
        });
    }

    /// Sampled operator families enabled by the config mask, in pipeline
    /// order.
    pub(crate) fn sampled_families(&self) -> Vec<OperatorFamily> {
        let m = self.sf.config.operators;
        [
            (OperatorFamily::Binary, m.binary),
            (OperatorFamily::HighOrder, m.high_order),
            (OperatorFamily::Extractor, m.extractor),
        ]
        .into_iter()
        .filter_map(|(f, on)| on.then_some(f))
        .collect()
    }
}
