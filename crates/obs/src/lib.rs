//! # smartfeat-obs
//!
//! Structured observability for the SMARTFEAT reproduction: span timers,
//! typed counters for FM interactions, a JSONL event sink, and an
//! end-of-run metrics report serialized with the in-repo JSON writer
//! (`smartfeat_frame::json`).
//!
//! ## Determinism contract
//!
//! The paper's headline claim is *efficiency* of feature-level FM
//! interaction, so the numbers this crate reports (FM calls, tokens,
//! simulated cost, generation errors, stage structure) must be exact and
//! reproducible. Two rules make the default metrics report **byte-stable
//! across thread counts**:
//!
//! 1. Timestamps come from a [`ClockMode::Logical`] clock by default — a
//!    monotonic event counter, not wall time. Wall-clock timing is opt-in
//!    via the `SMARTFEAT_OBS_WALLCLOCK` environment variable, and every
//!    wall-derived quantity is segregated under a `volatile` report key so
//!    differential tests can hold the rest byte-identical.
//! 2. Trace events may only be emitted from *serial* code. Parallel work
//!    (tree fits, CV folds, pool tasks) is aggregated through
//!    order-independent counters — the [`global`] work registry and the
//!    pool counters bridged from `smartfeat_par` — never through the event
//!    stream. A violation shows up as a tick-count difference between
//!    thread counts, which the differential suite rejects.
//!
//! Hermetic-build policy: this crate depends on `std` and
//! `smartfeat-frame` (for the JSON writer) only.

pub mod global;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use smartfeat_frame::json::JsonValue;
use smartfeat_par::lock_or_poison;

/// Environment variable that opts span/event timestamps into wall-clock
/// nanoseconds (`1`/`true`). Unset or anything else keeps the
/// deterministic logical clock.
pub const WALLCLOCK_ENV: &str = "SMARTFEAT_OBS_WALLCLOCK";

/// Timestamp source for spans and trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic event counter: timestamp = number of prior timestamped
    /// points. Deterministic for a fixed workload; the default.
    Logical,
    /// Nanoseconds since recorder creation. Opt-in profiling mode; every
    /// derived value lands in the report's `volatile` section.
    Wall,
}

impl ClockMode {
    /// Resolve the mode from [`WALLCLOCK_ENV`] (read on every call so
    /// re-exec harnesses can vary it per child process).
    pub fn from_env() -> ClockMode {
        match std::env::var(WALLCLOCK_ENV) {
            Ok(v) if v.trim() == "1" || v.trim().eq_ignore_ascii_case("true") => ClockMode::Wall,
            _ => ClockMode::Logical,
        }
    }

    /// Report tag: `"logical"` or `"wall"`.
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Logical => "logical",
            ClockMode::Wall => "wall",
        }
    }
}

/// Aggregate FM usage attributed to one key (a role such as `"selector"`,
/// or an operator family such as `"Binary"`).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct FmUsage {
    /// FM calls.
    pub calls: u64,
    /// Prompt tokens billed.
    pub prompt_tokens: u64,
    /// Completion tokens billed.
    pub completion_tokens: u64,
    /// Simulated USD billed.
    pub cost_usd: f64,
}

impl FmUsage {
    /// Accumulate another usage record into this one.
    pub fn add(&mut self, other: FmUsage) {
        self.calls += other.calls;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.cost_usd += other.cost_usd;
    }

    fn to_json(self) -> JsonValue {
        JsonValue::object([
            ("calls", self.calls.into()),
            ("prompt_tokens", self.prompt_tokens.into()),
            ("completion_tokens", self.completion_tokens.into()),
            ("cost_usd", self.cost_usd.into()),
        ])
    }
}

/// Per-operator-family pipeline counters (the paper's generation-error
/// accounting plus candidate outcomes).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct FamilyStats {
    /// Candidates proposed or sampled for this family.
    pub candidates: u64,
    /// Candidates that contributed at least one kept column.
    pub accepted: u64,
    /// Skip-list entries recorded for this family.
    pub skipped: u64,
    /// Skips that count against the paper's generation-error threshold.
    pub generation_errors: u64,
    /// FM usage attributed to this family's selector + generator calls.
    pub fm: FmUsage,
}

impl FamilyStats {
    fn to_json(self) -> JsonValue {
        JsonValue::object([
            ("candidates", self.candidates.into()),
            ("accepted", self.accepted.into()),
            ("skipped", self.skipped.into()),
            ("generation_errors", self.generation_errors.into()),
            ("fm", self.fm.to_json()),
        ])
    }
}

/// Per-backend routing usage bridged from a cascade FM's
/// `RoutingSnapshot` delta (defined here natively — this crate depends
/// only on `smartfeat-frame`; the pipeline converts).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RouteUsage {
    /// Attempts served by this backend family.
    pub calls: u64,
    /// Attempts rejected by the cascade's acceptance policy.
    pub escalations: u64,
    /// Prompt tokens billed by this family.
    pub prompt_tokens: u64,
    /// Completion tokens billed by this family.
    pub completion_tokens: u64,
    /// Simulated USD billed by this family.
    pub cost_usd: f64,
}

impl RouteUsage {
    fn to_json(self) -> JsonValue {
        JsonValue::object([
            ("calls", self.calls.into()),
            ("escalations", self.escalations.into()),
            ("prompt_tokens", self.prompt_tokens.into()),
            ("completion_tokens", self.completion_tokens.into()),
            ("cost_usd", self.cost_usd.into()),
        ])
    }
}

/// Pool counters bridged from `smartfeat_par` (the pipeline snapshots the
/// process-wide counters before and after a run and records the delta).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PoolCounters {
    /// `par_map` batches submitted (serial path included).
    pub batches: u64,
    /// Tasks enqueued across all batches.
    pub tasks: u64,
    /// Worker threads spawned (occupancy). Thread-count dependent, so it
    /// is reported only under the `volatile` key in wall mode.
    // sfcheck:volatile-field(workers_spawned)
    pub workers_spawned: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    /// Logical ticks or wall nanoseconds, depending on the clock mode.
    total: u64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    fm: BTreeMap<String, FmUsage>,
    families: BTreeMap<String, FamilyStats>,
    spans: BTreeMap<String, SpanAgg>,
    work: BTreeMap<String, global::WorkStat>,
    pool: PoolCounters,
    routing: BTreeMap<String, RouteUsage>,
    trace: String,
    events: u64,
}

#[derive(Debug)]
struct Inner {
    mode: ClockMode,
    seq: AtomicU64,
    origin: Instant,
    state: Mutex<State>,
}

/// The per-run observability recorder.
///
/// Cheap to clone (an `Arc` underneath) and thread-safe; the disabled
/// recorder carries no allocation and every method is a no-op, so
/// instrumented code paths cost one branch when observability is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that records nothing. All methods are no-ops.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with an explicit clock mode.
    pub fn new(mode: ClockMode) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                mode,
                seq: AtomicU64::new(0),
                origin: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// An enabled recorder whose clock mode comes from
    /// [`ClockMode::from_env`].
    pub fn from_env() -> Recorder {
        Recorder::new(ClockMode::from_env())
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active clock mode, if enabled.
    pub fn mode(&self) -> Option<ClockMode> {
        self.inner.as_ref().map(|i| i.mode)
    }

    /// Current timestamp: the next logical tick, or nanoseconds since
    /// recorder creation in wall mode. `0` when disabled.
    pub fn now(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => match inner.mode {
                ClockMode::Logical => inner.seq.fetch_add(1, Ordering::Relaxed),
                ClockMode::Wall => inner.origin.elapsed().as_nanos() as u64,
            },
        }
    }

    /// Increment the named counter.
    // sfcheck:output-sink
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut state = lock_or_poison(&inner.state);
            *state.counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Attribute one FM call's usage to `key` (a role or family label).
    pub fn fm_call(&self, key: &str, usage: FmUsage) {
        if let Some(inner) = &self.inner {
            let mut state = lock_or_poison(&inner.state);
            state.fm.entry(key.to_string()).or_default().add(usage);
        }
    }

    /// Replace the usage attributed to `key` with an exact total (used to
    /// bridge `smartfeat_fm::UsageMeter` deltas at end of run).
    pub fn set_fm_usage(&self, key: &str, usage: FmUsage) {
        if let Some(inner) = &self.inner {
            let mut state = lock_or_poison(&inner.state);
            state.fm.insert(key.to_string(), usage);
        }
    }

    /// Mutate one family's stats through `f`.
    pub fn family(&self, family: &str, f: impl FnOnce(&mut FamilyStats)) {
        if let Some(inner) = &self.inner {
            let mut state = lock_or_poison(&inner.state);
            f(state.families.entry(family.to_string()).or_default());
        }
    }

    /// Record the pool-counter delta for this run.
    pub fn set_pool(&self, pool: PoolCounters) {
        if let Some(inner) = &self.inner {
            lock_or_poison(&inner.state).pool = pool;
        }
    }

    /// Record per-backend cascade routing stats for this run. Single-model
    /// runs never call this, so the report omits its `routing` key and
    /// stays byte-identical to pre-cascade reports.
    pub fn set_routing(&self, routing: BTreeMap<String, RouteUsage>) {
        if let Some(inner) = &self.inner {
            lock_or_poison(&inner.state).routing = routing;
        }
    }

    /// Record the [`global`] work-registry delta for this run (counts are
    /// deterministic; nanoseconds surface only in wall mode).
    pub fn set_work(&self, work: BTreeMap<String, global::WorkStat>) {
        if let Some(inner) = &self.inner {
            lock_or_poison(&inner.state).work = work;
        }
    }

    /// Emit one trace event: a JSONL line `{"kind": .., "t": .., ..fields}`.
    ///
    /// Must only be called from serial code — see the crate-level
    /// determinism contract.
    // sfcheck:output-sink
    pub fn event(&self, kind: &str, fields: &[(&str, JsonValue)]) {
        if self.inner.is_some() {
            let t = self.now();
            self.emit(t, kind, fields);
        }
    }

    fn emit(&self, t: u64, kind: &str, fields: &[(&str, JsonValue)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut map = BTreeMap::new();
        map.insert("t".to_string(), JsonValue::from(t));
        map.insert("kind".to_string(), JsonValue::from(kind));
        for (k, v) in fields {
            map.insert((*k).to_string(), v.clone());
        }
        let line = JsonValue::Object(map).emit();
        let mut state = lock_or_poison(&inner.state);
        state.trace.push_str(&line);
        state.trace.push('\n');
        state.events += 1;
    }

    /// Open a span: emits a `span_start` event now and a `span_end` event
    /// when the returned guard drops, aggregating count + elapsed
    /// (logical ticks or wall nanoseconds) under `name`.
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_none() {
            return Span {
                rec: Recorder::disabled(),
                name: String::new(),
                start: 0,
            };
        }
        let start = self.now();
        self.emit(start, "span_start", &[("name", name.into())]);
        Span {
            rec: self.clone(),
            name: name.to_string(),
            start,
        }
    }

    fn close_span(&self, name: &str, start: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let end = self.now();
        self.emit(end, "span_end", &[("name", name.into())]);
        let mut state = lock_or_poison(&inner.state);
        let agg = state.spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total += end.saturating_sub(start);
        drop(state);
        let _ = inner;
    }

    /// The accumulated JSONL trace.
    pub fn trace_jsonl(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => lock_or_poison(&inner.state).trace.clone(),
        }
    }

    /// Number of trace events emitted so far.
    pub fn events(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => lock_or_poison(&inner.state).events,
        }
    }

    /// The end-of-run metrics report.
    ///
    /// Under the default logical clock every field is a pure function of
    /// the workload: counters, FM usage, family stats, span counts and
    /// tick totals, pool batch/task counts, work-registry counts. Wall
    /// mode adds a `volatile` section (span/work nanoseconds, worker
    /// occupancy) that differential tests must strip.
    // sfcheck:metrics-report
    pub fn report(&self) -> JsonValue {
        let Some(inner) = &self.inner else {
            return JsonValue::Null;
        };
        let state = lock_or_poison(&inner.state);
        let wall = inner.mode == ClockMode::Wall;

        let counters = JsonValue::Object(
            state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                .collect(),
        );

        let mut fm_map: BTreeMap<String, JsonValue> = state
            .fm
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        let mut total = FmUsage::default();
        for usage in state.fm.values() {
            total.add(*usage);
        }
        fm_map.insert("total".to_string(), total.to_json());

        let families = JsonValue::Object(
            state
                .families
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );

        let elapsed_key = if wall { "ns" } else { "ticks" };
        let spans = JsonValue::Object(
            state
                .spans
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        JsonValue::object([
                            ("count", v.count.into()),
                            (elapsed_key, v.total.into()),
                        ]),
                    )
                })
                .collect(),
        );

        let work = JsonValue::Object(
            state
                .work
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::from(v.count)))
                .collect(),
        );

        let mut report = vec![
            ("clock", JsonValue::from(inner.mode.name())),
            ("counters", counters),
            ("events", state.events.into()),
            ("families", families),
            ("fm", JsonValue::Object(fm_map)),
            (
                "pool",
                JsonValue::object([
                    ("batches", state.pool.batches.into()),
                    ("tasks", state.pool.tasks.into()),
                ]),
            ),
            ("spans", spans),
            ("work", work),
        ];
        if !state.routing.is_empty() {
            // Only cascade runs carry routing stats; omitting the key
            // otherwise keeps single-model reports byte-identical to
            // pre-cascade ones.
            report.push((
                "routing",
                JsonValue::Object(
                    state
                        .routing
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        if wall {
            let work_ns = JsonValue::Object(
                state
                    .work
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::from(v.ns)))
                    .collect(),
            );
            report.push((
                "volatile",
                JsonValue::object([
                    ("pool_workers_spawned", state.pool.workers_spawned.into()),
                    ("work_ns", work_ns),
                ]),
            ));
        }
        JsonValue::object(report)
    }

    /// Compact JSON text of [`Recorder::report`], newline-terminated.
    pub fn report_string(&self) -> String {
        let mut out = self.report().emit();
        out.push('\n');
        out
    }
}

/// RAII span guard returned by [`Recorder::span`]. Records a `span_end`
/// event and aggregates elapsed time on drop.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: String,
    start: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.rec.is_enabled() {
            let rec = std::mem::take(&mut self.rec);
            rec.close_span(&self.name, self.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.incr("x", 3);
        rec.event("e", &[]);
        let _span = rec.span("s");
        assert_eq!(rec.now(), 0);
        assert_eq!(rec.events(), 0);
        assert_eq!(rec.trace_jsonl(), "");
        assert_eq!(rec.report(), JsonValue::Null);
    }

    #[test]
    fn logical_clock_ticks_monotonically() {
        let rec = Recorder::new(ClockMode::Logical);
        let a = rec.now();
        let b = rec.now();
        let c = rec.now();
        assert_eq!((a, b, c), (0, 1, 2));
    }

    #[test]
    fn spans_aggregate_count_and_ticks() {
        let rec = Recorder::new(ClockMode::Logical);
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        {
            let _outer = rec.span("outer");
        }
        let report = rec.report();
        let spans = report.get("spans").unwrap();
        let outer = spans.get("outer").unwrap();
        assert_eq!(outer.get("count").unwrap().as_u64(), Some(2));
        // First outer span: start t=0, inner start t=1, inner end t=2,
        // outer end t=3 (3 ticks); second outer: start t=4, end t=5.
        assert_eq!(outer.get("ticks").unwrap().as_u64(), Some(4));
        assert_eq!(
            spans.get("inner").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn events_produce_parseable_jsonl() {
        let rec = Recorder::new(ClockMode::Logical);
        rec.event("candidate.accepted", &[("name", "Bucketized_Age".into())]);
        rec.event("candidate.skipped", &[("reason", "high_null".into())]);
        let trace = rec.trace_jsonl();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = JsonValue::parse(line).expect("JSONL line parses");
            assert_eq!(v.get("t").unwrap().as_u64(), Some(i as u64));
        }
        assert_eq!(
            JsonValue::parse(lines[0])
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("candidate.accepted")
        );
        assert_eq!(rec.events(), 2);
    }

    #[test]
    fn fm_usage_totals_sum_roles() {
        let rec = Recorder::new(ClockMode::Logical);
        rec.fm_call(
            "selector",
            FmUsage {
                calls: 2,
                prompt_tokens: 100,
                completion_tokens: 40,
                cost_usd: 0.01,
            },
        );
        rec.set_fm_usage(
            "generator",
            FmUsage {
                calls: 1,
                prompt_tokens: 50,
                completion_tokens: 10,
                cost_usd: 0.002,
            },
        );
        let fm = rec.report();
        let total = fm.get("fm").unwrap().get("total").unwrap();
        assert_eq!(total.get("calls").unwrap().as_u64(), Some(3));
        assert_eq!(total.get("prompt_tokens").unwrap().as_u64(), Some(150));
        assert_eq!(total.get("completion_tokens").unwrap().as_u64(), Some(50));
        assert!((total.get("cost_usd").unwrap().as_f64().unwrap() - 0.012).abs() < 1e-12);
    }

    #[test]
    fn family_stats_accumulate() {
        let rec = Recorder::new(ClockMode::Logical);
        rec.family("Binary", |f| {
            f.candidates += 1;
            f.generation_errors += 1;
        });
        rec.family("Binary", |f| f.accepted += 1);
        let report = rec.report();
        let binary = report.get("families").unwrap().get("Binary").unwrap();
        assert_eq!(binary.get("candidates").unwrap().as_u64(), Some(1));
        assert_eq!(binary.get("accepted").unwrap().as_u64(), Some(1));
        assert_eq!(binary.get("generation_errors").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn logical_report_has_no_volatile_section() {
        let rec = Recorder::new(ClockMode::Logical);
        rec.set_pool(PoolCounters {
            batches: 3,
            tasks: 12,
            workers_spawned: 6,
        });
        let report = rec.report();
        assert_eq!(report.get("clock").unwrap().as_str(), Some("logical"));
        assert!(report.get("volatile").is_none());
        let pool = report.get("pool").unwrap();
        assert_eq!(pool.get("batches").unwrap().as_u64(), Some(3));
        assert_eq!(pool.get("tasks").unwrap().as_u64(), Some(12));
        assert!(pool.get("workers_spawned").is_none());
    }

    #[test]
    fn wall_report_segregates_volatile_fields() {
        let rec = Recorder::new(ClockMode::Wall);
        rec.set_pool(PoolCounters {
            batches: 1,
            tasks: 2,
            workers_spawned: 4,
        });
        let mut work = BTreeMap::new();
        work.insert(
            "ml.forest.fit".to_string(),
            global::WorkStat { count: 5, ns: 123 },
        );
        rec.set_work(work);
        let report = rec.report();
        assert_eq!(report.get("clock").unwrap().as_str(), Some("wall"));
        let volatile = report.get("volatile").expect("wall mode has volatile");
        assert_eq!(
            volatile.get("pool_workers_spawned").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            volatile
                .get("work_ns")
                .unwrap()
                .get("ml.forest.fit")
                .unwrap()
                .as_u64(),
            Some(123)
        );
        // The deterministic side still carries the count.
        assert_eq!(
            report
                .get("work")
                .unwrap()
                .get("ml.forest.fit")
                .unwrap()
                .as_u64(),
            Some(5)
        );
    }

    #[test]
    fn routing_key_appears_only_when_stats_were_set() {
        let rec = Recorder::new(ClockMode::Logical);
        assert!(rec.report().get("routing").is_none());
        // An explicitly empty map still omits the key.
        rec.set_routing(BTreeMap::new());
        assert!(rec.report().get("routing").is_none());
        let mut routing = BTreeMap::new();
        routing.insert(
            "babbage-002".to_string(),
            RouteUsage {
                calls: 10,
                escalations: 3,
                prompt_tokens: 1000,
                completion_tokens: 200,
                cost_usd: 0.0005,
            },
        );
        rec.set_routing(routing);
        let report = rec.report();
        let entry = report
            .get("routing")
            .expect("routing key present")
            .get("babbage-002")
            .expect("family entry");
        assert_eq!(entry.get("calls").unwrap().as_u64(), Some(10));
        assert_eq!(entry.get("escalations").unwrap().as_u64(), Some(3));
        // Keys are emitted sorted: routing sits between pool and spans.
        let text = rec.report_string();
        let pool = text.find("\"pool\"").unwrap();
        let routing_pos = text.find("\"routing\"").unwrap();
        let spans = text.find("\"spans\"").unwrap();
        assert!(pool < routing_pos && routing_pos < spans, "{text}");
    }

    #[test]
    fn report_emission_is_deterministic() {
        let build = || {
            let rec = Recorder::new(ClockMode::Logical);
            rec.incr("a", 1);
            rec.incr("b", 2);
            let _s = rec.span("stage");
            drop(_s);
            rec.report_string()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn clock_mode_from_env_strings() {
        assert_eq!(ClockMode::Logical.name(), "logical");
        assert_eq!(ClockMode::Wall.name(), "wall");
        // from_env reads the process environment; both outcomes are valid
        // here — just ensure it does not panic and returns a mode.
        let _ = ClockMode::from_env();
    }
}
