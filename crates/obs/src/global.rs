//! Process-wide work registry: order-independent aggregation for code
//! that runs on pool workers (tree fits, CV folds), where per-event
//! tracing would break the determinism contract.
//!
//! Callers record named work units with [`time`] or [`record`]; the
//! pipeline snapshots the registry before and after a run and reports the
//! delta. Counts are a pure function of the workload (deterministic for
//! any thread count); nanosecond totals are wall-clock and surface only
//! in the report's `volatile` section.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use smartfeat_par::lock_or_poison;
use std::time::{Duration, Instant};

/// Aggregate for one named unit of work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkStat {
    /// Times the unit ran.
    pub count: u64,
    /// Total wall-clock nanoseconds (saturating).
    // sfcheck:volatile-field(ns)
    pub ns: u64,
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, WorkStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, WorkStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Record one completed unit of `name` that took `elapsed`.
pub fn record(name: &'static str, elapsed: Duration) {
    let mut reg = lock_or_poison(registry());
    let stat = reg.entry(name).or_default();
    stat.count += 1;
    stat.ns = stat
        .ns
        .saturating_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// Run `f`, recording its wall-clock duration under `name`. Safe to call
/// from pool workers: aggregation is a mutex-guarded counter update, with
/// no event emission.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    record(name, start.elapsed());
    out
}

/// A running wall-clock measurement that records into the work registry
/// when dropped. This is the sanctioned way for code outside `crates/obs`
/// to consume wall time (deadline enforcement, bench sampling): the read
/// stays behind the obs gate, the count lands deterministically in the
/// registry, and the nanosecond total only surfaces under the report's
/// `volatile` key (sfcheck lint `wall-clock` enforces the routing).
#[derive(Debug)]
pub struct Stopwatch {
    name: &'static str,
    start: Instant,
}

/// Start a stopwatch recording under `name` on drop.
pub fn stopwatch(name: &'static str) -> Stopwatch {
    Stopwatch {
        name,
        start: Instant::now(),
    }
}

impl Stopwatch {
    /// Wall time since the stopwatch started.
    ///
    /// The value is volatile by nature; callers must only compare it
    /// against other durations (deadlines, budgets), never serialize it
    /// outside the `volatile` report section.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the stopwatch has run past `deadline`.
    pub fn exceeded(&self, deadline: Duration) -> bool {
        self.elapsed() > deadline
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        record(self.name, self.start.elapsed());
    }
}

/// Snapshot of the whole registry.
pub fn snapshot() -> BTreeMap<String, WorkStat> {
    lock_or_poison(registry())
        .iter()
        .map(|(k, v)| ((*k).to_string(), *v))
        .collect()
}

/// Per-name difference `after - before` (saturating), dropping names
/// whose count did not change. Bridges run-scoped deltas out of the
/// process-wide accumulators.
pub fn delta(
    before: &BTreeMap<String, WorkStat>,
    after: &BTreeMap<String, WorkStat>,
) -> BTreeMap<String, WorkStat> {
    let mut out = BTreeMap::new();
    for (name, a) in after {
        let b = before.get(name).copied().unwrap_or_default();
        let d = WorkStat {
            count: a.count.saturating_sub(b.count),
            ns: a.ns.saturating_sub(b.ns),
        };
        if d.count > 0 {
            out.insert(name.clone(), d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_count_and_duration() {
        let before = snapshot();
        let v = time("obs.test.unit", || 41 + 1);
        assert_eq!(v, 42);
        record("obs.test.unit", Duration::from_nanos(5));
        let after = snapshot();
        let d = delta(&before, &after);
        let stat = d.get("obs.test.unit").expect("unit recorded");
        assert_eq!(stat.count, 2);
        assert!(stat.ns >= 5);
    }

    #[test]
    fn stopwatch_records_on_drop_and_checks_deadlines() {
        let before = snapshot();
        {
            let watch = stopwatch("obs.test.stopwatch");
            assert!(
                watch.exceeded(Duration::ZERO) || watch.elapsed() == Duration::ZERO,
                "a zero deadline trips as soon as any time passes"
            );
            assert!(!watch.exceeded(Duration::from_secs(3600)));
        }
        let d = delta(&before, &snapshot());
        assert_eq!(d.get("obs.test.stopwatch").unwrap().count, 1);
    }

    #[test]
    fn delta_drops_unchanged_names() {
        record("obs.test.stable", Duration::ZERO);
        let snap = snapshot();
        assert!(delta(&snap, &snap).is_empty());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        record("obs.test.concurrent", Duration::from_nanos(1));
                    }
                });
            }
        });
        let d = delta(&before, &snapshot());
        assert_eq!(d.get("obs.test.concurrent").unwrap().count, 200);
    }
}
