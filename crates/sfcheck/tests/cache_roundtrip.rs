//! Incremental-cache contracts, end-to-end on throwaway workspaces:
//! warm output is byte-identical to cold, a cross-crate edit invalidates
//! exactly through the call graph (the unchanged caller's verdict still
//! updates), and every warm mode matches a cache-free rerun.

use std::path::{Path, PathBuf};

use sfcheck::{run_check, CheckOptions};
use smartfeat_frame::json::JsonValue;

/// A three-crate fixture with a cross-crate taint chain:
/// core reads the environment, launders it through util's `decorate`,
/// and hands the result to frame's sink.
const FIXTURE: &[(&str, &str)] = &[
    (
        "crates/frame/Cargo.toml",
        "[package]\nname = \"smartfeat-frame\"\n",
    ),
    (
        "crates/util/Cargo.toml",
        "[package]\nname = \"smartfeat-util\"\n",
    ),
    (
        "crates/core/Cargo.toml",
        "[package]\nname = \"smartfeat\"\n",
    ),
    (
        "crates/frame/src/csv.rs",
        "// sfcheck:output-sink\npub fn write_csv(text: &str) {}\n",
    ),
    (
        "crates/util/src/lib.rs",
        "pub fn decorate(s: String) -> String { s }\n",
    ),
    (
        "crates/core/src/lib.rs",
        "use smartfeat_frame::csv::write_csv;\nuse smartfeat_util::decorate;\n\
         // sfcheck:allow(env-dependence) fixture exercises the taint chain, not the env lint\n\
         pub fn dump() {\nlet p = std::env::var(\"OUT\").unwrap_or_default();\n\
         let d = decorate(p);\nwrite_csv(&d);\n}\n",
    ),
];

/// `decorate` rewritten to return a constant: the taint chain breaks in
/// `crates/util`, and the verdict must flip at the *unchanged* caller in
/// `crates/core`.
const UTIL_CONSTANT: &str = "pub fn decorate(s: String) -> String { String::new() }\n";

fn write_fixture(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("sfcheck-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, text) in FIXTURE {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, text).expect("write fixture");
    }
    root
}

fn opts(root: &Path, no_cache: bool) -> CheckOptions {
    let mut o = CheckOptions::new(root);
    o.no_cache = no_cache;
    o
}

/// `(report, sarif)` emissions for one run.
fn emits(root: &Path, no_cache: bool) -> (String, String) {
    let outcome = run_check(&opts(root, no_cache)).expect("fixture scan runs");
    (outcome.report.emit(), outcome.sarif.emit())
}

/// Live findings of one lint in an emitted report document.
/// (String matching won't do: the summary lists every lint zero-filled.)
fn live_count(report: &str, lint: &str) -> usize {
    let doc = JsonValue::parse(report).expect("report parse");
    let Some(JsonValue::Array(findings)) = doc.get("findings") else {
        panic!("report has a findings array");
    };
    findings
        .iter()
        .filter(|f| f.get("lint").and_then(JsonValue::as_str) == Some(lint))
        .count()
}

fn live_taint_count(report: &str) -> usize {
    live_count(report, "determinism-taint")
}

fn stats_mode(root: &Path) -> String {
    let text = std::fs::read_to_string(root.join("target/sfcheck-cache/stats.json"))
        .expect("stats.json written");
    let doc = JsonValue::parse(&text).expect("stats parse");
    doc.get("mode")
        .and_then(JsonValue::as_str)
        .expect("mode field")
        .to_string()
}

#[test]
fn warm_full_run_is_byte_identical_to_cold() {
    let root = write_fixture("warmfull");
    let cold = emits(&root, false);
    assert_eq!(stats_mode(&root), "cold");
    let warm = emits(&root, false);
    assert_eq!(stats_mode(&root), "warm-full");
    assert_eq!(
        cold.0, warm.0,
        "report must not change between cold and warm"
    );
    assert_eq!(
        cold.1, warm.1,
        "SARIF must not change between cold and warm"
    );
    // The fixture actually exercises the cross-file machinery: the taint
    // chain produces a live finding through two crate boundaries.
    assert_eq!(live_taint_count(&cold.0), 1);
    assert!(cold.0.contains("crates/core/src/lib.rs"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cross_crate_edit_invalidates_the_callers_verdict() {
    let root = write_fixture("invalidate");
    let cold = emits(&root, false);
    assert_eq!(live_taint_count(&cold.0), 1);

    // Break the chain in util; core/lib.rs is untouched, so only the
    // call-graph closure can carry the change to its verdict.
    std::fs::write(root.join("crates/util/src/lib.rs"), UTIL_CONSTANT).expect("edit util");
    let warm = emits(&root, false);
    assert_eq!(stats_mode(&root), "warm-partial");
    assert_eq!(
        live_taint_count(&warm.0),
        0,
        "the unchanged caller's stale finding survived the edit:\n{}",
        warm.0
    );

    // The incremental result must be indistinguishable from a cache-free
    // analysis of the same tree.
    let fresh = emits(&root, true);
    assert_eq!(
        warm.0, fresh.0,
        "warm-partial report diverged from no-cache"
    );
    assert_eq!(warm.1, fresh.1, "warm-partial SARIF diverged from no-cache");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn edit_back_and_forth_restores_the_cold_output() {
    let root = write_fixture("roundtrip");
    let original = emits(&root, false);
    std::fs::write(root.join("crates/util/src/lib.rs"), UTIL_CONSTANT).expect("edit util");
    let edited = emits(&root, false);
    assert_ne!(original.0, edited.0, "the edit must change the verdict");
    // Restore the original text: content-hash keying means the warm run
    // reproduces the first report byte-for-byte.
    std::fs::write(
        root.join("crates/util/src/lib.rs"),
        FIXTURE
            .iter()
            .find(|(rel, _)| *rel == "crates/util/src/lib.rs")
            .expect("fixture has util")
            .1,
    )
    .expect("restore util");
    let restored = emits(&root, false);
    assert_eq!(original.0, restored.0);
    assert_eq!(original.1, restored.1);
    let _ = std::fs::remove_dir_all(&root);
}

/// The volatile-field set is harvested from comments, which neither the
/// global fingerprint nor the call-graph dirty closure can see: an
/// annotation-only edit in an obs file with no call edges into the
/// metrics report must still flip the report's verdict on a warm-partial
/// run, byte-identically to a cache-free analysis of the same tree.
#[test]
fn annotation_only_obs_edit_updates_volatile_verdict() {
    let root = std::env::temp_dir().join(format!("sfcheck-cache-volatile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let files: &[(&str, &str)] = &[
        (
            "crates/obs/Cargo.toml",
            "[package]\nname = \"smartfeat-obs\"\n",
        ),
        (
            "crates/obs/src/report.rs",
            "pub struct WorkStat {\npub ns: u64,\n}\npub struct Rec;\nimpl Rec {\n\
             // sfcheck:metrics-report\n\
             pub fn report(&self, v: WorkStat) -> u64 {\nlet leak = v.ns;\nleak\n}\n}\n",
        ),
        (
            "crates/obs/src/fields.rs",
            "pub struct Stats {\npub ns: u64,\n}\n",
        ),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, text).expect("write fixture");
    }

    let cold = emits(&root, false);
    assert_eq!(
        live_count(&cold.0, "obs-volatile-discipline"),
        0,
        "no field is volatile-annotated yet:\n{}",
        cold.0
    );

    // Annotate `ns` in a file the report's file has no call edges to;
    // the edit is comment-only, so the global fingerprint is unchanged
    // and the partial path stays eligible.
    std::fs::write(
        root.join("crates/obs/src/fields.rs"),
        "pub struct Stats {\n// sfcheck:volatile-field(ns)\npub ns: u64,\n}\n",
    )
    .expect("edit fields");
    let warm = emits(&root, false);
    assert_eq!(stats_mode(&root), "warm-partial");
    assert_eq!(
        live_count(&warm.0, "obs-volatile-discipline"),
        1,
        "the annotation edit must reach the unchanged report file:\n{}",
        warm.0
    );
    let fresh = emits(&root, true);
    assert_eq!(
        warm.0, fresh.0,
        "warm-partial report diverged from no-cache"
    );
    assert_eq!(warm.1, fresh.1, "warm-partial SARIF diverged from no-cache");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn no_cache_runs_leave_no_cache_directory() {
    let root = write_fixture("nocache");
    let a = emits(&root, true);
    let b = emits(&root, true);
    assert_eq!(a.0, b.0);
    assert!(
        !root.join("target/sfcheck-cache").exists(),
        "--no-cache must not create cache state"
    );
    let _ = std::fs::remove_dir_all(&root);
}
