//! Parser robustness and golden-AST pinning.
//!
//! Two contracts:
//!
//! 1. **Total on garbage** — `lex` + `parse` are fed seeded random token
//!    soup (printable ASCII, newlines, multi-byte chars, and Rust-flavored
//!    fragments) and must never panic; every token's byte span must
//!    round-trip through the source.
//! 2. **Stable on real code** — `ast::dump` of five representative
//!    workspace files is pinned against goldens under `tests/goldens/`.
//!    After an intentional parser or source change, regenerate with
//!    `SFCHECK_BLESS=1 cargo test -p sfcheck --test parser_fuzz`.

use std::path::{Path, PathBuf};

use sfcheck::{ast, lexer, parser};
use smartfeat_rng::check;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/sfcheck sits two levels below the workspace root")
        .to_path_buf()
}

/// Rust-flavored fragments the plain `arbitrary_text` generator would
/// almost never assemble: unbalanced delimiters, keyword runs, raw
/// strings, attribute and macro shapes.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "impl ",
    "let mut ",
    "match ",
    "move |x| ",
    "::<",
    "..=",
    "r#\"",
    "\"#",
    "#[cfg(",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "'a",
    "=> ",
    "macro!(",
    "unsafe ",
    "//",
    "/*",
    "*/",
    "b\"",
    "\\",
];

#[test]
fn parse_never_panics_on_token_soup() {
    check::cases(512, |rng| {
        let mut src = String::new();
        for _ in 0..rng.gen_range(0..24u32) {
            if rng.gen_bool(0.4) {
                src.push_str(check::arbitrary_text(rng, 12).as_str());
            } else {
                src.push_str(rng.choose(FRAGMENTS).expect("non-empty"));
            }
        }
        let tokens = lexer::lex(&src);
        // Span round-trip: every token's byte span slices the source at
        // char boundaries and (modulo the documented prefix-dropping for
        // raw idents/lifetimes) reconstructs the token.
        for t in &tokens {
            let span = t.span();
            assert!(
                span.end <= src.len() && src.is_char_boundary(span.start),
                "token span {span:?} out of bounds or off-boundary in {src:?}"
            );
            assert!(src.is_char_boundary(span.end));
            let slice = &src[span];
            assert!(
                slice.ends_with(t.text.as_str()) || slice.starts_with(t.text.as_str()),
                "span slice {slice:?} does not contain token text {:?}",
                t.text
            );
        }
        // The parser is total: garbage parses to *some* tree.
        let _tree = parser::parse(&tokens);
    });
}

/// The five pinned files: one per layer the lints reason about (rng
/// derivation, parallel runtime, JSON emission, the pipeline itself, and
/// sfcheck's own AST — deeply nested generics and matches).
const GOLDEN_FILES: &[&str] = &[
    "crates/rng/src/lib.rs",
    "crates/par/src/lib.rs",
    "crates/frame/src/json.rs",
    "crates/core/src/pipeline.rs",
    "crates/sfcheck/src/ast.rs",
];

#[test]
fn golden_ast_dumps_are_stable() {
    let root = workspace_root();
    // sfcheck:allow(env-dependence) test-only bless knob; never reaches pipeline output
    let bless = std::env::var("SFCHECK_BLESS").is_ok();
    let mut mismatches = Vec::new();
    for rel in GOLDEN_FILES {
        let src = std::fs::read_to_string(root.join(rel)).expect("golden source file exists");
        let dump = ast::dump(&parser::parse(&lexer::lex(&src)));
        let golden_name = rel.replace('/', "__").replace(".rs", ".ast.txt");
        let golden_path = root.join("crates/sfcheck/tests/goldens").join(&golden_name);
        if bless {
            std::fs::create_dir_all(golden_path.parent().expect("parent")).expect("mkdir");
            std::fs::write(&golden_path, &dump).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; regenerate with SFCHECK_BLESS=1",
                golden_path.display()
            )
        });
        if dump != expected {
            mismatches.push(rel.to_string());
        }
    }
    assert!(
        mismatches.is_empty(),
        "AST dump drifted for {mismatches:?}; if intentional, regenerate with \
         SFCHECK_BLESS=1 cargo test -p sfcheck --test parser_fuzz"
    );
}

#[test]
fn dump_is_deterministic_for_identical_input() {
    check::cases(32, |rng| {
        let src = format!(
            "pub fn f_{}(x: u32) -> u32 {{ x + {} }}",
            rng.gen_range(0..1000u32),
            rng.gen_range(0..1000u32)
        );
        let a = ast::dump(&parser::parse(&lexer::lex(&src)));
        let b = ast::dump(&parser::parse(&lexer::lex(&src)));
        assert_eq!(a, b);
    });
}
