//! The v3 cross-file lints, exercised end-to-end: seeded-random totality
//! for the whole analysis stack, a hand-rolled fixture oracle for the
//! `determinism-taint` / `seed-stream-collision` /
//! `obs-volatile-discipline` verdicts, and a golden SARIF document pinned
//! for a workspace that trips all three.
//!
//! After an intentional lint or SARIF change, regenerate the golden with
//! `SFCHECK_BLESS=1 cargo test -p sfcheck --test v3_analysis`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sfcheck::resolve::Workspace;
use sfcheck::walker::{classify, crate_dir_of, SourceFile};
use sfcheck::{callgraph, cfg, dataflow, lexer, locks, parser, resolve, streams, taint};
use smartfeat_rng::check;

fn source(rel: &str, text: &str) -> SourceFile {
    SourceFile {
        rel_path: rel.to_string(),
        text: text.to_string(),
        class: classify(rel),
        crate_dir: crate_dir_of(rel),
    }
}

fn manifest(rel: &str, name: &str) -> SourceFile {
    source(rel, &format!("[package]\nname = \"{name}\"\n"))
}

/// The skeleton the fixtures plug into: an rng crate exporting the
/// derivation fn, a blessed parallel runtime, a sink-bearing frame crate,
/// and an obs crate whose report handles its volatile field correctly.
const RNG_SRC: &str = "// sfcheck:seed-derivation\n\
    pub fn seed_jump(base: u64, index: u64) -> u64 { base }";
const PAR_SRC: &str = "// sfcheck:parallel-entry\n\
    pub fn par_map<R, F>(threads: usize, items: usize, f: F) -> Vec<R> { vec![] }\n\
    pub fn resolve_threads(req: usize) -> usize { req }";
const FRAME_SRC: &str = "// sfcheck:output-sink\npub fn write_csv(text: &str) {}";
const OBS_SRC: &str =
    "pub struct WorkStat {\n// sfcheck:volatile-field(ns)\npub ns: u64,\npub count: u64,\n}\n\
    pub struct Rec;\nimpl Rec {\n\
    // sfcheck:metrics-report\n\
    pub fn report(&self, v: WorkStat) -> u64 {\nlet a = v.count;\n\
    let b = pair(\"volatile\", v.ns);\na\n}\n}\n\
    pub fn pair(k: &str, v: u64) -> u64 { v }";

/// Build a six-crate workspace: the skeleton above plus fixture files.
/// An `extra` entry whose path matches a skeleton file replaces it.
fn fixture_ws(extra: &[(&str, &str)]) -> Workspace {
    let manifests = vec![
        manifest("crates/core/Cargo.toml", "smartfeat"),
        manifest("crates/frame/Cargo.toml", "smartfeat-frame"),
        manifest("crates/ml/Cargo.toml", "smartfeat-ml"),
        manifest("crates/obs/Cargo.toml", "smartfeat-obs"),
        manifest("crates/par/Cargo.toml", "smartfeat-par"),
        manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
    ];
    let mut files: Vec<(String, String)> = vec![
        ("crates/rng/src/lib.rs".into(), RNG_SRC.into()),
        ("crates/par/src/lib.rs".into(), PAR_SRC.into()),
        ("crates/frame/src/csv.rs".into(), FRAME_SRC.into()),
        ("crates/obs/src/lib.rs".into(), OBS_SRC.into()),
    ];
    for (rel, text) in extra {
        if let Some(slot) = files.iter_mut().find(|(p, _)| p == rel) {
            slot.1 = (*text).to_string();
        } else {
            files.push(((*rel).to_string(), (*text).to_string()));
        }
    }
    let parsed = files
        .iter()
        .map(|(rel, text)| {
            let src = source(rel, text);
            let tree = parser::parse(&lexer::lex(text));
            (src, tree)
        })
        .collect();
    resolve::build(parsed, &manifests)
}

/// The v3 verdict for a fixture: both taint-family lints plus the stream
/// registry, as a sorted lint-id list (one entry per finding).
fn verdict(extra: &[(&str, &str)]) -> Vec<&'static str> {
    let ws = fixture_ws(extra);
    let mut findings = taint::run(&ws, None);
    findings.extend(taint::run_volatile(&ws));
    findings.extend(streams::run(&ws));
    let mut lints: Vec<&'static str> = findings.iter().map(|f| f.lint).collect();
    lints.sort_unstable();
    lints
}

/// Rust-flavored fragments biased toward the constructs the v3 passes
/// inspect: sources, sinks, markers, derivation calls, annotations.
const FRAGMENTS: &[&str] = &[
    "fn f(",
    ") { ",
    "}",
    "let x = ",
    "std::env::var(\"K\")",
    "Instant::now()",
    "SystemTime::now()",
    "resolve_threads(0)",
    "HashMap::new()",
    ".iter()",
    "write_csv(",
    "seed_jump(seed, ",
    "STREAM + i",
    "// sfcheck:seed-stream(",
    "0..8)",
    "// sfcheck:output-sink",
    "// sfcheck:metrics-report",
    "// sfcheck:volatile-field(ns)",
    "// sfcheck:parallel-entry",
    "// sfcheck:seed-derivation",
    "const S: u64 = 7;",
    "impl R {",
    "match x {",
    "=> ",
    "|| ",
    "if let Ok(v) = ",
    "self.",
    "v.ns",
    "\"volatile\"",
    // Lock-discipline flavor (v4): acquisitions, drops, blocking calls,
    // markers, and the control flow the CFG builder lowers.
    "static M: Mutex<u64> = Mutex::new(0);",
    "M.lock()",
    ".read()",
    ".write()",
    "RwLock::new(0)",
    "drop(g);",
    "let _ = ",
    "let g = ",
    "// sfcheck:lock-helper",
    "// sfcheck:io-blocking",
    "thread::scope(",
    ".join()",
    ".recv()",
    "loop {",
    "return;",
    "break;",
    "continue;",
];

/// The whole v3 stack — resolve, call graph, dataflow, taint, streams —
/// is total on garbage: seeded token soup in a consumer crate must never
/// panic any pass.
#[test]
fn v3_passes_never_panic_on_token_soup() {
    check::cases(256, |rng| {
        let mut soup = String::new();
        for _ in 0..rng.gen_range(0..32u32) {
            if rng.gen_bool(0.3) {
                soup.push_str(check::arbitrary_text(rng, 10).as_str());
            } else {
                soup.push_str(rng.choose(FRAGMENTS).expect("non-empty"));
            }
            if rng.gen_bool(0.3) {
                soup.push('\n');
            }
        }
        let ws = fixture_ws(&[("crates/core/src/lib.rs", soup.as_str())]);
        let cg = callgraph::build(&ws);
        let dirty: BTreeSet<usize> = (0..ws.files.len()).collect();
        let _ = dataflow::run_scoped(&ws, &cg, None);
        let _ = dataflow::run_scoped(&ws, &cg, Some(&dirty));
        let _ = taint::run(&ws, None);
        let _ = taint::run(&ws, Some(&dirty));
        let _ = taint::run_volatile(&ws);
        let _ = streams::run(&ws);
        let _ = locks::run(&ws, &cg, None);
        let _ = locks::run(&ws, &cg, Some(&dirty));
        // CFG totality: every parsed body builds, and the lowering
        // partitions statements — each lands in exactly one block, so the
        // block-wise count equals an independent recursive count.
        for id in 0..ws.fns.len() {
            if let Some(body) = ws.body_of(id) {
                let built = cfg::Cfg::build(body);
                assert_eq!(
                    built.stmt_count(),
                    cfg::lowered_stmt_count(body),
                    "CFG lost or duplicated a statement for fn {}",
                    ws.fns[id].qname
                );
            }
        }
    });
}

/// Scoping emission to a dirty subset never *invents* findings: the
/// scoped run's output is exactly the full run's, filtered to the subset.
#[test]
fn scoped_taint_run_is_a_filter_of_the_full_run() {
    let extra = [
        (
            "crates/core/src/lib.rs",
            "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
             let path = std::env::var(\"OUT\").unwrap_or_default();\nwrite_csv(&path);\n}",
        ),
        (
            "crates/ml/src/lib.rs",
            "use smartfeat_frame::csv::write_csv;\nuse smartfeat_par::resolve_threads;\n\
             pub fn fit() {\nlet n = resolve_threads(0);\nwrite_csv(n);\n}",
        ),
    ];
    let ws = fixture_ws(&extra);
    let full = taint::run(&ws, None);
    assert_eq!(full.len(), 2, "{full:?}");
    for only in 0..ws.files.len() {
        let dirty: BTreeSet<usize> = [only].into_iter().collect();
        let scoped = taint::run(&ws, Some(&dirty));
        let expected: Vec<_> = full
            .iter()
            .filter(|f| f.file == ws.files[only].rel_path)
            .collect();
        assert_eq!(scoped.iter().collect::<Vec<_>>(), expected, "file {only}");
    }
}

/// The fixture oracle: ~20 hand-verdicted workspaces. Each entry is the
/// fixture files plus the exact sorted lint-id list the v3 passes must
/// produce — derived by hand from the documented semantics, not from the
/// implementation.
#[test]
fn fixture_verdicts_match_hand_rolled_oracle() {
    type Fixture = (
        &'static str,
        &'static [(&'static str, &'static str)],
        &'static [&'static str],
    );
    const TAINT: &str = "determinism-taint";
    const STREAM: &str = "seed-stream-collision";
    const VOLATILE: &str = "obs-volatile-discipline";
    const FIXTURES: &[Fixture] = &[
        (
            "env read flowing to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
                 let path = std::env::var(\"OUT\").unwrap_or_default();\nwrite_csv(&path);\n}",
            )],
            &[TAINT],
        ),
        (
            "pure data to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\n\
                 pub fn dump(rows: &str) {\nwrite_csv(rows);\n}",
            )],
            &[],
        ),
        (
            "Instant::now flowing to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
                 let t = std::time::Instant::now();\nwrite_csv(t);\n}",
            )],
            &[TAINT],
        ),
        (
            "SystemTime::now flowing to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
                 let t = SystemTime::now();\nwrite_csv(t);\n}",
            )],
            &[TAINT],
        ),
        (
            "thread count flowing to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\nuse smartfeat_par::resolve_threads;\n\
                 pub fn dump() {\nlet n = resolve_threads(0);\nwrite_csv(n);\n}",
            )],
            &[TAINT],
        ),
        (
            "hash-map iteration order flowing to a sink",
            &[(
                "crates/core/src/lib.rs",
                "use std::collections::HashMap;\nuse smartfeat_frame::csv::write_csv;\n\
                 pub fn dump() {\nlet table: HashMap<String, u64> = HashMap::new();\n\
                 let joined = join(table.iter());\nwrite_csv(&joined);\n}\n\
                 fn join(it: String) -> String { it }",
            )],
            &[TAINT],
        ),
        (
            "taint through a value-preserving helper",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\n\
                 fn pick() -> String { std::env::var(\"OUT\").unwrap_or_default() }\n\
                 pub fn dump() {\nlet path = pick();\nwrite_csv(&path);\n}",
            )],
            &[TAINT],
        ),
        (
            "taint through a sink-forwarding wrapper",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\n\
                 fn emit(text: &str) { write_csv(text) }\npub fn dump() {\n\
                 let path = std::env::var(\"OUT\").unwrap_or_default();\nemit(&path);\n}",
            )],
            &[TAINT],
        ),
        (
            "helper returning a constant drops taint",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
                 let t = std::env::var(\"MODE\").unwrap_or_default();\n\
                 let n = label(t);\nwrite_csv(&n);\n}\n\
                 fn label(t: String) -> String { String::new() }",
            )],
            &[],
        ),
        (
            "parallel-entry blessing launders the thread count",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_par::{par_map, resolve_threads};\n\
                 use smartfeat_frame::csv::write_csv;\npub fn pipeline(rows: usize) {\n\
                 let threads = resolve_threads(0);\n\
                 let out = par_map(threads, rows, |i| i);\nwrite_csv(out);\n}",
            )],
            &[],
        ),
        (
            "env read in a binary is interface, not taint",
            &[(
                "crates/core/src/main.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn main() {\n\
                 let path = std::env::var(\"OUT\").unwrap_or_default();\nwrite_csv(&path);\n}",
            )],
            &[],
        ),
        (
            "env read inside the par crate is sanctioned",
            &[(
                "crates/par/src/threads.rs",
                "use smartfeat_frame::csv::write_csv;\npub fn dump() {\n\
                 let v = std::env::var(\"SMARTFEAT_THREADS\").unwrap_or_default();\n\
                 write_csv(&v);\n}",
            )],
            &[],
        ),
        (
            "tainted value into a non-sink stays local",
            &[(
                "crates/core/src/lib.rs",
                "pub fn tune() {\nlet t = std::env::var(\"MODE\").unwrap_or_default();\n\
                 let n = local(t);\n}\nfn local(t: String) -> usize { 0 }",
            )],
            &[],
        ),
        (
            "volatile field outside the volatile section",
            &[(
                "crates/obs/src/lib.rs",
                "pub struct WorkStat {\n// sfcheck:volatile-field(ns)\npub ns: u64,\n}\n\
                 pub struct Rec;\nimpl Rec {\n\
                 // sfcheck:metrics-report\n\
                 pub fn report(&self, v: WorkStat) -> u64 {\nlet leak = v.ns;\nleak\n}\n}",
            )],
            &[VOLATILE],
        ),
        (
            "volatile field kept inside the volatile statement",
            &[("crates/core/src/lib.rs", "pub fn nothing() {}")],
            &[],
        ),
        (
            "disjoint constant streams",
            &[
                (
                    "crates/core/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\npub const A_STREAM: u64 = 101;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, A_STREAM) }",
                ),
                (
                    "crates/ml/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, 7) }",
                ),
            ],
            &[],
        ),
        (
            "equal stream constants in two crates collide",
            &[
                (
                    "crates/core/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\npub const A_STREAM: u64 = 101;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, A_STREAM) }",
                ),
                (
                    "crates/ml/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\npub const B_STREAM: u64 = 101;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, B_STREAM) }",
                ),
            ],
            &[STREAM, STREAM],
        ),
        (
            "dynamic stream argument without a reserved range",
            &[(
                "crates/ml/src/lib.rs",
                "use smartfeat_rng::seed_jump;\npub fn run(seed: u64, i: u64) -> u64 {\n\
                 seed_jump(seed, i)\n}",
            )],
            &[STREAM],
        ),
        (
            "annotated dynamic family is a single clean claim",
            &[(
                "crates/ml/src/lib.rs",
                "use smartfeat_rng::seed_jump;\npub fn run(seed: u64, i: u64) -> u64 {\n\
                 // sfcheck:seed-stream(0..100) per-tree streams\n\
                 seed_jump(seed, i)\n}",
            )],
            &[],
        ),
        (
            "declared range overlapping a constant claim",
            &[
                (
                    "crates/core/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, 50) }",
                ),
                (
                    "crates/ml/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\npub fn run(seed: u64, i: u64) -> u64 {\n\
                     // sfcheck:seed-stream(0..100) per-tree streams\n\
                     seed_jump(seed, i)\n}",
                ),
            ],
            &[STREAM, STREAM],
        ),
        (
            "derived namespaces never claim root indices",
            &[(
                "crates/core/src/lib.rs",
                "use smartfeat_rng::seed_jump;\npub const E_STREAM: u64 = 211;\n\
                 pub fn run(seed: u64, g: u64) -> u64 {\n\
                 seed_jump(seed_jump(seed, E_STREAM), g)\n}",
            )],
            &[],
        ),
        (
            "taint and stream collision fire independently",
            &[
                (
                    "crates/core/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\nuse smartfeat_frame::csv::write_csv;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, 31) }\n\
                     pub fn dump() {\nlet p = std::env::var(\"OUT\").unwrap_or_default();\n\
                     write_csv(&p);\n}",
                ),
                (
                    "crates/ml/src/lib.rs",
                    "use smartfeat_rng::seed_jump;\n\
                     pub fn run(seed: u64) -> u64 { seed_jump(seed, 31) }",
                ),
            ],
            &[TAINT, STREAM, STREAM],
        ),
    ];

    let mut failures = Vec::new();
    for (name, extra, expected) in FIXTURES {
        let got = verdict(extra);
        let mut want: Vec<&str> = expected.to_vec();
        want.sort_unstable();
        if got != want {
            failures.push(format!("{name}: expected {want:?}, got {got:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "oracle mismatches:\n{}",
        failures.join("\n")
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/sfcheck sits two levels below the workspace root")
        .to_path_buf()
}

/// Write a small on-disk workspace that trips all three v3 lints, run the
/// full `run_check` pipeline over it, and pin the SARIF document against
/// a golden. This is the end-to-end contract: positions, rule metadata,
/// and message text for the new lints are all frozen here.
#[test]
fn sarif_golden_for_v3_lints() {
    let root = std::env::temp_dir().join(format!("sfcheck-v3-sarif-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let files: &[(&str, &str)] = &[
        (
            "crates/rng/Cargo.toml",
            "[package]\nname = \"smartfeat-rng\"\n",
        ),
        (
            "crates/par/Cargo.toml",
            "[package]\nname = \"smartfeat-par\"\n",
        ),
        (
            "crates/frame/Cargo.toml",
            "[package]\nname = \"smartfeat-frame\"\n",
        ),
        (
            "crates/obs/Cargo.toml",
            "[package]\nname = \"smartfeat-obs\"\n",
        ),
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"smartfeat\"\n",
        ),
        (
            "crates/ml/Cargo.toml",
            "[package]\nname = \"smartfeat-ml\"\n",
        ),
        ("crates/rng/src/lib.rs", RNG_SRC),
        ("crates/par/src/lib.rs", PAR_SRC),
        ("crates/frame/src/csv.rs", FRAME_SRC),
        (
            "crates/obs/src/lib.rs",
            "pub struct WorkStat {\n// sfcheck:volatile-field(ns)\npub ns: u64,\n}\n\
             pub struct Rec;\nimpl Rec {\n\
             // sfcheck:metrics-report\n\
             pub fn report(&self, v: WorkStat) -> u64 {\nlet leak = v.ns;\nleak\n}\n}",
        ),
        (
            "crates/core/src/lib.rs",
            "use smartfeat_rng::seed_jump;\nuse smartfeat_frame::csv::write_csv;\n\
             use smartfeat_par::resolve_threads;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, 41) }\n\
             pub fn dump() {\nlet n = resolve_threads(0);\nwrite_csv(n);\n}\n",
        ),
        (
            "crates/ml/src/lib.rs",
            "use smartfeat_rng::seed_jump;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, 41) }\n",
        ),
        // One waived finding per v4 lock lint, pinning the suppression
        // round-trip: the waiver reason must surface in the SARIF
        // `suppressions` justification for all four.
        (
            "crates/ml/src/locked.rs",
            "use std::sync::Mutex;\n\
             static ALPHA: Mutex<u64> = Mutex::new(0);\n\
             static BETA: Mutex<u64> = Mutex::new(0);\n\
             pub fn ordered() {\n\
             let a = ALPHA.lock().unwrap();\n\
             // sfcheck:allow(lock-order-inversion) fixture pins the suppression round-trip\n\
             let b = BETA.lock().unwrap();\n\
             drop(b);\ndrop(a);\n}\n\
             pub fn reversed() {\n\
             let b = BETA.lock().unwrap();\n\
             let a = ALPHA.lock().unwrap();\n\
             drop(a);\ndrop(b);\n}\n\
             pub fn twice() {\n\
             let a = ALPHA.lock().unwrap();\n\
             // sfcheck:allow(double-lock) fixture pins the suppression round-trip\n\
             let b = ALPHA.lock().unwrap();\n\
             drop(b);\ndrop(a);\n}\n\
             pub fn held(worker: std::thread::JoinHandle<()>) {\n\
             let a = ALPHA.lock().unwrap();\n\
             // sfcheck:allow(held-lock-blocking) fixture pins the suppression round-trip\n\
             let _r = worker.join();\n\
             drop(a);\n}\n\
             pub fn forgotten() {\n\
             // sfcheck:allow(guard-discipline) fixture pins the suppression round-trip\n\
             let _ = ALPHA.lock();\n}\n",
        ),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, text).expect("write fixture");
    }

    let mut opts = sfcheck::CheckOptions::new(&root);
    opts.no_cache = true;
    let outcome = sfcheck::run_check(&opts).expect("fixture scan runs");
    let _ = std::fs::remove_dir_all(&root);

    let lints: BTreeSet<&str> = outcome.findings.iter().map(|f| f.lint).collect();
    for lint in [
        "determinism-taint",
        "seed-stream-collision",
        "obs-volatile-discipline",
    ] {
        assert!(
            lints.contains(lint),
            "fixture must trip {lint}, got {lints:?}"
        );
    }
    // Each v4 lock lint must be tripped AND waived — the golden then
    // pins the waiver reason inside the `suppressions` justification.
    let waived: BTreeSet<&str> = outcome.waived.iter().map(|w| w.finding.lint).collect();
    for lint in [
        "double-lock",
        "guard-discipline",
        "held-lock-blocking",
        "lock-order-inversion",
    ] {
        assert!(
            waived.contains(lint),
            "fixture must waive one {lint} finding, got {waived:?}"
        );
        assert!(
            !lints.contains(lint),
            "every {lint} finding in the fixture should be waived"
        );
    }

    let sarif = outcome.sarif.emit();
    let golden_path = workspace_root().join("crates/sfcheck/tests/goldens/v3_lints.sarif.json");
    // sfcheck:allow(env-dependence) test-only bless knob; never reaches pipeline output
    if std::env::var("SFCHECK_BLESS").is_ok() {
        std::fs::write(&golden_path, &sarif).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with SFCHECK_BLESS=1",
            golden_path.display()
        )
    });
    assert_eq!(
        sarif, expected,
        "v3 SARIF drifted; if intentional, regenerate with \
         SFCHECK_BLESS=1 cargo test -p sfcheck --test v3_analysis"
    );
}
