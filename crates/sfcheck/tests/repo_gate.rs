//! The gate itself, as a test: the repository must be sfcheck-clean, and
//! the `--json` report must be byte-identical across runs and thread
//! counts (the tool's own output obeys the determinism contract it
//! enforces).

use std::path::{Path, PathBuf};
use std::process::Command;

use sfcheck::{run_check, CheckOptions};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/sfcheck sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn repository_is_clean() {
    let outcome = run_check(&CheckOptions::new(workspace_root())).expect("scan succeeds");
    assert!(
        outcome.clean(),
        "sfcheck found {} live finding(s); fix or waive them:\n{}",
        outcome.findings.len(),
        outcome
            .findings
            .iter()
            .map(sfcheck::report::human_line)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The shipped baseline is empty: nothing is grandfathered.
    assert!(
        outcome.baselined.is_empty(),
        "the checked-in baseline must stay empty"
    );
    // Every waiver carries a reason (the scanner enforces it; assert the
    // repo actually exercises the mechanism rather than having zero).
    assert!(!outcome.waived.is_empty());
    assert!(outcome.waived.iter().all(|w| !w.reason.is_empty()));
}

#[test]
fn empty_root_is_a_tool_error_not_a_pass() {
    let err = run_check(&CheckOptions::new("/nonexistent/sfcheck-root"))
        .expect_err("a root with no manifests must not scan clean");
    assert!(err.message.contains("not a workspace root"));
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let opts = CheckOptions::new(workspace_root());
    let a = run_check(&opts).expect("first run").report.emit();
    let b = run_check(&opts).expect("second run").report.emit();
    assert_eq!(a, b, "report emission must be deterministic");
}

/// Run the CLI binary end-to-end with one output flag under a given
/// `SMARTFEAT_THREADS` setting. Uses the binary cargo already built for
/// this test run (`CARGO_BIN_EXE_*`), so no nested cargo invocation
/// fights over the target-dir lock.
fn run_cli(flag: &str, threads: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_sfcheck"))
        .arg(flag)
        .arg("--root")
        .arg(workspace_root())
        .env("SMARTFEAT_THREADS", threads)
        .output()
        .expect("sfcheck binary runs");
    assert!(
        out.status.success(),
        "sfcheck {flag} exited {:?} under SMARTFEAT_THREADS={threads}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Golden matrix: the CLI binary, run end-to-end under different
/// `SMARTFEAT_THREADS` settings, must print byte-identical JSON.
#[test]
fn json_report_is_byte_identical_across_thread_counts() {
    let one = run_cli("--json", "1");
    let four = run_cli("--json", "4");
    let eight = run_cli("--json", "8");
    let one_again = run_cli("--json", "1");
    assert_eq!(one, four, "report differs between 1 and 4 threads");
    assert_eq!(one, eight, "report differs between 1 and 8 threads");
    assert_eq!(one, one_again, "report differs between repeated runs");
    // Sanity: the output is the report, not an empty stream.
    let text = String::from_utf8(one).expect("report is UTF-8");
    assert!(text.contains("\"summary\""));
}

/// Same matrix for the SARIF document: byte-identical across repeated
/// runs and across thread counts, and structurally a SARIF 2.1.0 file.
#[test]
fn sarif_document_is_byte_identical_across_thread_counts() {
    let one = run_cli("--sarif", "1");
    let four = run_cli("--sarif", "4");
    let eight = run_cli("--sarif", "8");
    let one_again = run_cli("--sarif", "1");
    assert_eq!(one, four, "SARIF differs between 1 and 4 threads");
    assert_eq!(one, eight, "SARIF differs between 1 and 8 threads");
    assert_eq!(one, one_again, "SARIF differs between repeated runs");
    let text = String::from_utf8(one).expect("SARIF is UTF-8");
    assert!(text.contains("\"version\":\"2.1.0\""));
    assert!(text.contains("\"name\":\"sfcheck\""));
}
