//! A tolerant recursive-descent parser from [`crate::lexer`] tokens to the
//! [`crate::ast`] tree.
//!
//! Design goals, in order:
//!
//! 1. **Never panic, never loop.** Every construct the parser does not
//!    understand is consumed as [`ast::Expr::Seq`] soup; every loop either
//!    consumes a token or breaks. The rng-driven fuzz harness holds the
//!    parser to this on arbitrary byte soup.
//! 2. **Never lose a call or closure.** The semantic lints walk the tree
//!    for call edges, rng constructors, and parallel-region closures, so
//!    arguments of calls, macros, struct literals, match arms, and nested
//!    blocks are all recursively parsed rather than skipped.
//! 3. **Bindings where capture analysis needs them.** `let` patterns,
//!    closure/fn parameters, `for` patterns, `if let`/`while let`
//!    patterns, and match-arm patterns record the names they bind, so
//!    free-variable (capture) analysis over closure bodies is possible
//!    without a full name-resolution pass.
//!
//! It is *not* a validating parser: precedence, type grammar, and most of
//! the pattern grammar are deliberately out of scope (see DESIGN.md §11
//! for the accepted approximations).

use crate::ast::{
    Block, ClosureExpr, Ctrl, Expr, File, FnItem, ImplBlock, Item, ItemKind, LetStmt, LitExpr,
    MacroExpr, ModItem, OtherItem, Param, PathExpr, Pos, SeqExpr, StaticItem, Stmt, UseItem,
    UseTarget,
};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Maximum recursion depth before the parser flattens the rest of the
/// current construct (guards against pathological nesting in fuzz input).
const MAX_DEPTH: u32 = 120;

/// Marker-comment prefix: `// sfcheck:parallel-entry`, `// sfcheck:seed-derivation`.
const MARKER_PREFIX: &str = "sfcheck:";

/// Parse a token stream (as produced by [`crate::lexer::lex`], comments
/// included) into a [`File`]. Infallible by construction.
pub fn parse(tokens: &[Token]) -> File {
    let mut code: Vec<Token> = Vec::with_capacity(tokens.len());
    let mut markers: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for t in tokens {
        if t.is_code() {
            code.push(t.clone());
        } else if t.kind == TokenKind::LineComment {
            // `// sfcheck:<name>` (not `allow(...)`) is a marker that
            // attaches to the next item.
            let body = t.text.trim_start_matches('/').trim();
            if let Some(rest) = body.strip_prefix(MARKER_PREFIX) {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !name.is_empty() && name != "allow" {
                    markers.entry(code.len()).or_default().push(name);
                }
            }
        }
    }
    let mut p = Parser {
        code,
        i: 0,
        markers,
        depth: 0,
    };
    let items = p.items_until(None);
    File { items }
}

struct Parser {
    code: Vec<Token>,
    i: usize,
    /// Markers keyed by the code-token index they precede.
    markers: BTreeMap<usize, Vec<String>>,
    depth: u32,
}

impl Parser {
    // ---- token primitives -------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.code.get(self.i)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.code.get(self.i + n)
    }

    fn text(&self) -> &str {
        self.peek().map(|t| t.text.as_str()).unwrap_or("")
    }

    fn text_at(&self, n: usize) -> &str {
        self.peek_at(n).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.text() == s {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn pos_here(&self) -> Pos {
        self.peek()
            .map(|t| Pos {
                line: t.line,
                col: t.col,
            })
            .unwrap_or_default()
    }

    fn offset_here(&self) -> u32 {
        self.peek()
            .map(|t| t.offset)
            .unwrap_or_else(|| self.code.last().map(|t| t.offset + t.len).unwrap_or(0))
    }

    fn span_from(&self, start: u32) -> std::ops::Range<u32> {
        let end = if self.i == 0 {
            start
        } else {
            self.code
                .get(self.i - 1)
                .map(|t| t.offset + t.len)
                .unwrap_or(start)
        };
        start..end.max(start)
    }

    /// Consume one balanced `(…)`, `[…]`, or `{…}` group (opening token
    /// under the cursor), tolerating EOF.
    fn skip_balanced(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    self.i += 1;
                    if depth == 0 {
                        return;
                    }
                    continue;
                }
                _ => {}
            }
            self.i += 1;
            if depth == 0 {
                return;
            }
        }
    }

    /// Consume a balanced `<…>` run (turbofish / generics).
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    self.i += 1;
                    if depth == 0 {
                        return;
                    }
                    continue;
                }
                "(" | "[" | "{" => {
                    self.skip_balanced();
                    continue;
                }
                ";" => return, // a `;` inside angles means we misjudged
                _ => {}
            }
            self.i += 1;
            if depth == 0 {
                return;
            }
        }
    }

    fn take_markers(&mut self, lo: usize, hi: usize) -> Vec<String> {
        let keys: Vec<usize> = self.markers.range(lo..=hi).map(|(k, _)| *k).collect();
        let mut out = Vec::new();
        for k in keys {
            if let Some(mut v) = self.markers.remove(&k) {
                out.append(&mut v);
            }
        }
        out
    }

    // ---- attributes -------------------------------------------------------

    /// Parse any run of `#[…]` / `#![…]` attributes; outer attribute texts
    /// are returned flattened, inner ones discarded.
    fn parse_attrs(&mut self) -> Vec<String> {
        let mut attrs = Vec::new();
        while self.text() == "#" {
            let inner = self.text_at(1) == "!";
            let bracket_at = if inner { 2 } else { 1 };
            if self.text_at(bracket_at) != "[" {
                break;
            }
            self.i += bracket_at; // `#` (+ `!`)
            let start = self.i;
            self.skip_balanced(); // the `[...]` group
            if !inner {
                // Flatten the tokens between the brackets.
                let body: Vec<&str> = self.code[start + 1..self.i.saturating_sub(1)]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                attrs.push(join_tokens(&body));
            }
        }
        attrs
    }

    // ---- items ------------------------------------------------------------

    fn items_until(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        if self.depth >= MAX_DEPTH {
            // Too deep: flatten the remainder of this group.
            while let Some(t) = self.peek() {
                if Some(t.text.as_str()) == closer {
                    self.i += 1;
                    return items;
                }
                if matches!(t.text.as_str(), "(" | "[" | "{") {
                    self.skip_balanced();
                } else {
                    self.i += 1;
                }
            }
            return items;
        }
        self.depth += 1;
        loop {
            match self.peek() {
                None => break,
                Some(t) if Some(t.text.as_str()) == closer => {
                    self.i += 1;
                    break;
                }
                Some(t) if t.text == ";" => {
                    self.i += 1;
                    continue;
                }
                _ => {}
            }
            let before = self.i;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.i == before {
                self.i += 1; // unknown token: skip, keep walking
            }
        }
        self.depth -= 1;
        items
    }

    /// Parse one item if the cursor is at something item-shaped.
    fn parse_item(&mut self) -> Option<Item> {
        let start_idx = self.i;
        let start = self.offset_here();
        let pos = self.pos_here();
        let attrs = self.parse_attrs();

        // Visibility and fn-qualifier prefixes.
        let mut is_pub = false;
        loop {
            if self.is_ident("pub") {
                is_pub = true;
                self.i += 1;
                if self.text() == "(" {
                    self.skip_balanced(); // pub(crate), pub(in …)
                }
                continue;
            }
            if (self.is_ident("const") && self.text_at(1) == "fn")
                || (self.is_ident("async") && matches!(self.text_at(1), "fn" | "unsafe"))
                || (self.is_ident("unsafe") && matches!(self.text_at(1), "fn" | "extern" | "impl"))
                || (self.is_ident("default") && self.text_at(1) == "fn")
            {
                self.i += 1;
                continue;
            }
            if self.is_ident("extern")
                && self.peek_at(1).is_some_and(|t| t.kind == TokenKind::StrLit)
                && self.text_at(2) == "fn"
            {
                self.i += 2;
                continue;
            }
            break;
        }

        let kw = self.peek()?.clone();
        if kw.kind != TokenKind::Ident {
            // Not an item; let the caller treat the token as soup.
            return None;
        }
        let kind = match kw.text.as_str() {
            "fn" => ItemKind::Fn(self.parse_fn(is_pub)),
            "use" => ItemKind::Use(self.parse_use()),
            "impl" => ItemKind::Impl(self.parse_impl()),
            "mod" => ItemKind::Mod(self.parse_mod()),
            "static" => ItemKind::Static(self.parse_static()),
            "struct" | "enum" | "union" | "trait" | "type" | "const" | "macro_rules" | "extern"
            | "macro" => {
                self.i += 1; // the keyword
                if kw.text == "macro_rules" {
                    self.eat("!");
                }
                let name = self
                    .peek()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                if name.is_some() {
                    self.i += 1;
                }
                self.skip_item_rest();
                ItemKind::Other(OtherItem {
                    keyword: kw.text.clone(),
                    name,
                })
            }
            _ => return None,
        };
        let header_end = self.i.min(self.code.len());
        let markers = self.take_markers(start_idx, header_end.saturating_sub(1));
        Some(Item {
            kind,
            span: self.span_from(start),
            pos,
            attrs,
            markers,
        })
    }

    /// Skip the remainder of an unmodelled item: through the first
    /// balanced `{…}` group, or to a `;` at depth 0, whichever first.
    fn skip_item_rest(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.i += 1;
                    return;
                }
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                "<" => self.skip_angles(),
                "}" => return, // enclosing group's closer: stop before it
                _ => self.i += 1,
            }
        }
    }

    fn parse_fn(&mut self, is_pub: bool) -> FnItem {
        self.i += 1; // `fn`
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => String::from("?"),
        };
        // Generics: idents at depth 1 directly after `<` or `,`.
        let mut generics = Vec::new();
        if self.text() == "<" {
            let mut depth = 0usize;
            let mut after_sep = false;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "<" => {
                        depth += 1;
                        after_sep = depth == 1;
                    }
                    ">" => {
                        depth = depth.saturating_sub(1);
                        self.i += 1;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    "," => after_sep = depth == 1,
                    _ => {
                        if after_sep && t.kind == TokenKind::Ident && t.text != "const" {
                            generics.push(t.text.clone());
                        }
                        after_sep = false;
                    }
                }
                self.i += 1;
            }
        }
        // Parameters.
        let mut params = Vec::new();
        if self.text() == "(" {
            self.i += 1;
            while self.peek().is_some() && self.text() != ")" {
                params.push(self.parse_param());
                if !self.eat(",") && self.text() != ")" {
                    self.i += 1; // tolerate junk
                }
            }
            self.eat(")");
        }
        // Return type + where clause: skip to the body or `;`.
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" | ";" => break,
                "(" | "[" => self.skip_balanced(),
                "<" => self.skip_angles(),
                "}" => break,
                _ => self.i += 1,
            }
        }
        let body = if self.text() == "{" {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        FnItem {
            name,
            is_pub,
            generics,
            params,
            body,
        }
    }

    /// One parameter: pattern `:` type, or a `self` receiver.
    fn parse_param(&mut self) -> Param {
        // Pattern part: up to a depth-0 `:` or the end of the parameter.
        let mut name = String::new();
        let mut saw_colon = false;
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => break,
                ":" if depth == 0 && self.text_at(1) != ":" => {
                    saw_colon = true;
                    self.i += 1;
                    break;
                }
                _ => {
                    if t.kind == TokenKind::Ident && name.is_empty() && t.text != "mut" {
                        name = t.text.clone();
                    }
                }
            }
            self.i += 1;
        }
        // Type part: flatten tokens, note leading `& mut`.
        let ty_start = self.i;
        if saw_colon {
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," if depth == 0 => break,
                    "<" => {
                        self.skip_angles();
                        continue;
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
        let ty_toks: Vec<&str> = self.code[ty_start..self.i]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let by_mut_ref = (ty_toks.first() == Some(&"&")
            && (ty_toks.get(1) == Some(&"mut")
                || self.code[ty_start..self.i]
                    .iter()
                    .skip(1)
                    .find(|t| t.kind != TokenKind::Lifetime)
                    .is_some_and(|t| t.text == "mut")))
            || (!saw_colon && name == "self" && {
                // `&mut self` receiver: look back over the pattern tokens.
                let mut j = ty_start;
                let mut is_mut = false;
                while j > 0 {
                    j -= 1;
                    match self.code.get(j).map(|t| t.text.as_str()) {
                        Some("self") | Some("mut") => {
                            is_mut |= self.code[j].text == "mut";
                        }
                        Some("&") | Some("'") => {}
                        _ => break,
                    }
                }
                is_mut
            });
        if name.is_empty() {
            name = String::from("_");
        }
        Param {
            name,
            ty: join_tokens(&ty_toks),
            by_mut_ref,
        }
    }

    fn parse_use(&mut self) -> UseItem {
        self.i += 1; // `use`
        let mut targets = Vec::new();
        self.parse_use_tree(Vec::new(), &mut targets);
        self.eat(";");
        UseItem { targets }
    }

    fn parse_use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<UseTarget>) {
        if self.depth >= MAX_DEPTH {
            self.skip_item_rest();
            return;
        }
        self.depth += 1;
        let mut path = prefix;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    path.push(t.text.clone());
                    self.i += 1;
                }
                Some(t) if t.text == "*" => {
                    self.i += 1;
                    out.push(UseTarget {
                        path: path.clone(),
                        alias: "*".into(),
                    });
                    self.depth -= 1;
                    return;
                }
                Some(t) if t.text == "{" => {
                    self.i += 1;
                    while self.peek().is_some() && self.text() != "}" {
                        self.parse_use_tree(path.clone(), out);
                        if !self.eat(",") && self.text() != "}" {
                            self.i += 1;
                        }
                    }
                    self.eat("}");
                    self.depth -= 1;
                    return;
                }
                _ => break,
            }
            if self.text() == ":" && self.text_at(1) == ":" {
                self.i += 2;
                continue;
            }
            break;
        }
        self.depth -= 1;
        if path.is_empty() {
            return;
        }
        let alias = if self.is_ident("as") {
            self.i += 1;
            let a = self.text().to_string();
            if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                self.i += 1;
            }
            a
        } else {
            path.last().cloned().unwrap_or_default()
        };
        out.push(UseTarget { path, alias });
    }

    fn parse_impl(&mut self) -> ImplBlock {
        self.i += 1; // `impl`
        if self.text() == "<" {
            self.skip_angles();
        }
        // Collect header tokens up to the body / where clause, noting a
        // top-level `for` separating trait from self type.
        let mut pre_for: Vec<String> = Vec::new();
        let mut post_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" | ";" => break,
                "where" if t.kind == TokenKind::Ident => {
                    // Skip the where clause.
                    while self.peek().is_some() && !matches!(self.text(), "{" | ";") {
                        if self.text() == "<" {
                            self.skip_angles();
                        } else if matches!(self.text(), "(" | "[") {
                            self.skip_balanced();
                        } else {
                            self.i += 1;
                        }
                    }
                    break;
                }
                "for" if t.kind == TokenKind::Ident => {
                    saw_for = true;
                    self.i += 1;
                }
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ => {
                    if t.kind == TokenKind::Ident {
                        if saw_for {
                            post_for.push(t.text.clone());
                        } else {
                            pre_for.push(t.text.clone());
                        }
                    }
                    self.i += 1;
                }
            }
        }
        let (trait_name, ty_name) = if saw_for {
            (pre_for.last().cloned(), post_for.last().cloned())
        } else {
            (None, pre_for.last().cloned())
        };
        let items = if self.text() == "{" {
            self.i += 1;
            self.items_until(Some("}"))
        } else {
            self.eat(";");
            Vec::new()
        };
        ImplBlock {
            ty_name: ty_name.unwrap_or_else(|| "?".into()),
            trait_name,
            items,
        }
    }

    fn parse_mod(&mut self) -> ModItem {
        self.i += 1; // `mod`
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => String::from("?"),
        };
        let items = if self.text() == "{" {
            self.i += 1;
            Some(self.items_until(Some("}")))
        } else {
            self.eat(";");
            None
        };
        ModItem { name, items }
    }

    fn parse_static(&mut self) -> StaticItem {
        self.i += 1; // `static`
        let mutable = self.is_ident("mut") && {
            self.i += 1;
            true
        };
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => String::from("?"),
        };
        // Declared type: everything between `:` and a depth-0 `=`/`;`.
        let ty = if self.eat(":") {
            let ty_start = self.i;
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "<" => {
                        self.skip_angles();
                        continue;
                    }
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                self.i += 1;
            }
            let toks: Vec<&str> = self.code[ty_start..self.i]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            join_tokens(&toks)
        } else {
            String::new()
        };
        self.skip_item_rest();
        StaticItem { name, mutable, ty }
    }

    // ---- statements and blocks -------------------------------------------

    /// Parse a `{ … }` block (cursor on the opening brace).
    fn parse_block(&mut self) -> Block {
        let start = self.offset_here();
        if self.depth >= MAX_DEPTH {
            self.skip_balanced();
            return Block {
                stmts: Vec::new(),
                span: self.span_from(start),
            };
        }
        self.depth += 1;
        self.eat("{");
        let mut stmts = Vec::new();
        loop {
            match self.text() {
                "" => break,
                "}" => {
                    self.i += 1;
                    break;
                }
                ";" | "," => {
                    self.i += 1;
                    continue;
                }
                _ => {}
            }
            let before = self.i;
            let attrs = self.parse_attrs();
            match self.text() {
                "let" if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) => {
                    stmts.push(Stmt::Let(self.parse_let()));
                }
                "fn" | "use" | "struct" | "enum" | "union" | "impl" | "mod" | "trait"
                | "static" | "type" | "macro_rules"
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) =>
                {
                    if let Some(mut item) = self.parse_item() {
                        item.attrs = attrs;
                        stmts.push(Stmt::Item(item));
                    }
                }
                "const"
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Ident)
                        && self.text_at(1) != "{" =>
                {
                    if let Some(mut item) = self.parse_item() {
                        item.attrs = attrs;
                        stmts.push(Stmt::Item(item));
                    }
                }
                "pub" if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) => {
                    if let Some(mut item) = self.parse_item() {
                        item.attrs = attrs;
                        stmts.push(Stmt::Item(item));
                    }
                }
                _ => {
                    let e = self.parse_expr_in(&[], true);
                    stmts.push(Stmt::Expr(e));
                }
            }
            if self.i == before {
                self.i += 1;
            }
        }
        self.depth -= 1;
        Block {
            stmts,
            span: self.span_from(start),
        }
    }

    fn parse_let(&mut self) -> LetStmt {
        let start = self.offset_here();
        let pos = self.pos_here();
        self.i += 1; // `let`
        let mutable = self.is_ident("mut") && {
            self.i += 1;
            true
        };
        // Pattern: everything to a depth-0 `:`, `=`, or `;`.
        let mut bound = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ":" if depth == 0 && self.text_at(1) != ":" => break,
                "=" | ";" if depth == 0 => break,
                _ => {
                    // An ident before `:` is a struct-pattern field label
                    // (`Point { x: px }`) — except at depth 0, where a
                    // single `:` is the let's type annotation and the
                    // ident is the binding itself (`let x: T = …`).
                    let field_label =
                        self.text_at(1) == ":" && (depth > 0 || self.text_at(2) == ":");
                    if t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "_")
                        && !field_label
                        && !matches!(self.text_at(1), "(" | "{" | "!")
                        && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
                    {
                        bound.push(t.text.clone());
                    }
                }
            }
            self.i += 1;
        }
        let name = bound.first().cloned().unwrap_or_else(|| "_".into());
        // Optional type annotation.
        let ty_start = if self.eat(":") { Some(self.i) } else { None };
        if ty_start.is_some() {
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "<" => {
                        self.skip_angles();
                        continue;
                    }
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                self.i += 1;
            }
        }
        let ty = ty_start
            .map(|s| {
                let toks: Vec<&str> = self.code[s..self.i]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                join_tokens(&toks)
            })
            .unwrap_or_default();
        // Initializer (with let-else support).
        let init = if self.eat("=") {
            let mut e = self.parse_expr(&["else"]);
            if self.is_ident("else") {
                self.i += 1;
                if self.text() == "{" {
                    let b = self.parse_block();
                    let span = e.span().start..b.span.end;
                    e = Expr::Seq(SeqExpr {
                        children: vec![e, Expr::Block(b)],
                        binds: Vec::new(),
                        ctrl: Ctrl::None,
                        span,
                        pos,
                    });
                }
            }
            Some(e)
        } else {
            None
        };
        self.eat(";");
        LetStmt {
            name,
            bound,
            mutable,
            ty,
            init,
            pos,
            span: self.span_from(start),
        }
    }

    // ---- expressions ------------------------------------------------------

    /// Parse an expression run. Stops (without consuming) at `;`, `,`, a
    /// closing delimiter, or any text in `extra` at nesting depth 0.
    fn parse_expr(&mut self, extra: &[&str]) -> Expr {
        self.parse_expr_in(extra, false)
    }

    /// [`Self::parse_expr`] with statement-position semantics: when
    /// `stmt` is set, a block-ending operand (`match`/`if`/`for`/`loop`/
    /// block, i.e. one whose last consumed token is `}`) terminates the
    /// expression unless a `.`/`?`/`else` continuation follows — matching
    /// Rust's rule that block expressions end statements without `;`.
    fn parse_expr_in(&mut self, extra: &[&str], stmt: bool) -> Expr {
        let start = self.offset_here();
        let pos = self.pos_here();
        if self.depth >= MAX_DEPTH {
            // Flatten: consume to a terminator without recursing.
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    ";" | "," | ")" | "]" | "}" => break,
                    s if extra.contains(&s) => break,
                    "(" | "[" | "{" => self.skip_balanced(),
                    _ => self.i += 1,
                }
            }
            return Expr::Seq(SeqExpr {
                children: Vec::new(),
                binds: Vec::new(),
                ctrl: Ctrl::None,
                span: self.span_from(start),
                pos,
            });
        }
        self.depth += 1;
        let mut children: Vec<Expr> = Vec::new();
        let mut expect_operand = true;
        while let Some(t) = self.peek() {
            let text = t.text.as_str();
            if matches!(text, ";" | "," | ")" | "]" | "}") || extra.contains(&text) {
                break;
            }
            if expect_operand {
                match self.parse_operand(extra) {
                    Some(e) => {
                        children.push(e);
                        expect_operand = false;
                        if stmt
                            && self.i > 0
                            && self.code.get(self.i - 1).is_some_and(|t| t.text == "}")
                            && !matches!(self.text(), "." | "?")
                            && !self.is_ident("else")
                        {
                            break;
                        }
                    }
                    None => {
                        self.i += 1; // soup token; stay in operand position
                    }
                }
            } else {
                // Operator position: consume one operator token (or an
                // `as`-cast's type) and return to operand position.
                if self.is_ident("as") {
                    self.i += 1;
                    self.skip_type_path();
                    expect_operand = false;
                    continue;
                }
                // `||` lexes as two `|` tokens; consume both here so the
                // second is not mistaken for a closure opener.
                let was_pipe = text == "|";
                self.i += 1;
                if was_pipe && self.text() == "|" {
                    self.i += 1;
                }
                expect_operand = true;
            }
        }
        self.depth -= 1;
        if children.len() == 1 {
            match children.pop() {
                Some(e) => e,
                None => Expr::Seq(SeqExpr::default()),
            }
        } else {
            Expr::Seq(SeqExpr {
                children,
                binds: Vec::new(),
                ctrl: Ctrl::None,
                span: self.span_from(start),
                pos,
            })
        }
    }

    /// Skip a type-ish path after `as` (idents, `::`, balanced generics).
    fn skip_type_path(&mut self) {
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => self.i += 1,
                Some(t) if t.text == "&" || t.text == "*" => {
                    self.i += 1;
                    continue;
                }
                _ => return,
            }
            if self.text() == ":" && self.text_at(1) == ":" {
                self.i += 2;
                continue;
            }
            if self.text() == "<" {
                self.skip_angles();
            }
            return;
        }
    }

    /// Parse one operand (with its postfix chain). `None` when the cursor
    /// is not at anything operand-shaped (caller skips the token as soup).
    fn parse_operand(&mut self, terms: &[&str]) -> Option<Expr> {
        let t = self.peek()?;
        let start = t.offset;
        let pos = Pos {
            line: t.line,
            col: t.col,
        };
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "if" | "while" => Some(self.parse_conditional(start, pos)),
                "for" => Some(self.parse_for(start, pos)),
                "loop" => {
                    self.i += 1;
                    if self.text() == "{" {
                        let body = Expr::Block(self.parse_block());
                        Some(Expr::Seq(SeqExpr {
                            children: vec![body],
                            binds: Vec::new(),
                            ctrl: Ctrl::Loop,
                            span: self.span_from(start),
                            pos,
                        }))
                    } else {
                        Some(self.empty_seq(start, pos))
                    }
                }
                "match" => Some(self.parse_match(start, pos)),
                "unsafe" | "async" => {
                    self.i += 1;
                    if self.is_ident("move") {
                        self.i += 1;
                    }
                    if self.text() == "{" {
                        Some(Expr::Block(self.parse_block()))
                    } else {
                        Some(self.empty_seq(start, pos))
                    }
                }
                "move" => {
                    self.i += 1;
                    if self.text() == "|" {
                        Some(self.parse_closure(true, start, pos, terms))
                    } else {
                        Some(self.empty_seq(start, pos))
                    }
                }
                kw @ ("return" | "break" | "continue" | "yield") => {
                    let ctrl = match kw {
                        "return" | "yield" => Ctrl::Return,
                        "break" => Ctrl::Break,
                        _ => Ctrl::Continue,
                    };
                    self.i += 1;
                    // A value may follow; if a terminator follows, this is
                    // the whole operand.
                    let value = match self.peek() {
                        Some(n)
                            if !matches!(n.text.as_str(), ";" | "," | ")" | "]" | "}")
                                && !terms.contains(&n.text.as_str()) =>
                        {
                            self.parse_operand(terms)
                        }
                        _ => None,
                    };
                    Some(Expr::Seq(SeqExpr {
                        children: value.into_iter().collect(),
                        binds: Vec::new(),
                        ctrl,
                        span: self.span_from(start),
                        pos,
                    }))
                }
                "let" => {
                    // Let-chain / malformed: consume the keyword as soup.
                    self.i += 1;
                    Some(self.empty_seq(start, pos))
                }
                _ => {
                    let path = self.parse_path(pos);
                    self.finish_path_operand(path, start, pos, terms)
                }
            },
            TokenKind::StrLit | TokenKind::RawStrLit | TokenKind::CharLit | TokenKind::NumLit => {
                let lit = Expr::Lit(LitExpr {
                    text: t.text.clone(),
                    span: t.span().start as u32..t.span().end as u32,
                    pos,
                });
                self.i += 1;
                Some(self.parse_postfix(lit, start, terms))
            }
            TokenKind::Lifetime => {
                // Loop label `'x: loop { … }`.
                self.i += 1;
                self.eat(":");
                self.parse_operand(terms)
                    .or_else(|| Some(self.empty_seq(start, pos)))
            }
            TokenKind::Punct => match t.text.as_str() {
                "|" => Some(self.parse_closure(false, start, pos, terms)),
                "&" | "*" | "!" | "-" => {
                    self.i += 1;
                    while self.is_ident("mut") || matches!(self.text(), "&" | "*" | "!" | "-") {
                        self.i += 1;
                    }
                    self.parse_operand(terms)
                        .or_else(|| Some(self.empty_seq(start, pos)))
                }
                "(" => {
                    let group = self.parse_group("(", ")", start, pos);
                    Some(self.parse_postfix(group, start, terms))
                }
                "[" => {
                    let group = self.parse_group("[", "]", start, pos);
                    Some(self.parse_postfix(group, start, terms))
                }
                "{" => Some(Expr::Block(self.parse_block())),
                _ => None,
            },
            _ => None,
        }
    }

    fn empty_seq(&self, start: u32, pos: Pos) -> Expr {
        Expr::Seq(SeqExpr {
            children: Vec::new(),
            binds: Vec::new(),
            ctrl: Ctrl::None,
            span: self.span_from(start),
            pos,
        })
    }

    /// `if`/`while`, including the `let`-pattern forms.
    fn parse_conditional(&mut self, start: u32, pos: Pos) -> Expr {
        let ctrl = if self.is_ident("while") {
            Ctrl::While
        } else {
            Ctrl::If
        };
        self.i += 1; // if / while
        let mut binds = Vec::new();
        if self.is_ident("let") {
            self.i += 1;
            binds = self.parse_pattern_binds(&["="]);
            self.eat("=");
        }
        let mut children = vec![self.parse_expr(&["{"])];
        if self.text() == "{" {
            children.push(Expr::Block(self.parse_block()));
        }
        if self.is_ident("else") {
            self.i += 1;
            if self.is_ident("if") {
                children.push(self.parse_conditional(start, pos));
            } else if self.text() == "{" {
                children.push(Expr::Block(self.parse_block()));
            }
        }
        Expr::Seq(SeqExpr {
            children,
            binds,
            ctrl,
            span: self.span_from(start),
            pos,
        })
    }

    fn parse_for(&mut self, start: u32, pos: Pos) -> Expr {
        self.i += 1; // for
        let binds = self.parse_pattern_binds(&["in"]);
        self.eat("in");
        let mut children = vec![self.parse_expr(&["{"])];
        if self.text() == "{" {
            children.push(Expr::Block(self.parse_block()));
        }
        Expr::Seq(SeqExpr {
            children,
            binds,
            ctrl: Ctrl::For,
            span: self.span_from(start),
            pos,
        })
    }

    fn parse_match(&mut self, start: u32, pos: Pos) -> Expr {
        self.i += 1; // match
        let mut children = vec![self.parse_expr(&["{"])];
        if self.text() == "{" {
            self.i += 1;
            // Arms: pattern (with binds) `=>` expr `,`
            loop {
                match self.text() {
                    "" => break,
                    "}" => {
                        self.i += 1;
                        break;
                    }
                    "," => {
                        self.i += 1;
                        continue;
                    }
                    _ => {}
                }
                let before = self.i;
                let arm_start = self.offset_here();
                let arm_pos = self.pos_here();
                let binds = self.parse_pattern_binds(&[]);
                // `=>` lexes as `=` `>`.
                if self.text() == "=" && self.text_at(1) == ">" {
                    self.i += 2;
                }
                let body = self.parse_expr(&[]);
                children.push(Expr::Seq(SeqExpr {
                    children: vec![body],
                    binds,
                    ctrl: Ctrl::Arm,
                    span: self.span_from(arm_start),
                    pos: arm_pos,
                }));
                if self.i == before {
                    self.i += 1;
                }
            }
        }
        Expr::Seq(SeqExpr {
            children,
            binds: Vec::new(),
            ctrl: Ctrl::Match,
            span: self.span_from(start),
            pos,
        })
    }

    /// Collect identifiers bound by a pattern, consuming tokens up to a
    /// depth-0 `=>`, `=`, `{`, or any text in `stops`. Path segments
    /// (`Enum::Variant`) and segments directly followed by `::`, `(`, or
    /// `{` are constructors, not bindings, and are skipped.
    fn parse_pattern_binds(&mut self, stops: &[&str]) -> Vec<String> {
        let mut binds = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            let text = t.text.as_str();
            if depth == 0 {
                if stops.contains(&text) {
                    break;
                }
                if text == "=" && self.text_at(1) == ">" {
                    break;
                }
                if text == "{" && !self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    // A bare `{` at depth 0 would be a body, not a pattern
                    // struct — only struct patterns (ident then `{`) nest.
                    break;
                }
                if matches!(text, ";" | ")" | "]" | "}") {
                    break;
                }
                if text == "if" && t.kind == TokenKind::Ident {
                    // Match-arm guard: the guard expression is not pattern.
                    // Consume it as soup up to `=>`.
                    self.i += 1;
                    while let Some(g) = self.peek() {
                        if g.text == "=" && self.text_at(1) == ">" {
                            break;
                        }
                        if matches!(g.text.as_str(), ";" | "}") {
                            break;
                        }
                        if matches!(g.text.as_str(), "(" | "[" | "{") {
                            self.skip_balanced();
                        } else {
                            self.i += 1;
                        }
                    }
                    break;
                }
            }
            match text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                _ => {
                    // Lowercase-initial idents not followed by constructor
                    // syntax are bindings; uppercase ones are variants and
                    // types by Rust convention.
                    if t.kind == TokenKind::Ident
                        && !matches!(text, "mut" | "ref" | "box" | "_")
                        && self.text_at(1) != ":"
                        && !matches!(self.text_at(1), "(" | "{" | "!")
                        && !text.starts_with(|c: char| c.is_ascii_uppercase())
                    {
                        binds.push(t.text.clone());
                    }
                }
            }
            self.i += 1;
        }
        binds.sort();
        binds.dedup();
        binds
    }

    /// Parse a path: `seg (:: seg | ::<…>)*` with the cursor on the first
    /// segment (an identifier).
    fn parse_path(&mut self, pos: Pos) -> PathExpr {
        let start = self.offset_here();
        let mut segments = Vec::new();
        if let Some(t) = self.peek() {
            segments.push(t.text.clone());
            self.i += 1;
        }
        loop {
            if self.text() == ":" && self.text_at(1) == ":" {
                if self.text_at(2) == "<" {
                    self.i += 2;
                    self.skip_angles();
                    continue;
                }
                if self.peek_at(2).is_some_and(|t| t.kind == TokenKind::Ident) {
                    segments.push(self.text_at(2).to_string());
                    self.i += 3;
                    continue;
                }
            }
            break;
        }
        PathExpr {
            segments,
            span: self.span_from(start),
            pos,
        }
    }

    /// After a path operand: macro bang, struct literal, or postfix chain.
    fn finish_path_operand(
        &mut self,
        path: PathExpr,
        start: u32,
        pos: Pos,
        terms: &[&str],
    ) -> Option<Expr> {
        // Macro invocation.
        if self.text() == "!" && matches!(self.text_at(1), "(" | "[" | "{") {
            self.i += 1; // !
            let args = match self.text() {
                "(" => self.parse_call_args("(", ")"),
                "[" => self.parse_call_args("[", "]"),
                _ => {
                    // Brace macro: parse as a block so nested closures and
                    // calls are still visited.
                    vec![Expr::Block(self.parse_block())]
                }
            };
            let mac = Expr::Macro(MacroExpr {
                segments: path.segments,
                args,
                span: self.span_from(start),
                pos,
            });
            return Some(self.parse_postfix(mac, start, terms));
        }
        // Struct literal `Path { … }` — only when `{` is not a block
        // terminator in this context (control-flow headers pass `{`).
        let mut expr = Expr::Path(path);
        if self.text() == "{" && !terms.contains(&"{") {
            let body = self.parse_block();
            let span = expr.span().start..body.span.end;
            expr = Expr::Seq(SeqExpr {
                children: vec![expr, Expr::Block(body)],
                binds: Vec::new(),
                ctrl: Ctrl::None,
                span,
                pos,
            });
        }
        Some(self.parse_postfix(expr, start, terms))
    }

    /// Postfix chain: calls, method calls, fields, indexing, `?`.
    fn parse_postfix(&mut self, mut expr: Expr, start: u32, terms: &[&str]) -> Expr {
        loop {
            match self.text() {
                "(" => {
                    let args = self.parse_call_args("(", ")");
                    let pos = expr.pos();
                    expr = Expr::Call(
                        CallExprParts {
                            callee: expr,
                            args,
                            span: self.span_from(start),
                            pos,
                        }
                        .into(),
                    );
                }
                "[" => {
                    self.i += 1;
                    let index = self.parse_expr(&[]);
                    self.eat("]");
                    let pos = expr.pos();
                    expr = Expr::Index(crate::ast::IndexExpr {
                        base: Box::new(expr),
                        index: Box::new(index),
                        span: self.span_from(start),
                        pos,
                    });
                }
                "." => {
                    let name_tok = self.peek_at(1);
                    match name_tok {
                        Some(nt) if nt.kind == TokenKind::Ident || nt.kind == TokenKind::NumLit => {
                            let name = nt.text.clone();
                            let name_pos = Pos {
                                line: nt.line,
                                col: nt.col,
                            };
                            let is_ident = nt.kind == TokenKind::Ident;
                            self.i += 2;
                            // Turbofish on the method: `.collect::<Vec<_>>()`.
                            if self.text() == ":"
                                && self.text_at(1) == ":"
                                && self.text_at(2) == "<"
                            {
                                self.i += 2;
                                self.skip_angles();
                            }
                            if is_ident && self.text() == "(" {
                                let args = self.parse_call_args("(", ")");
                                expr = Expr::MethodCall(crate::ast::MethodCallExpr {
                                    recv: Box::new(expr),
                                    method: name,
                                    args,
                                    span: self.span_from(start),
                                    pos: name_pos,
                                });
                            } else {
                                let pos = expr.pos();
                                expr = Expr::Field(crate::ast::FieldExpr {
                                    base: Box::new(expr),
                                    name,
                                    span: self.span_from(start),
                                    pos,
                                });
                            }
                        }
                        _ => {
                            // `..` range or stray dot: operator territory.
                            break;
                        }
                    }
                }
                "?" => {
                    self.i += 1;
                }
                _ => break,
            }
            let _ = terms;
        }
        expr
    }

    /// `( a, b, … )`-style argument list (cursor on the opener).
    fn parse_call_args(&mut self, open: &str, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        if self.text() != open {
            return args;
        }
        self.i += 1;
        loop {
            match self.text() {
                "" => break,
                s if s == close => {
                    self.i += 1;
                    break;
                }
                "," | ";" => {
                    self.i += 1;
                    continue;
                }
                _ => {}
            }
            let before = self.i;
            args.push(self.parse_expr(&[]));
            if self.i == before {
                self.i += 1;
            }
        }
        args
    }

    /// `( … )` / `[ … ]` group parsed as a Seq of comma-separated children.
    fn parse_group(&mut self, open: &str, close: &str, start: u32, pos: Pos) -> Expr {
        let children = {
            let mut out = Vec::new();
            if self.text() == open {
                self.i += 1;
                loop {
                    match self.text() {
                        "" => break,
                        s if s == close => {
                            self.i += 1;
                            break;
                        }
                        "," | ";" => {
                            self.i += 1;
                            continue;
                        }
                        _ => {}
                    }
                    let before = self.i;
                    out.push(self.parse_expr(&[]));
                    if self.i == before {
                        self.i += 1;
                    }
                }
            }
            out
        };
        Expr::Seq(SeqExpr {
            children,
            binds: Vec::new(),
            ctrl: Ctrl::None,
            span: self.span_from(start),
            pos,
        })
    }

    /// `move? |params| body` with the cursor on `|` (move consumed).
    fn parse_closure(&mut self, is_move: bool, start: u32, pos: Pos, terms: &[&str]) -> Expr {
        self.eat("|");
        let mut params = Vec::new();
        let mut depth = 0usize;
        let mut in_type = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "|" if depth == 0 => {
                    self.i += 1;
                    break;
                }
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                "," if depth == 0 => in_type = false,
                ":" if depth == 0 && self.text_at(1) != ":" => in_type = true,
                _ => {
                    if !in_type
                        && t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                    {
                        params.push(t.text.clone());
                    }
                }
            }
            self.i += 1;
        }
        // Optional `-> Type` before a brace body.
        if self.text() == "-" && self.text_at(1) == ">" {
            self.i += 2;
            while self.peek().is_some() && !matches!(self.text(), "{" | ";" | "," | ")") {
                if self.text() == "<" {
                    self.skip_angles();
                } else if matches!(self.text(), "(" | "[") {
                    self.skip_balanced();
                } else {
                    self.i += 1;
                }
            }
        }
        let body = if self.text() == "{" {
            Expr::Block(self.parse_block())
        } else {
            self.parse_expr(terms)
        };
        Expr::Closure(ClosureExpr {
            is_move,
            params,
            body: Box::new(body),
            span: self.span_from(start),
            pos,
        })
    }
}

/// Helper carrying [`crate::ast::CallExpr`] fields before boxing.
struct CallExprParts {
    callee: Expr,
    args: Vec<Expr>,
    span: std::ops::Range<u32>,
    pos: Pos,
}

impl From<CallExprParts> for crate::ast::CallExpr {
    fn from(p: CallExprParts) -> Self {
        crate::ast::CallExpr {
            callee: Box::new(p.callee),
            args: p.args,
            span: p.span,
            pos: p.pos,
        }
    }
}

/// Join token texts into readable flattened text (`::` and `<>` tight,
/// single spaces elsewhere).
fn join_tokens(toks: &[&str]) -> String {
    let mut out = String::new();
    for (k, t) in toks.iter().enumerate() {
        let tight = matches!(*t, ":" | "<" | ">" | "," | "'" | ")" | "]")
            || matches!(
                toks.get(k.wrapping_sub(1)).copied(),
                Some(":") | Some("<") | Some("'") | Some("(") | Some("[") | Some("&")
            )
            || k == 0;
        if !tight && !out.is_empty() {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn first_fn(file: &File) -> &FnItem {
        file.items
            .iter()
            .find_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f),
                _ => None,
            })
            .expect("a fn item")
    }

    #[test]
    fn fn_signature_with_mut_ref_and_generics() {
        let file = parse_src(
            "pub fn apply<T, F>(items: &mut Vec<T>, n: usize, f: F) -> usize where F: Fn() {0}",
        );
        let f = first_fn(&file);
        assert_eq!(f.name, "apply");
        assert!(f.is_pub);
        assert_eq!(f.generics, ["T", "F"]);
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].name, "items");
        assert!(f.params[0].by_mut_ref);
        assert!(!f.params[1].by_mut_ref);
        assert!(f.body.is_some());
    }

    #[test]
    fn self_receivers() {
        let file = parse_src("impl X { fn a(&self) {} fn b(&mut self, k: u32) {} }");
        let ItemKind::Impl(imp) = &file.items[0].kind else {
            panic!("impl expected");
        };
        assert_eq!(imp.ty_name, "X");
        let fns: Vec<&FnItem> = imp
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].params[0].name, "self");
        assert!(!fns[0].params[0].by_mut_ref);
        assert!(fns[1].params[0].by_mut_ref, "&mut self receiver");
    }

    #[test]
    fn use_groups_expand_with_aliases() {
        let file = parse_src("use std::collections::{BTreeMap, BTreeSet as Set};\nuse a::b::*;");
        let ItemKind::Use(u) = &file.items[0].kind else {
            panic!()
        };
        assert_eq!(u.targets.len(), 2);
        assert_eq!(u.targets[0].path, ["std", "collections", "BTreeMap"]);
        assert_eq!(u.targets[0].alias, "BTreeMap");
        assert_eq!(u.targets[1].alias, "Set");
        let ItemKind::Use(glob) = &file.items[1].kind else {
            panic!()
        };
        assert_eq!(glob.targets[0].alias, "*");
    }

    #[test]
    fn calls_methods_closures_nest() {
        let file = parse_src(
            "fn f() { par_map(threads, &items, |x| g(x.val())); s.spawn(move || h(1)); }",
        );
        let body = first_fn(&file).body.as_ref().unwrap();
        let mut calls = Vec::new();
        let mut closures = 0;
        ast::walk_block(body, &mut |e| match e {
            ast::Expr::Call(c) => {
                if let ast::Expr::Path(p) = &*c.callee {
                    calls.push(p.segments.join("::"));
                }
            }
            ast::Expr::MethodCall(m) => calls.push(format!(".{}", m.method)),
            ast::Expr::Closure(cl) => {
                closures += 1;
                if closures == 2 {
                    assert!(cl.is_move);
                }
            }
            _ => {}
        });
        assert!(calls.contains(&"par_map".to_string()));
        assert!(calls.contains(&"g".to_string()));
        assert!(calls.contains(&"h".to_string()));
        assert!(calls.contains(&".val".to_string()));
        assert!(calls.contains(&".spawn".to_string()));
        assert_eq!(closures, 2);
    }

    #[test]
    fn let_bindings_record_mut_ty_and_pattern_names() {
        let file =
            parse_src("fn f() { let mut cache = RefCell::new(0); let (a, b): (u32, u32) = t; }");
        let body = first_fn(&file).body.as_ref().unwrap();
        let lets: Vec<&LetStmt> = body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Let(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 2);
        assert!(lets[0].mutable);
        assert_eq!(lets[0].name, "cache");
        let init = lets[0].init.as_ref().unwrap();
        let mut saw_refcell_new = false;
        init.walk(&mut |e| {
            if let ast::Expr::Path(p) = e {
                if p.segments == ["RefCell", "new"] {
                    saw_refcell_new = true;
                }
            }
        });
        assert!(saw_refcell_new);
        assert_eq!(lets[1].bound, ["a", "b"]);
        assert_eq!(lets[1].ty, "(u32, u32)");
    }

    #[test]
    fn match_arms_and_for_loops_bind_patterns() {
        let file = parse_src(
            "fn f(v: Option<u32>) { match v { Some(x) => use_it(x), None => {} } \
             for (i, item) in items.iter().enumerate() { touch(i, item); } }",
        );
        let body = first_fn(&file).body.as_ref().unwrap();
        let mut binds: Vec<Vec<String>> = Vec::new();
        ast::walk_block(body, &mut |e| {
            if let ast::Expr::Seq(s) = e {
                if !s.binds.is_empty() {
                    binds.push(s.binds.clone());
                }
            }
        });
        assert!(binds.contains(&vec!["x".to_string()]), "{binds:?}");
        assert!(
            binds.contains(&vec!["i".to_string(), "item".to_string()]),
            "{binds:?}"
        );
    }

    #[test]
    fn markers_attach_to_next_item() {
        let src = "\
/// Docs here.
// sfcheck:parallel-entry
pub fn par_map() {}

pub fn unmarked() {}
";
        let file = parse_src(src);
        assert_eq!(file.items.len(), 2);
        assert_eq!(file.items[0].markers, ["parallel-entry"]);
        assert!(file.items[1].markers.is_empty());
    }

    #[test]
    fn test_gated_items_are_flagged() {
        let file = parse_src("#[cfg(test)]\nmod tests { fn t() {} }\n#[test]\nfn unit() {}");
        assert!(file.items[0].is_test_gated());
        assert!(file.items[1].is_test_gated());
    }

    #[test]
    fn macros_parse_arguments() {
        let file = parse_src("fn f() { assert_eq!(g(1), vec![h(2)]); panic!(\"boom\"); }");
        let body = first_fn(&file).body.as_ref().unwrap();
        let mut macros = Vec::new();
        let mut calls = Vec::new();
        ast::walk_block(body, &mut |e| match e {
            ast::Expr::Macro(m) => macros.push(m.segments.join("::")),
            ast::Expr::Call(c) => {
                if let ast::Expr::Path(p) = &*c.callee {
                    calls.push(p.segments.join("::"));
                }
            }
            _ => {}
        });
        assert_eq!(macros, ["assert_eq", "vec", "panic"]);
        assert!(calls.contains(&"g".to_string()));
        assert!(calls.contains(&"h".to_string()), "call inside vec! found");
    }

    #[test]
    fn struct_literals_keep_nested_closures() {
        let file = parse_src("fn f() { let c = Config { op: |x| run(x), n: 3 }; }");
        let body = first_fn(&file).body.as_ref().unwrap();
        let mut found = false;
        ast::walk_block(body, &mut |e| {
            if matches!(e, ast::Expr::Closure(_)) {
                found = true;
            }
        });
        assert!(found, "closure inside struct literal must be visited");
    }

    #[test]
    fn statics_and_mods() {
        let file = parse_src("static mut GLOBAL: u32 = 0;\nmod inner { pub fn g() {} }\nmod leaf;");
        let ItemKind::Static(s) = &file.items[0].kind else {
            panic!()
        };
        assert!(s.mutable);
        assert_eq!(s.name, "GLOBAL");
        let ItemKind::Mod(m) = &file.items[1].kind else {
            panic!()
        };
        assert_eq!(m.items.as_ref().unwrap().len(), 1);
        let ItemKind::Mod(leaf) = &file.items[2].kind else {
            panic!()
        };
        assert!(leaf.items.is_none());
    }

    #[test]
    fn garbage_never_panics_and_terminates() {
        for src in [
            "",
            "}}}}",
            "fn",
            "fn (",
            "((((((((",
            "let | | |",
            "impl for for {",
            "fn f() { match { { { }",
            "r#\"unterminated",
            "#[cfg(test)",
            "fn f(x: &mut) -> { |y",
        ] {
            let _ = parse_src(src);
        }
    }

    #[test]
    fn dump_is_deterministic() {
        let src = "fn f(n: usize) -> usize { (0..n).map(|i| i + 1).sum() }";
        let a = ast::dump(&parse_src(src));
        let b = ast::dump(&parse_src(src));
        assert_eq!(a, b);
        assert!(a.contains("closure"));
        assert!(a.contains("method .map"));
    }
}
