//! The checked-in finding baseline (`sfcheck.baseline.json`).
//!
//! A baseline tracks pre-existing findings so the gate can be turned on
//! before every legacy violation is fixed, without suppressing them: a
//! baselined finding still appears in the report (under `baselined`), it
//! just doesn't fail CI. New findings — anything not in the baseline —
//! always fail.
//!
//! Matching is by `(lint, file, snippet)` **multiset**, deliberately
//! ignoring line numbers: unrelated edits that shift a legacy finding up
//! or down must not break the build, but a *second* occurrence of the
//! same pattern in the same file is a new finding.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use smartfeat_frame::json::JsonValue;

use crate::lints::Finding;
use crate::SfError;

/// A loaded baseline: multiset of `(lint, file, snippet)` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), u64>,
}

fn key_of(f: &Finding) -> (String, String, String) {
    (f.lint.to_string(), f.file.clone(), f.snippet.clone())
}

impl Baseline {
    /// Load a baseline file. A missing file is an empty baseline (the
    /// shipped default); a present-but-malformed file is an error so a
    /// corrupt baseline cannot silently approve everything.
    pub fn load(path: &Path) -> Result<Baseline, SfError> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = fs::read_to_string(path)
            .map_err(|e| SfError::new(format!("read baseline {}: {e}", path.display())))?;
        let json = JsonValue::parse(&text)
            .map_err(|e| SfError::new(format!("parse baseline {}: {e}", path.display())))?;
        Baseline::from_json(&json)
    }

    /// Decode the `{"findings": [{"lint","file","snippet"}, …]}` shape.
    pub fn from_json(json: &JsonValue) -> Result<Baseline, SfError> {
        let items = json
            .get("findings")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| SfError::new("baseline must have a `findings` array"))?;
        let mut entries: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            let field = |name: &str| -> Result<String, SfError> {
                item.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        SfError::new(format!("baseline entry {i} is missing string `{name}`"))
                    })
            };
            let key = (field("lint")?, field("file")?, field("snippet")?);
            *entries.entry(key).or_insert(0) += 1;
        }
        Ok(Baseline { entries })
    }

    /// Rewrite the file-path prefix of every matching entry
    /// (`--baseline-remap old=new`): after a directory move, the recorded
    /// legacy findings follow the files instead of resurrecting as "new".
    /// Paths are root-relative, `/`-separated; the prefix matches whole
    /// path components only.
    pub fn remap_prefix(&mut self, old: &str, new: &str) {
        let old = old.trim_end_matches('/');
        let new = new.trim_end_matches('/');
        let remapped: BTreeMap<(String, String, String), u64> = std::mem::take(&mut self.entries)
            .into_iter()
            .map(|((lint, file, snippet), n)| {
                let file = match file.strip_prefix(old) {
                    Some("") => new.to_string(),
                    Some(rest) if rest.starts_with('/') => format!("{new}{rest}"),
                    _ => file,
                };
                ((lint, file, snippet), n)
            })
            .fold(BTreeMap::new(), |mut acc, (key, n)| {
                *acc.entry(key).or_insert(0) += n;
                acc
            });
        self.entries = remapped;
    }

    /// Split findings into `(baselined, live)`, consuming one baseline
    /// slot per match so duplicates beyond the recorded count stay live.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut budget = self.entries.clone();
        let mut baselined = Vec::new();
        let mut live = Vec::new();
        for f in findings {
            match budget.get_mut(&key_of(&f)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined.push(f);
                }
                _ => live.push(f),
            }
        }
        (baselined, live)
    }

    /// Serialize findings as a baseline document (`--write-baseline`).
    pub fn to_json(findings: &[Finding]) -> JsonValue {
        let items: Vec<JsonValue> = findings
            .iter()
            .map(|f| {
                JsonValue::object([
                    ("file", JsonValue::from(f.file.as_str())),
                    ("lint", JsonValue::from(f.lint)),
                    ("snippet", JsonValue::from(f.snippet.as_str())),
                ])
            })
            .collect();
        JsonValue::object([("findings", JsonValue::Array(items))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, snippet: &str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 1,
            lint,
            message: String::new(),
            snippet: snippet.to_string(),
            suggestion: None,
        }
    }

    #[test]
    fn matching_ignores_line_numbers() {
        let baseline = Baseline::from_json(
            &JsonValue::parse(
                r#"{"findings":[{"lint":"wall-clock","file":"a.rs","snippet":"let t = Instant::now();"}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let (baselined, live) = baseline.partition(vec![finding(
            "wall-clock",
            "a.rs",
            "let t = Instant::now();",
            999,
        )]);
        assert_eq!(baselined.len(), 1);
        assert!(live.is_empty());
    }

    #[test]
    fn multiset_semantics_cap_duplicates() {
        let baseline = Baseline::from_json(
            &JsonValue::parse(
                r#"{"findings":[{"lint":"wall-clock","file":"a.rs","snippet":"x"}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let (baselined, live) = baseline.partition(vec![
            finding("wall-clock", "a.rs", "x", 1),
            finding("wall-clock", "a.rs", "x", 2),
        ]);
        assert_eq!(baselined.len(), 1, "one slot, one match");
        assert_eq!(live.len(), 1, "the second occurrence is new");
    }

    #[test]
    fn roundtrip_through_write() {
        let findings = vec![
            finding("wall-clock", "a.rs", "x", 1),
            finding("panic-hygiene", "b.rs", "y", 2),
        ];
        let json = Baseline::to_json(&findings);
        let reloaded = Baseline::from_json(&json).unwrap();
        let (baselined, live) = reloaded.partition(findings);
        assert_eq!(baselined.len(), 2);
        assert!(live.is_empty());
    }

    #[test]
    fn remap_follows_moved_files_and_matches_whole_components() {
        let mut baseline = Baseline::from_json(
            &JsonValue::parse(
                r#"{"findings":[
                    {"lint":"wall-clock","file":"crates/old/src/a.rs","snippet":"x"},
                    {"lint":"wall-clock","file":"crates/older/src/b.rs","snippet":"y"}
                ]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        baseline.remap_prefix("crates/old", "crates/new");
        let (baselined, live) = baseline.partition(vec![
            finding("wall-clock", "crates/new/src/a.rs", "x", 1),
            // `crates/older` shares a string prefix but not a component.
            finding("wall-clock", "crates/older/src/b.rs", "y", 2),
        ]);
        assert_eq!(baselined.len(), 2);
        assert!(live.is_empty());
    }

    #[test]
    fn missing_file_is_empty_malformed_is_error() {
        let missing = Baseline::load(Path::new("/nonexistent/sfcheck.baseline.json")).unwrap();
        let (baselined, live) = missing.partition(vec![finding("wall-clock", "a.rs", "x", 1)]);
        assert!(baselined.is_empty());
        assert_eq!(live.len(), 1);
        assert!(Baseline::from_json(&JsonValue::parse("{}").unwrap()).is_err());
    }
}
