//! Cross-file semantic lints over the symbol table and call graph: the
//! determinism/race dataflow pass.
//!
//! Three lints run here (all waivable with the usual inline syntax):
//!
//! - **`par-capture-race`** — a closure passed to a `// sfcheck:parallel-entry`
//!   function captures a shared-mutable binding from its enclosing fn: an
//!   `&mut` parameter, a `RefCell`/`Cell` local, or a `static mut`.
//!   Worker closures must be pure functions of their index/item
//!   (DESIGN.md §8); interior mutability smuggled across the pool boundary
//!   is exactly the race the differential tests can only spot-check.
//! - **`rng-seed-discipline`** — an `Rng`/`SplitMix64` constructor runs
//!   inside a parallel-region closure with a seed that is not derived
//!   per item: the argument neither calls a `// sfcheck:seed-derivation`
//!   fn (`smartfeat_rng::seed_jump`), nor mentions the closure's
//!   parameters, nor indexes a precomputed seed table. A shared stream
//!   across pool items makes output depend on scheduling order.
//! - **`panic-reachability`** — a panic site (`unwrap`, string-`expect`,
//!   `panic!`, `unreachable!`, `todo!`, `unimplemented!`) in non-test
//!   library code is transitively reachable from the public `pipeline`
//!   API of the core crate. The message carries the BFS call path, so
//!   the finding is explainable and the waiver reviewable.
//!
//! The analysis is conservative by construction — see DESIGN.md §11 for
//! the approximations (unambiguous method dispatch, flat capture
//! environments, one-level seed-argument dataflow).

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, ItemKind, LetStmt, Stmt};
use crate::callgraph::CallGraph;
use crate::lints::Finding;
use crate::resolve::{FnId, Workspace};

/// Marker naming sanctioned parallel entry points (`crates/par`).
pub const PARALLEL_ENTRY: &str = "parallel-entry";
/// Marker naming sanctioned seed-derivation fns (`crates/rng`).
pub const SEED_DERIVATION: &str = "seed-derivation";

/// Run all cross-file lints; findings are sorted by the caller.
pub fn run(ws: &Workspace, cg: &CallGraph) -> Vec<Finding> {
    run_scoped(ws, cg, None)
}

/// Scoped variant for the incremental cache ([`crate::cache`]): with a
/// `dirty` set of file indices, the closure lints iterate only fns in
/// dirty files and panic-reachability emits only findings landing in
/// dirty files. This equals the full run restricted to dirty files
/// because every finding's file is call-graph-connected to the fn that
/// produces it and the dirty set is closed under call-graph components
/// (DESIGN.md §15).
pub fn run_scoped(ws: &Workspace, cg: &CallGraph, dirty: Option<&BTreeSet<usize>>) -> Vec<Finding> {
    let mut out = Vec::new();
    let entries: BTreeSet<FnId> = ws.marked(PARALLEL_ENTRY).into_iter().collect();
    let derivations: BTreeSet<FnId> = ws.marked(SEED_DERIVATION).into_iter().collect();
    par_capture_and_seed_lints(ws, cg, &entries, &derivations, dirty, &mut out);
    panic_reachability_lint(ws, cg, dirty, &mut out);
    out
}

/// The flat binding environment of one function body: parameters and
/// `let` statements, shadowing ignored (last writer wins is irrelevant —
/// any suspicious binding of a captured name is worth reporting).
struct Env<'a> {
    mut_ref_params: BTreeSet<&'a str>,
    lets: Vec<&'a LetStmt>,
}

fn env_of<'a>(ws: &'a Workspace, id: FnId, body: &'a Block) -> Env<'a> {
    let mut env = Env {
        mut_ref_params: BTreeSet::new(),
        lets: Vec::new(),
    };
    for p in &ws.fns[id].params {
        if p.by_mut_ref {
            env.mut_ref_params.insert(p.name.as_str());
        }
    }
    collect_lets(body, &mut env.lets);
    env
}

fn collect_lets<'a>(b: &'a Block, out: &mut Vec<&'a LetStmt>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let(l) => {
                out.push(l);
                if let Some(init) = &l.init {
                    init.walk(&mut |e| {
                        if let Expr::Block(inner) = e {
                            collect_lets_shallow(inner, out);
                        }
                    });
                }
            }
            Stmt::Expr(e) => e.walk(&mut |e| {
                if let Expr::Block(inner) = e {
                    collect_lets_shallow(inner, out);
                }
            }),
            Stmt::Item(item) => {
                if let ItemKind::Fn(f) = &item.kind {
                    if let Some(body) = &f.body {
                        collect_lets(body, out);
                    }
                }
            }
        }
    }
}

/// One level only — `Expr::walk` already recurses into nested blocks, so
/// the outer walk visits every block exactly once.
fn collect_lets_shallow<'a>(b: &'a Block, out: &mut Vec<&'a LetStmt>) {
    for stmt in &b.stmts {
        if let Stmt::Let(l) = stmt {
            out.push(l);
        }
    }
}

/// Names a closure body uses freely: single-segment path idents minus the
/// closure's own parameters and every name bound inside the body
/// (let-bindings, pattern binds, nested closure params). The subtraction
/// over-approximates scope, which can only hide captures, never invent
/// them — findings stay zero-noise.
fn free_vars(closure: &crate::ast::ClosureExpr) -> BTreeSet<String> {
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut bound: BTreeSet<String> = closure.params.iter().cloned().collect();
    closure.body.walk(&mut |e| match e {
        Expr::Path(p) if p.segments.len() == 1 => {
            used.insert(p.segments[0].clone());
        }
        Expr::Closure(c) => bound.extend(c.params.iter().cloned()),
        Expr::Seq(s) => bound.extend(s.binds.iter().cloned()),
        Expr::Block(b) => {
            for stmt in &b.stmts {
                if let Stmt::Let(l) = stmt {
                    bound.extend(l.bound.iter().cloned());
                }
            }
        }
        _ => {}
    });
    // `self`, keywords, and uppercase idents (types, variants, consts by
    // convention) are not capturable shared-mutable bindings.
    used.retain(|name| {
        !bound.contains(name)
            && name != "self"
            && name != "Self"
            && !name.starts_with(|c: char| c.is_ascii_uppercase())
    });
    used
}

/// Does `ty`/`init` of a let identify interior mutability that is not
/// thread-safe? `RefCell`/`Cell` count; `Mutex`/`RwLock`/atomics do not.
fn is_interior_mutable(l: &LetStmt) -> Option<&'static str> {
    let ty = l.ty.as_str();
    if ty.contains("RefCell<") || ty.contains("RefCell ") || ty == "RefCell" {
        return Some("RefCell");
    }
    if ty.contains("Cell<") {
        return Some("Cell");
    }
    let mut found = None;
    if let Some(init) = &l.init {
        init.walk(&mut |e| {
            if let Expr::Path(p) = e {
                for seg in &p.segments {
                    if seg == "RefCell" {
                        found = Some("RefCell");
                    } else if seg == "Cell" && found.is_none() {
                        found = Some("Cell");
                    }
                }
            }
        });
    }
    found
}

/// Both closure-level lints in one pass: find parallel-entry call sites,
/// then check each closure argument's captures and rng constructors.
fn par_capture_and_seed_lints(
    ws: &Workspace,
    cg: &CallGraph,
    entries: &BTreeSet<FnId>,
    derivations: &BTreeSet<FnId>,
    dirty: Option<&BTreeSet<usize>>,
    out: &mut Vec<Finding>,
) {
    for id in 0..ws.fns.len() {
        let info = &ws.fns[id];
        if info.is_test || dirty.is_some_and(|d| !d.contains(&info.file)) {
            continue;
        }
        let Some(body) = ws.body_of(id) else { continue };
        let file = &ws.files[info.file];
        let env = env_of(ws, id, body);
        crate::ast::walk_block(body, &mut |e| {
            let (is_entry, args): (bool, &[Expr]) = match e {
                Expr::Call(c) => {
                    if let Expr::Path(p) = &*c.callee {
                        let resolved = ws.resolve_path(
                            info.file,
                            &info.module,
                            info.impl_ty.as_deref(),
                            &p.segments,
                        );
                        (resolved.iter().any(|t| entries.contains(t)), &c.args)
                    } else {
                        (false, &c.args)
                    }
                }
                Expr::MethodCall(m) => {
                    let resolved = ws
                        .methods
                        .get(&m.method)
                        .filter(|c| c.len() == 1)
                        .map(|c| c[0]);
                    (resolved.is_some_and(|t| entries.contains(&t)), &m.args)
                }
                _ => (false, &[]),
            };
            if !is_entry {
                return;
            }
            for arg in args {
                if let Expr::Closure(closure) = arg {
                    check_captures(ws, info.file, id, &env, closure, file, out);
                    check_seed_discipline(ws, cg, derivations, id, closure, out);
                }
            }
        });
    }
}

pub(crate) fn finding_at(
    ws: &Workspace,
    file_idx: usize,
    pos: crate::ast::Pos,
    lint: &'static str,
    message: String,
) -> Finding {
    let file = &ws.files[file_idx];
    let snippet = file
        .text
        .lines()
        .nth(pos.line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    Finding {
        file: file.rel_path.clone(),
        line: pos.line,
        col: pos.col,
        lint,
        message,
        snippet,
        suggestion: None,
    }
}

fn check_captures(
    ws: &Workspace,
    file_idx: usize,
    _fn_id: FnId,
    env: &Env<'_>,
    closure: &crate::ast::ClosureExpr,
    _file: &crate::resolve::ParsedFile,
    out: &mut Vec<Finding>,
) {
    for name in free_vars(closure) {
        if env.mut_ref_params.contains(name.as_str()) {
            out.push(finding_at(
                ws,
                file_idx,
                closure.pos,
                "par-capture-race",
                format!(
                    "closure passed to a parallel entry point captures `{name}`, an `&mut` \
                     parameter of the enclosing fn; worker closures must not share mutable \
                     state — pass per-index slices or return values through the ordered map"
                ),
            ));
            continue;
        }
        if ws.mut_statics.contains(&name) {
            out.push(finding_at(
                ws,
                file_idx,
                closure.pos,
                "par-capture-race",
                format!(
                    "closure passed to a parallel entry point reads `static mut {name}`; \
                     mutable statics are unsynchronized shared state"
                ),
            ));
            continue;
        }
        for l in &env.lets {
            if l.name == name || l.bound.contains(&name) {
                if let Some(cell) = is_interior_mutable(l) {
                    out.push(finding_at(
                        ws,
                        file_idx,
                        closure.pos,
                        "par-capture-race",
                        format!(
                            "closure passed to a parallel entry point captures `{name}`, a \
                             `{cell}` binding; `{cell}` is not `Sync` — interior mutability \
                             must not cross the pool boundary"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// Constructor names in `smartfeat_rng` that start a stream.
fn is_rng_ctor(ws: &Workspace, target: FnId) -> bool {
    let f = &ws.fns[target];
    ws.files[f.file].crate_name == "smartfeat_rng"
        && matches!(f.name.as_str(), "seed_from_u64" | "new" | "from_seed")
        && f.impl_ty.is_some()
}

/// Is this expression an acceptable per-item seed derivation inside the
/// given closure? True when it calls a marked derivation fn, mentions a
/// closure parameter, or indexes into a precomputed table.
fn seed_is_derived(
    ws: &Workspace,
    derivations: &BTreeSet<FnId>,
    fn_id: FnId,
    closure: &crate::ast::ClosureExpr,
    arg: &Expr,
) -> bool {
    let info = &ws.fns[fn_id];
    let mut ok = false;
    arg.walk(&mut |e| match e {
        Expr::Call(c) => {
            if let Expr::Path(p) = &*c.callee {
                let resolved = ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                );
                if resolved.iter().any(|t| derivations.contains(t)) {
                    ok = true;
                }
            }
        }
        Expr::Index(_) => ok = true,
        Expr::Path(p) if p.segments.len() == 1 && closure.params.contains(&p.segments[0]) => {
            ok = true;
        }
        _ => {}
    });
    ok
}

fn check_seed_discipline(
    ws: &Workspace,
    cg: &CallGraph,
    derivations: &BTreeSet<FnId>,
    fn_id: FnId,
    closure: &crate::ast::ClosureExpr,
    out: &mut Vec<Finding>,
) {
    let info = &ws.fns[fn_id];
    // Direct constructors inside the closure body.
    closure.body.walk(&mut |e| {
        if let Expr::Call(c) = e {
            if let Expr::Path(p) = &*c.callee {
                let resolved = ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                );
                if resolved.iter().any(|t| is_rng_ctor(ws, *t))
                    && !c
                        .args
                        .first()
                        .is_some_and(|a| seed_is_derived(ws, derivations, fn_id, closure, a))
                {
                    out.push(finding_at(
                        ws,
                        info.file,
                        e.pos(),
                        "rng-seed-discipline",
                        format!(
                            "rng constructor `{}` inside a parallel-region closure with a seed \
                             that is not derived per item; derive it from the item index via \
                             `smartfeat_rng::seed_jump` (or an indexed seed table) so streams \
                             are independent of scheduling",
                            p.segments.join("::")
                        ),
                    ));
                }
            }
        }
    });
    // Constructors in fns reachable from the closure body: flag only
    // seeds that mention neither the callee's parameters (deferring the
    // derivation to this call site) nor a derivation fn / index.
    let mut roots: Vec<FnId> = Vec::new();
    closure.body.walk(&mut |e| {
        if let Expr::Call(c) = e {
            if let Expr::Path(p) = &*c.callee {
                roots.extend(ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                ));
            }
        }
    });
    let reachable = cg.reachable_from(&roots);
    for &target in reachable.keys() {
        let tinfo = &ws.fns[target];
        if tinfo.is_test {
            continue;
        }
        let Some(body) = ws.body_of(target) else {
            continue;
        };
        crate::ast::walk_block(body, &mut |e| {
            if let Expr::Call(c) = e {
                if let Expr::Path(p) = &*c.callee {
                    let resolved = ws.resolve_path(
                        tinfo.file,
                        &tinfo.module,
                        tinfo.impl_ty.as_deref(),
                        &p.segments,
                    );
                    if !resolved.iter().any(|t| is_rng_ctor(ws, *t)) {
                        return;
                    }
                    let arg_ok = c.args.first().is_some_and(|a| {
                        let mut ok = false;
                        a.walk(&mut |sub| match sub {
                            Expr::Call(inner) => {
                                if let Expr::Path(ip) = &*inner.callee {
                                    let r = ws.resolve_path(
                                        tinfo.file,
                                        &tinfo.module,
                                        tinfo.impl_ty.as_deref(),
                                        &ip.segments,
                                    );
                                    if r.iter().any(|t| derivations.contains(t)) {
                                        ok = true;
                                    }
                                }
                            }
                            Expr::Index(_) => ok = true,
                            Expr::Path(p) => {
                                let head = &p.segments[0];
                                if head == "self"
                                    || tinfo.params.iter().any(|prm| prm.name == *head)
                                {
                                    ok = true;
                                }
                            }
                            Expr::Field(f) => {
                                if let Expr::Path(p) = &*f.base {
                                    if p.segments.first().map(String::as_str) == Some("self") {
                                        ok = true;
                                    }
                                }
                            }
                            _ => {}
                        });
                        ok
                    });
                    if !arg_ok {
                        out.push(finding_at(
                            ws,
                            tinfo.file,
                            e.pos(),
                            "rng-seed-discipline",
                            format!(
                                "rng constructor `{}` in `{}` (reachable from a parallel-region \
                                 closure) uses a fixed seed; thread it from the caller's \
                                 per-item derivation instead",
                                p.segments.join("::"),
                                tinfo.qname
                            ),
                        ));
                    }
                }
            }
        });
    }
}

/// Panic sites in non-test lib code reachable from the core crate's
/// public `pipeline` fns.
fn panic_reachability_lint(
    ws: &Workspace,
    cg: &CallGraph,
    dirty: Option<&BTreeSet<usize>>,
    out: &mut Vec<Finding>,
) {
    let roots: Vec<FnId> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_pub
                && !f.is_test
                && ws.files[f.file].crate_name == "smartfeat"
                && f.module.first().map(String::as_str) == Some("pipeline")
        })
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = cg.reachable_from(&roots);
    for &target in parent.keys() {
        let info = &ws.fns[target];
        if info.is_test || ws.files[info.file].class != crate::walker::FileClass::Lib {
            continue;
        }
        // BFS from the full root set keeps the reported call path (and so
        // the message bytes) identical to a cold run; only emission is
        // scoped to dirty files.
        if dirty.is_some_and(|d| !d.contains(&info.file)) {
            continue;
        }
        for site in &cg.panic_sites[target] {
            let path = cg.path_to(ws, &parent, target);
            out.push(finding_at(
                ws,
                info.file,
                site.pos,
                "panic-reachability",
                format!(
                    "`{}` is reachable from the public pipeline API via {}; return a typed \
                     error or prove the invariant and waive with a reason",
                    site.what,
                    path.join(" → ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::{classify, SourceFile};

    /// A miniature workspace with a marked par crate, a marked rng crate,
    /// and a consumer crate named `smartfeat` (so pipeline roots resolve).
    fn mini_ws(consumer: &str) -> (Workspace, CallGraph) {
        let manifests = vec![
            manifest("crates/par/Cargo.toml", "smartfeat-par"),
            manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
            manifest("crates/core/Cargo.toml", "smartfeat"),
        ];
        let parsed = vec![
            file(
                "crates/par/src/lib.rs",
                "// sfcheck:parallel-entry\npub fn par_map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R> { vec![] }\n\
                 pub struct Scope;\nimpl Scope {\n// sfcheck:parallel-entry\npub fn spawn<F>(&self, f: F) {}\n}",
            ),
            file(
                "crates/rng/src/lib.rs",
                "// sfcheck:seed-derivation\npub fn seed_jump(base: u64, index: u64) -> u64 { base }\n\
                 pub struct Rng;\nimpl Rng { pub fn seed_from_u64(seed: u64) -> Rng { Rng } }",
            ),
            file("crates/core/src/pipeline.rs", consumer),
        ];
        let ws = crate::resolve::build(parsed, &manifests);
        let cg = crate::callgraph::build(&ws);
        (ws, cg)
    }

    fn file(rel: &str, text: &str) -> (SourceFile, crate::ast::File) {
        (
            SourceFile {
                rel_path: rel.to_string(),
                text: text.to_string(),
                class: classify(rel),
                crate_dir: crate::walker::crate_dir_of(rel),
            },
            parse(&lex(text)),
        )
    }

    fn manifest(rel: &str, name: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: format!("[package]\nname = \"{name}\"\n"),
            class: classify(rel),
            crate_dir: crate::walker::crate_dir_of(rel),
        }
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn refcell_capture_into_par_map_is_flagged() {
        let src = "use smartfeat_par::par_map_indexed;\nuse std::cell::RefCell;\n\
                   pub fn run(n: usize) {\n    let cache = RefCell::new(0u32);\n\
                   let out = par_map_indexed(4, n, |i| { *cache.borrow_mut() += 1; i });\n}";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["par-capture-race"]);
        assert!(findings[0].message.contains("RefCell"));
        assert_eq!(findings[0].file, "crates/core/src/pipeline.rs");
    }

    #[test]
    fn mut_param_capture_and_clean_closure() {
        let src = "use smartfeat_par::par_map_indexed;\n\
                   pub fn bad(acc: &mut Vec<u32>, n: usize) {\n\
                   par_map_indexed(4, n, |i| { acc.push(i as u32); });\n}\n\
                   pub fn good(items: &[u32], n: usize) -> Vec<u32> {\n\
                   par_map_indexed(4, n, |i| items[i] * 2)\n}";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["par-capture-race"]);
        assert!(findings[0].message.contains("`acc`"));
    }

    #[test]
    fn fixed_seed_in_closure_flagged_derived_seed_clean() {
        let src = "use smartfeat_par::par_map_indexed;\nuse smartfeat_rng::{seed_jump, Rng};\n\
                   pub fn bad(n: usize, seed: u64) {\n\
                   par_map_indexed(4, n, |i| { let r = Rng::seed_from_u64(seed); i });\n}\n\
                   pub fn good(n: usize, seed: u64) {\n\
                   par_map_indexed(4, n, |i| { let r = Rng::seed_from_u64(seed_jump(seed, i as u64)); i });\n}\n\
                   pub fn table(n: usize, seeds: &[u64]) {\n\
                   par_map_indexed(4, n, |i| { let r = Rng::seed_from_u64(seeds[i]); i });\n}";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["rng-seed-discipline"]);
        assert_eq!(findings[0].line, 4, "only the underived seed fires");
    }

    #[test]
    fn reachable_fixed_seed_constructor_is_flagged() {
        let src = "use smartfeat_par::par_map_indexed;\nuse smartfeat_rng::Rng;\n\
                   fn helper_fixed() { let r = Rng::seed_from_u64(42); }\n\
                   fn helper_param(seed: u64) { let r = Rng::seed_from_u64(seed); }\n\
                   pub fn run(n: usize) {\n\
                   par_map_indexed(4, n, |i| { helper_fixed(); helper_param(i as u64); i });\n}";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["rng-seed-discipline"]);
        assert!(findings[0].message.contains("helper_fixed"));
    }

    #[test]
    fn panic_reachability_walks_the_call_graph() {
        let src = "pub fn run(v: Option<u32>) -> u32 { step(v) }\n\
                   fn step(v: Option<u32>) -> u32 { v.unwrap() }\n\
                   fn orphan(v: Option<u32>) -> u32 { v.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t(v: Option<u32>) -> u32 { v.unwrap() } }";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["panic-reachability"]);
        assert!(
            findings[0].message.contains("smartfeat::pipeline::run"),
            "{}",
            findings[0].message
        );
        assert!(findings[0].message.contains("smartfeat::pipeline::step"));
    }

    #[test]
    fn spawn_method_closures_are_checked() {
        let src = "use std::cell::RefCell;\n\
                   pub fn run(s: &smartfeat_par::Scope) {\n\
                   let shared = RefCell::new(0u32);\n\
                   s.spawn(|| { shared.borrow_mut(); });\n}";
        let (ws, cg) = mini_ws(src);
        let findings = run(&ws, &cg);
        assert_eq!(lints_of(&findings), ["par-capture-race"]);
    }
}
