//! The `--fix` engine: apply machine-applicable suggestions to the tree.
//!
//! Only findings that carry a [`Finding::suggestion`] are applied — today
//! that is `hash-collections` (`HashMap`→`BTreeMap`, `HashSet`→`BTreeSet`)
//! and the underscore-typo shapes of `waiver-syntax` and
//! `seed-stream-collision` (`sfcheck:seed_stream`→`sfcheck:seed-stream`).
//! A suggestion is a
//! replacement for the finding's trimmed source line; the engine turns it
//! into a byte-span rewrite:
//!
//! 1. group fixes by file and locate each finding's line span in the
//!    current text,
//! 2. verify the span still holds the recorded snippet (a stale finding —
//!    the file changed since the scan — is skipped, never misapplied),
//! 3. apply spans in descending start order so earlier rewrites cannot
//!    shift later ones, skipping exact duplicates and refusing
//!    conflicting rewrites of the same span.
//!
//! Applying is **idempotent**: a fixed line no longer produces the
//! finding, so a second `--fix` pass applies zero rewrites (CI runs the
//! double-pass to prove it).

use std::collections::BTreeMap;
use std::path::Path;

use crate::lints::Finding;
use crate::SfError;

/// What one `--fix` pass did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FixReport {
    /// Rewrites applied.
    pub applied: usize,
    /// Files written back.
    pub files_changed: usize,
    /// Human-readable notes for fixes that were skipped (stale snippet,
    /// conflicting rewrites), in deterministic order.
    pub skipped: Vec<String>,
}

/// One planned rewrite inside a single file.
struct Edit {
    start: usize,
    end: usize,
    line: u32,
    replacement: String,
}

/// Apply every suggestion-carrying finding under `root`. Findings are
/// expected to hold root-relative `/`-separated paths (as produced by the
/// walker).
pub fn apply(root: &Path, findings: &[Finding]) -> Result<FixReport, SfError> {
    let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        if f.suggestion.is_some() {
            by_file.entry(f.file.as_str()).or_default().push(f);
        }
    }
    let mut report = FixReport::default();
    for (rel, group) in by_file {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SfError::new(format!("read {}: {e}", path.display())))?;
        let fixes: Vec<(u32, &str, &str)> = group
            .iter()
            .map(|f| {
                (
                    f.line,
                    f.snippet.as_str(),
                    f.suggestion.as_deref().unwrap_or_default(),
                )
            })
            .collect();
        let (new_text, applied, mut skipped) = rewrite(&text, &fixes);
        for note in &mut skipped {
            *note = format!("{rel}:{note}");
        }
        report.skipped.append(&mut skipped);
        if applied > 0 {
            std::fs::write(&path, new_text)
                .map_err(|e| SfError::new(format!("write {}: {e}", path.display())))?;
            report.applied += applied;
            report.files_changed += 1;
        }
    }
    Ok(report)
}

/// Byte span of the trimmed content of each 1-based line.
fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut offset = 0usize;
    for raw in text.split_inclusive('\n') {
        let content = raw.trim_end_matches(['\n', '\r']);
        let lead = content.len() - content.trim_start().len();
        spans.push((offset + lead, offset + content.trim_end().len()));
        offset += raw.len();
    }
    spans
}

/// Pure core: rewrite `text` per `(line, expected_snippet, replacement)`
/// fixes. Returns the new text, the number of rewrites applied, and notes
/// for skipped fixes.
pub fn rewrite(text: &str, fixes: &[(u32, &str, &str)]) -> (String, usize, Vec<String>) {
    let spans = line_spans(text);
    let mut edits: Vec<Edit> = Vec::new();
    let mut skipped = Vec::new();
    for &(line, snippet, replacement) in fixes {
        let Some(&(start, end)) = spans.get(line as usize - 1) else {
            skipped.push(format!("{line}: line is past end of file"));
            continue;
        };
        if &text[start..end] != snippet {
            skipped.push(format!("{line}: snippet no longer matches — stale finding"));
            continue;
        }
        if snippet == replacement {
            continue;
        }
        if let Some(prev) = edits.iter().find(|e| e.start == start) {
            if prev.replacement != replacement {
                skipped.push(format!("{line}: conflicting rewrites for one line"));
            }
            // Exact duplicate (two findings on one line sharing the fixed
            // line, e.g. two HashMaps) applies once.
            continue;
        }
        edits.push(Edit {
            start,
            end,
            line,
            replacement: replacement.to_string(),
        });
    }
    // Drop lines named in a conflict entirely — applying either variant
    // would silently pick a winner.
    let conflicted: Vec<u32> = skipped
        .iter()
        .filter(|n| n.contains("conflicting"))
        .filter_map(|n| n.split(':').next()?.parse().ok())
        .collect();
    edits.retain(|e| !conflicted.contains(&e.line));

    edits.sort_by_key(|e| std::cmp::Reverse(e.start));
    let mut out = text.to_string();
    let applied = edits.len();
    for e in edits {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    (out, applied, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_the_trimmed_span_preserving_indentation() {
        let text = "fn f() {\n    use std::collections::HashMap;\n}\n";
        let (out, applied, skipped) = rewrite(
            text,
            &[(
                2,
                "use std::collections::HashMap;",
                "use std::collections::BTreeMap;",
            )],
        );
        assert_eq!(out, "fn f() {\n    use std::collections::BTreeMap;\n}\n");
        assert_eq!(applied, 1);
        assert!(skipped.is_empty());
    }

    #[test]
    fn stale_snippets_are_skipped_never_misapplied() {
        let text = "let x = 1;\n";
        let (out, applied, skipped) = rewrite(text, &[(1, "let y = 2;", "let y = 3;")]);
        assert_eq!(out, text);
        assert_eq!(applied, 0);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("stale"));
    }

    #[test]
    fn duplicate_fixes_on_one_line_apply_once_conflicts_apply_never() {
        let text = "let m: HashMap<u32, HashMap<u32, u32>> = x;\n";
        let fixed = "let m: BTreeMap<u32, BTreeMap<u32, u32>> = x;";
        // Two findings (one per HashMap token) share the whole-line fix.
        let (out, applied, skipped) = rewrite(
            text,
            &[(1, text.trim_end(), fixed), (1, text.trim_end(), fixed)],
        );
        assert_eq!(out, format!("{fixed}\n"));
        assert_eq!(applied, 1);
        assert!(skipped.is_empty());
        // Conflicting replacements: neither is applied.
        let (out, applied, skipped) = rewrite(
            text,
            &[(1, text.trim_end(), fixed), (1, text.trim_end(), "other")],
        );
        assert_eq!(out, text);
        assert_eq!(applied, 0);
        assert_eq!(skipped.len(), 1);
    }

    #[test]
    fn multiple_lines_apply_bottom_up_without_shifting() {
        let text = "use std::collections::HashMap;\nfn g() {}\nuse std::collections::HashSet;\n";
        let (out, applied, _) = rewrite(
            text,
            &[
                (
                    1,
                    "use std::collections::HashMap;",
                    "use std::collections::BTreeMap;",
                ),
                (
                    3,
                    "use std::collections::HashSet;",
                    "use std::collections::BTreeSet;",
                ),
            ],
        );
        assert_eq!(
            out,
            "use std::collections::BTreeMap;\nfn g() {}\nuse std::collections::BTreeSet;\n"
        );
        assert_eq!(applied, 2);
    }

    #[test]
    fn noop_suggestions_count_nothing() {
        let text = "let x = 1;\n";
        let (out, applied, skipped) = rewrite(text, &[(1, "let x = 1;", "let x = 1;")]);
        assert_eq!(out, text);
        assert_eq!(applied, 0);
        assert!(skipped.is_empty());
    }
}
