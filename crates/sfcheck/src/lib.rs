//! `sfcheck`: in-repo static analysis for the SMARTFEAT reproduction.
//!
//! The runtime test suite proves the repo's invariants hold *where a test
//! happens to exercise them*; `sfcheck` proves the source cannot express
//! the violation in the first place. It lexes every `.rs` file with a
//! hand-rolled lexer (no syn, no registry deps — hermetic-build policy),
//! scans every `Cargo.toml`, and reports typed diagnostics as
//! deterministic JSON through `frame::json`.
//!
//! See [`lints`] for the lint suite, [`baseline`] for the checked-in
//! finding baseline, and DESIGN.md §10 for the workflow.

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod walker;

use std::fmt;
use std::path::{Path, PathBuf};

use smartfeat_frame::json::JsonValue;

use baseline::Baseline;
use lints::{scan_manifest, scan_rust, Finding, Waived};

/// A tool-level failure (I/O, malformed baseline) — distinct from lint
/// findings, which are data, not errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfError {
    /// What went wrong.
    pub message: String,
}

impl SfError {
    /// Wrap a message.
    pub fn new(message: impl Into<String>) -> SfError {
        SfError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SfError {}

/// Options for one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline path; `None` means `<root>/sfcheck.baseline.json`.
    pub baseline_path: Option<PathBuf>,
    /// Include the `fixes` section for mechanical lints.
    pub fix_dry_run: bool,
}

impl CheckOptions {
    /// Default options for a root.
    pub fn new(root: impl Into<PathBuf>) -> CheckOptions {
        CheckOptions {
            root: root.into(),
            baseline_path: None,
            fix_dry_run: false,
        }
    }

    fn resolved_baseline(&self) -> PathBuf {
        self.baseline_path
            .clone()
            .unwrap_or_else(|| self.root.join("sfcheck.baseline.json"))
    }
}

/// Result of a check run.
#[derive(Debug)]
pub struct Outcome {
    /// Live findings (fail the gate).
    pub findings: Vec<Finding>,
    /// Findings matched by the baseline.
    pub baselined: Vec<Finding>,
    /// Waived findings with reasons.
    pub waived: Vec<Waived>,
    /// The full JSON report document.
    pub report: JsonValue,
}

impl Outcome {
    /// True when the gate passes (no live findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every lint over the workspace at `opts.root`.
pub fn run_check(opts: &CheckOptions) -> Result<Outcome, SfError> {
    let sources = walker::rust_sources(&opts.root)?;
    let manifests = walker::manifests(&opts.root)?;
    if manifests.is_empty() {
        // A scan that finds nothing is a misconfigured root (wrong --root,
        // CI checkout mishap), not a clean repository.
        return Err(SfError::new(format!(
            "no Cargo.toml under {} — not a workspace root?",
            opts.root.display()
        )));
    }
    let files_scanned = sources.len();
    let manifests_scanned = manifests.len();

    let mut findings: Vec<Finding> = Vec::new();
    let mut waived: Vec<Waived> = Vec::new();
    for file in &sources {
        let mut result = scan_rust(file);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    for manifest in &manifests {
        let mut result = scan_manifest(manifest);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    // The walk is sorted, but sort again so the report order is a
    // contract of the output, not an accident of scan order.
    findings.sort();
    waived.sort();

    let baseline = Baseline::load(&opts.resolved_baseline())?;
    let (baselined, live) = baseline.partition(findings);

    let report = report::build(&report::ReportInput {
        baselined: &baselined,
        findings: &live,
        waived: &waived,
        files_scanned,
        manifests_scanned,
        fix_dry_run: opts.fix_dry_run,
    });
    Ok(Outcome {
        findings: live,
        baselined,
        waived,
        report,
    })
}

/// The workspace root enclosing `start` (nearest `[workspace]` manifest).
pub fn workspace_root_from(start: &Path) -> Result<PathBuf, SfError> {
    walker::find_workspace_root(start)
        .ok_or_else(|| SfError::new(format!("no [workspace] manifest above {}", start.display())))
}
