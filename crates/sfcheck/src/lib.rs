//! `sfcheck`: in-repo static analysis for the SMARTFEAT reproduction.
//!
//! The runtime test suite proves the repo's invariants hold *where a test
//! happens to exercise them*; `sfcheck` proves the source cannot express
//! the violation in the first place. It lexes every `.rs` file with a
//! hand-rolled lexer (no syn, no registry deps — hermetic-build policy),
//! scans every `Cargo.toml`, and reports typed diagnostics as
//! deterministic JSON through `frame::json`.
//!
//! See [`lints`] for the lint suite, [`baseline`] for the checked-in
//! finding baseline, and DESIGN.md §10 for the workflow.

pub mod ast;
pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod fix;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod parser;
pub mod report;
pub mod resolve;
pub mod sarif;
pub mod streams;
pub mod taint;
pub mod walker;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use smartfeat_frame::json::JsonValue;

use baseline::Baseline;
use lints::{scan_manifest, Finding, Waived};

/// A tool-level failure (I/O, malformed baseline) — distinct from lint
/// findings, which are data, not errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfError {
    /// What went wrong.
    pub message: String,
}

impl SfError {
    /// Wrap a message.
    pub fn new(message: impl Into<String>) -> SfError {
        SfError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SfError {}

/// Options for one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline path; `None` means `<root>/sfcheck.baseline.json`.
    pub baseline_path: Option<PathBuf>,
    /// Include the `fixes` section for mechanical lints.
    pub fix_dry_run: bool,
    /// `old=new` path-prefix rewrites applied to baseline entries at load
    /// (`--baseline-remap`), so file moves don't resurrect legacy findings.
    pub baseline_remap: Vec<(String, String)>,
    /// Disable the incremental analysis cache (`--no-cache`).
    pub no_cache: bool,
    /// Cache directory; `None` means `<root>/target/sfcheck-cache`
    /// (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
}

impl CheckOptions {
    /// Default options for a root.
    pub fn new(root: impl Into<PathBuf>) -> CheckOptions {
        CheckOptions {
            root: root.into(),
            baseline_path: None,
            fix_dry_run: false,
            baseline_remap: Vec::new(),
            no_cache: false,
            cache_dir: None,
        }
    }

    fn resolved_baseline(&self) -> PathBuf {
        self.baseline_path
            .clone()
            .unwrap_or_else(|| self.root.join("sfcheck.baseline.json"))
    }
}

/// Result of a check run.
#[derive(Debug)]
pub struct Outcome {
    /// Live findings (fail the gate).
    pub findings: Vec<Finding>,
    /// Findings matched by the baseline.
    pub baselined: Vec<Finding>,
    /// Waived findings with reasons.
    pub waived: Vec<Waived>,
    /// The full JSON report document.
    pub report: JsonValue,
    /// The SARIF 2.1.0 document for the same run.
    pub sarif: JsonValue,
}

impl Outcome {
    /// True when the gate passes (no live findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every lint over the workspace at `opts.root`.
///
/// Two phases. The **per-file phase** — lex, token lints, waiver
/// collection, and the full AST parse — is embarrassingly parallel and
/// runs on the `smartfeat_par` ordered pool (`SMARTFEAT_THREADS`
/// honored), so output order is a function of the sorted walk, never of
/// scheduling. The **global phase** is serial: it builds the workspace
/// symbol table and call graph from the per-file ASTs, runs the
/// [`dataflow`] and [`taint`] lints over the dirty file set and the
/// [`streams`] registry plus the obs-volatile discipline over
/// everything, merges their findings back into
/// each file's stream, and only then applies that file's waivers — one
/// waiver mechanism for token and cross-file lints alike.
///
/// The [`cache`] wraps both phases: an unchanged tree replays the whole
/// pre-baseline result, a partially changed tree reuses per-file scans
/// and clean files' cross-file findings. Warm output is byte-identical
/// to cold — the report and SARIF documents are always rebuilt from the
/// (replayed or computed) findings.
pub fn run_check(opts: &CheckOptions) -> Result<Outcome, SfError> {
    let sources = walker::rust_sources(&opts.root)?;
    let manifests = walker::manifests(&opts.root)?;
    if manifests.is_empty() {
        // A scan that finds nothing is a misconfigured root (wrong --root,
        // CI checkout mishap), not a clean repository.
        return Err(SfError::new(format!(
            "no Cargo.toml under {} — not a workspace root?",
            opts.root.display()
        )));
    }
    let files_scanned = sources.len();
    let manifests_scanned = manifests.len();

    let cache = cache::Cache::open(
        &opts.root,
        opts.cache_dir.as_deref(),
        opts.no_cache,
        &sources,
        &manifests,
    );

    let (findings, waived) = if let Some(hit) = cache.try_full_hit(&sources, &manifests) {
        cache.write_stats(&cache::Stats {
            mode: "warm-full",
            files_total: files_scanned,
            files_reused: files_scanned,
            global: "skipped",
            dirty_files: 0,
        });
        (hit.findings, hit.waived)
    } else {
        analyze(&cache, sources, &manifests)
    };

    let mut baseline = Baseline::load(&opts.resolved_baseline())?;
    for (old, new) in &opts.baseline_remap {
        baseline.remap_prefix(old, new);
    }
    let (baselined, live) = baseline.partition(findings);

    let input = report::ReportInput {
        baselined: &baselined,
        findings: &live,
        waived: &waived,
        files_scanned,
        manifests_scanned,
        fix_dry_run: opts.fix_dry_run,
    };
    let report = report::build(&input);
    let sarif = sarif::build(&input);
    Ok(Outcome {
        findings: live,
        baselined,
        waived,
        report,
        sarif,
    })
}

/// Cold / warm-partial analysis: the per-file phase (with per-file cache
/// reuse), symbol table and call graph, scoped cross-file passes, waiver
/// application, the manifest scan, and the cache write-back.
fn analyze(
    cache: &cache::Cache,
    sources: Vec<walker::SourceFile>,
    manifests: &[walker::SourceFile],
) -> (Vec<Finding>, Vec<Waived>) {
    // Per-file phase, parallel and ordered. Unchanged files replay their
    // token-lint results from the cache; lex and parse always run because
    // the symbol table needs every AST.
    let threads = smartfeat_par::resolve_threads(0);
    let scans: Vec<(ast::File, Vec<Finding>, Vec<lints::Waiver>, bool)> =
        smartfeat_par::par_map(threads, &sources, |file| {
            let tokens = lexer::lex(&file.text);
            let tree = parser::parse(&tokens);
            match cache.file_entry(file, cache::fnv1a(file.text.as_bytes())) {
                Some((raw, waivers)) => (tree, raw, waivers, true),
                None => {
                    let (raw, waivers) = lints::scan_rust_raw(file, &tokens);
                    (tree, raw, waivers, false)
                }
            }
        });

    let mut files_reused = 0usize;
    let mut raw_by_file: Vec<(Vec<Finding>, Vec<lints::Waiver>)> = Vec::with_capacity(scans.len());
    let mut parsed: Vec<(walker::SourceFile, ast::File)> = Vec::with_capacity(scans.len());
    for (source, (tree, raw, waivers, reused)) in sources.iter().zip(scans) {
        files_reused += usize::from(reused);
        raw_by_file.push((raw, waivers));
        parsed.push((source.clone(), tree));
    }
    let ws = resolve::build(parsed, manifests);
    let cg = callgraph::build(&ws);
    let plan = cache.plan_global(&sources, manifests, &ws, &cg);

    // Cross-file passes. Dataflow and determinism-taint findings are
    // cacheable per file — each finding's file is call-graph-connected to
    // the function that produced it, so the dirty closure re-derives
    // exactly the affected set. The seed-stream registry and the
    // obs-volatile discipline are global by nature — stream claims in
    // unconnected crates collide, and the volatile-field set is harvested
    // from comment annotations that neither the global fingerprint nor
    // the call graph can see — and cheap, so both always re-run un-scoped
    // and their findings stay out of the cached bucket.
    let index_of: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel_path.as_str(), i))
        .collect();
    let dirty = plan.dirty.as_ref();
    let mut global_by_file: BTreeMap<usize, Vec<Finding>> = plan.cached.clone();
    let mut fresh = dataflow::run_scoped(&ws, &cg, dirty);
    fresh.extend(taint::run(&ws, dirty));
    fresh.extend(locks::run(&ws, &cg, dirty));
    for finding in fresh {
        if let Some(&i) = index_of.get(finding.file.as_str()) {
            global_by_file.entry(i).or_default().push(finding);
        }
    }
    let mut uncached = streams::run(&ws);
    uncached.extend(taint::run_volatile(&ws));
    let mut uncached_by_file: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for finding in uncached {
        if let Some(&i) = index_of.get(finding.file.as_str()) {
            uncached_by_file.entry(i).or_default().push(finding);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut waived: Vec<Waived> = Vec::new();
    for (idx, (raw, waivers)) in raw_by_file.iter().enumerate() {
        let mut merged = raw.clone();
        if let Some(extra) = global_by_file.get(&idx) {
            merged.extend(extra.iter().cloned());
        }
        if let Some(extra) = uncached_by_file.get(&idx) {
            merged.extend(extra.iter().cloned());
        }
        let mut result = lints::apply_waivers(merged, waivers);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    for manifest in manifests {
        let mut result = scan_manifest(manifest);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    // The walk is sorted, but sort again so the report order is a
    // contract of the output, not an accident of scan order.
    findings.sort();
    waived.sort();

    cache.store(
        &sources,
        manifests,
        &ws,
        &cg,
        &raw_by_file,
        &global_by_file,
        &findings,
        &waived,
    );
    let stats = match dirty {
        Some(d) => cache::Stats {
            mode: "warm-partial",
            files_total: sources.len(),
            files_reused,
            global: "partial",
            dirty_files: d.len(),
        },
        None => cache::Stats {
            mode: "cold",
            files_total: sources.len(),
            files_reused,
            global: "full",
            dirty_files: sources.len(),
        },
    };
    cache.write_stats(&stats);
    (findings, waived)
}

/// The workspace root enclosing `start` (nearest `[workspace]` manifest).
pub fn workspace_root_from(start: &Path) -> Result<PathBuf, SfError> {
    walker::find_workspace_root(start)
        .ok_or_else(|| SfError::new(format!("no [workspace] manifest above {}", start.display())))
}
