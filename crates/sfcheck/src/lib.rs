//! `sfcheck`: in-repo static analysis for the SMARTFEAT reproduction.
//!
//! The runtime test suite proves the repo's invariants hold *where a test
//! happens to exercise them*; `sfcheck` proves the source cannot express
//! the violation in the first place. It lexes every `.rs` file with a
//! hand-rolled lexer (no syn, no registry deps — hermetic-build policy),
//! scans every `Cargo.toml`, and reports typed diagnostics as
//! deterministic JSON through `frame::json`.
//!
//! See [`lints`] for the lint suite, [`baseline`] for the checked-in
//! finding baseline, and DESIGN.md §10 for the workflow.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod fix;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod report;
pub mod resolve;
pub mod sarif;
pub mod walker;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use smartfeat_frame::json::JsonValue;

use baseline::Baseline;
use lints::{scan_manifest, Finding, Waived};

/// A tool-level failure (I/O, malformed baseline) — distinct from lint
/// findings, which are data, not errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfError {
    /// What went wrong.
    pub message: String,
}

impl SfError {
    /// Wrap a message.
    pub fn new(message: impl Into<String>) -> SfError {
        SfError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SfError {}

/// Options for one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline path; `None` means `<root>/sfcheck.baseline.json`.
    pub baseline_path: Option<PathBuf>,
    /// Include the `fixes` section for mechanical lints.
    pub fix_dry_run: bool,
    /// `old=new` path-prefix rewrites applied to baseline entries at load
    /// (`--baseline-remap`), so file moves don't resurrect legacy findings.
    pub baseline_remap: Vec<(String, String)>,
}

impl CheckOptions {
    /// Default options for a root.
    pub fn new(root: impl Into<PathBuf>) -> CheckOptions {
        CheckOptions {
            root: root.into(),
            baseline_path: None,
            fix_dry_run: false,
            baseline_remap: Vec::new(),
        }
    }

    fn resolved_baseline(&self) -> PathBuf {
        self.baseline_path
            .clone()
            .unwrap_or_else(|| self.root.join("sfcheck.baseline.json"))
    }
}

/// Result of a check run.
#[derive(Debug)]
pub struct Outcome {
    /// Live findings (fail the gate).
    pub findings: Vec<Finding>,
    /// Findings matched by the baseline.
    pub baselined: Vec<Finding>,
    /// Waived findings with reasons.
    pub waived: Vec<Waived>,
    /// The full JSON report document.
    pub report: JsonValue,
    /// The SARIF 2.1.0 document for the same run.
    pub sarif: JsonValue,
}

impl Outcome {
    /// True when the gate passes (no live findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every lint over the workspace at `opts.root`.
///
/// Two phases. The **per-file phase** — lex, token lints, waiver
/// collection, and the full AST parse — is embarrassingly parallel and
/// runs on the `smartfeat_par` ordered pool (`SMARTFEAT_THREADS`
/// honored), so output order is a function of the sorted walk, never of
/// scheduling. The **global phase** is serial: it builds the workspace
/// symbol table and call graph from the per-file ASTs, runs the
/// [`dataflow`] lints, merges their findings back into each file's
/// stream, and only then applies that file's waivers — one waiver
/// mechanism for token and cross-file lints alike.
pub fn run_check(opts: &CheckOptions) -> Result<Outcome, SfError> {
    let sources = walker::rust_sources(&opts.root)?;
    let manifests = walker::manifests(&opts.root)?;
    if manifests.is_empty() {
        // A scan that finds nothing is a misconfigured root (wrong --root,
        // CI checkout mishap), not a clean repository.
        return Err(SfError::new(format!(
            "no Cargo.toml under {} — not a workspace root?",
            opts.root.display()
        )));
    }
    let files_scanned = sources.len();
    let manifests_scanned = manifests.len();

    // Per-file phase, parallel and ordered.
    let threads = smartfeat_par::resolve_threads(0);
    let scans: Vec<(ast::File, Vec<Finding>, Vec<lints::Waiver>)> =
        smartfeat_par::par_map(threads, &sources, |file| {
            let tokens = lexer::lex(&file.text);
            let tree = parser::parse(&tokens);
            let (raw, waivers) = lints::scan_rust_raw(file, &tokens);
            (tree, raw, waivers)
        });

    // Global phase, serial.
    let mut raw_by_file: Vec<Vec<Finding>> = Vec::with_capacity(scans.len());
    let mut waivers_by_file: Vec<Vec<lints::Waiver>> = Vec::with_capacity(scans.len());
    let mut parsed: Vec<(walker::SourceFile, ast::File)> = Vec::with_capacity(scans.len());
    for (source, (tree, raw, waivers)) in sources.into_iter().zip(scans) {
        raw_by_file.push(raw);
        waivers_by_file.push(waivers);
        parsed.push((source, tree));
    }
    let ws = resolve::build(parsed, &manifests);
    let cg = callgraph::build(&ws);
    let index_of: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel_path.as_str(), i))
        .collect();
    for finding in dataflow::run(&ws, &cg) {
        if let Some(&i) = index_of.get(finding.file.as_str()) {
            raw_by_file[i].push(finding);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut waived: Vec<Waived> = Vec::new();
    for (raw, waivers) in raw_by_file.into_iter().zip(&waivers_by_file) {
        let mut result = lints::apply_waivers(raw, waivers);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    for manifest in &manifests {
        let mut result = scan_manifest(manifest);
        findings.append(&mut result.findings);
        waived.append(&mut result.waived);
    }
    // The walk is sorted, but sort again so the report order is a
    // contract of the output, not an accident of scan order.
    findings.sort();
    waived.sort();

    let mut baseline = Baseline::load(&opts.resolved_baseline())?;
    for (old, new) in &opts.baseline_remap {
        baseline.remap_prefix(old, new);
    }
    let (baselined, live) = baseline.partition(findings);

    let input = report::ReportInput {
        baselined: &baselined,
        findings: &live,
        waived: &waived,
        files_scanned,
        manifests_scanned,
        fix_dry_run: opts.fix_dry_run,
    };
    let report = report::build(&input);
    let sarif = sarif::build(&input);
    Ok(Outcome {
        findings: live,
        baselined,
        waived,
        report,
        sarif,
    })
}

/// The workspace root enclosing `start` (nearest `[workspace]` manifest).
pub fn workspace_root_from(start: &Path) -> Result<PathBuf, SfError> {
    walker::find_workspace_root(start)
        .ok_or_else(|| SfError::new(format!("no [workspace] manifest above {}", start.display())))
}
