//! Lock-discipline analysis over the [`crate::cfg`] layer: models
//! `Mutex`/`RwLock` guard acquisition, guard liveness (binding drops,
//! explicit `drop`, scope exit), and a held-lock summary propagated
//! interprocedurally over the call graph. Four lints ride on it:
//!
//! - `double-lock` — re-acquiring a possibly-held, non-reentrant
//!   `std::sync::Mutex` (or write-locking a held `RwLock`) on any CFG
//!   path, directly or through a call chain: a guaranteed self-deadlock.
//! - `lock-order-inversion` — two process-wide locks acquired in
//!   opposite orders on any two interprocedural paths: a potential
//!   deadlock, reported with both acquisition chains.
//! - `held-lock-blocking` — a live guard across a call into a
//!   `// sfcheck:parallel-entry` fn, an `// sfcheck:io-blocking` fn, or
//!   a blocking primitive (`.join()`, `.recv()`, `thread::scope`): the
//!   pool-starvation shape a multi-tenant server must never ship.
//! - `guard-discipline` — `let _ = m.lock()` (drops the guard
//!   immediately, silently unsynchronizing the critical section; gets a
//!   machine fix to `let _guard = …`), locked-then-never-used named
//!   guards, and `sfcheck:` lock-annotation typos.
//!
//! The zero-false-positive dial (DESIGN.md §16): `.lock()` receivers are
//! acquisitions unless they are stdio handles; `.read()`/`.write()` only
//! count on receivers *proven* `RwLock` (a typed static or a local built
//! by `RwLock::new`); interprocedural propagation covers process-wide
//! identities only (statics and accessor fns); closure bodies are
//! excluded from held-state and summaries (they run elsewhere); test fns
//! and `// sfcheck:lock-helper` fns are never linted. Known blind spots:
//! trait-object dispatch, guards stored in structs, guards bound through
//! `if let`/`match` patterns.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{self, Block, Expr, Pos, Stmt};
use crate::callgraph::CallGraph;
use crate::cfg::{self, BlockId, Cfg, Step};
use crate::dataflow::{finding_at, PARALLEL_ENTRY};
use crate::lints::Finding;
use crate::resolve::{FnId, Workspace};
use crate::walker::FileClass;

/// Marker naming a fn that blocks on I/O; holding a lock across a call
/// into one is flagged.
pub const IO_BLOCKING: &str = "io-blocking";
/// Marker naming a fn whose first argument is locked on the caller's
/// behalf (the shared poisoned-lock helper).
pub const LOCK_HELPER: &str = "lock-helper";

/// What a guard locks. `Static` and `Accessor` name process-wide locks
/// and participate in interprocedural propagation; `Field`/`Local` are
/// meaningful only within one fn.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockId {
    /// A `static` (module-level or fn-local) with a lock value.
    Static(String),
    /// The result of calling a workspace fn (`registry().lock()`), by
    /// the accessor's qualified name.
    Accessor(String),
    /// A field chain (`self.inner.state`).
    Field(String),
    /// A plain local binding.
    Local(String),
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockId::Static(n) | LockId::Field(n) | LockId::Local(n) => write!(f, "{n}"),
            LockId::Accessor(q) => write!(f, "{q}()"),
        }
    }
}

impl LockId {
    /// Process-wide identities propagate across calls.
    fn is_global(&self) -> bool {
        matches!(self, LockId::Static(_) | LockId::Accessor(_))
    }
}

/// One acquisition event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Acq {
    /// Lock identity, when the receiver shape names one.
    id: Option<LockId>,
    /// Exclusive (`lock`/`write`) vs shared (`read`).
    excl: bool,
    pos: Pos,
}

/// A live, named guard.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Guard {
    id: Option<LockId>,
    excl: bool,
}

/// Dataflow fact: may-live guards by binding name.
type Fact = BTreeMap<String, Guard>;

/// First deterministic witness of an ordered acquisition pair: `a` held
/// at `pos` while `b` is acquired through `chain`.
#[derive(Debug, Clone)]
struct Witness {
    file: usize,
    pos: Pos,
    chain: Vec<String>,
}

type Pairs = BTreeMap<(LockId, LockId), Witness>;

/// Findings and pair witnesses collected during the emission replay.
struct Emit<'s> {
    findings: &'s mut Vec<Finding>,
    pairs: &'s mut Pairs,
}

/// One lock-relevant event, in evaluation (walk) order.
enum Event {
    Acq(Acq),
    /// A resolved workspace call (path or unambiguous method dispatch).
    Call(FnId, Pos),
    /// A blocking primitive.
    Blocking(&'static str, Pos),
    /// `drop(name)` releases the named guard.
    Drop(String),
}

/// Workspace-wide lock model: markers plus the transitive may-acquire
/// summary (global identities only) with witness back-links.
struct Pass<'a> {
    ws: &'a Workspace,
    cg: &'a CallGraph,
    helpers: BTreeSet<FnId>,
    parallel: BTreeSet<FnId>,
    io_blocking: BTreeSet<FnId>,
    /// Per fn: global lock → any-path exclusive acquisition.
    trans: Vec<BTreeMap<LockId, bool>>,
    /// Per fn and lock: the callee the acquisition arrives through
    /// (self for direct sites) — the witness-chain back-link.
    via: Vec<BTreeMap<LockId, FnId>>,
}

impl<'a> Pass<'a> {
    fn build(ws: &'a Workspace, cg: &'a CallGraph) -> Pass<'a> {
        let mut pass = Pass {
            ws,
            cg,
            helpers: ws.marked(LOCK_HELPER).into_iter().collect(),
            parallel: ws.marked(PARALLEL_ENTRY).into_iter().collect(),
            io_blocking: ws.marked(IO_BLOCKING).into_iter().collect(),
            trans: vec![BTreeMap::new(); ws.fns.len()],
            via: vec![BTreeMap::new(); ws.fns.len()],
        };
        // Direct global acquisitions. Helpers are excluded: their
        // `.lock()` on a parameter is the implementation, not a site.
        for id in 0..ws.fns.len() {
            if pass.helpers.contains(&id) {
                continue;
            }
            let Some(body) = ws.body_of(id) else { continue };
            let ctx = FnCtx::new(&pass, id, body);
            let mut events = Vec::new();
            for stmt in &body.stmts {
                ctx.stmt_events(stmt, &mut events);
            }
            for ev in events {
                if let Event::Acq(acq) = ev {
                    if let Some(lock) = acq.id {
                        if lock.is_global() {
                            let e = pass.trans[id].entry(lock.clone()).or_insert(false);
                            *e |= acq.excl;
                            pass.via[id].entry(lock).or_insert(id);
                        }
                    }
                }
            }
        }
        // Transitive closure over call edges, to fixpoint. Deterministic:
        // fns and locks iterate in ID/lock order every round.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..ws.fns.len() {
                for callee_ix in 0..pass.cg.edges[id].len() {
                    let callee = pass.cg.edges[id][callee_ix];
                    let inherited: Vec<(LockId, bool)> = pass.trans[callee]
                        .iter()
                        .map(|(l, e)| (l.clone(), *e))
                        .collect();
                    for (lock, excl) in inherited {
                        match pass.trans[id].get(&lock) {
                            Some(&have) if have || !excl => {}
                            _ => {
                                pass.trans[id].insert(lock.clone(), excl);
                                pass.via[id].entry(lock).or_insert(callee);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        pass
    }

    /// The acquisition chain `fn → … → direct site` for a lock in a
    /// fn's transitive summary, as qualified names.
    fn chain_of(&self, mut id: FnId, lock: &LockId) -> Vec<String> {
        let mut out = vec![self.ws.fns[id].qname.clone()];
        let mut budget = self.ws.fns.len() + 1;
        while let Some(&next) = self.via[id].get(lock) {
            if next == id || budget == 0 {
                break;
            }
            budget -= 1;
            id = next;
            out.push(self.ws.fns[id].qname.clone());
        }
        out
    }
}

/// Per-fn analysis context: the lock model specialized to one body.
struct FnCtx<'a> {
    pass: &'a Pass<'a>,
    id: FnId,
    /// Local binding names proven `RwLock` (typed or `RwLock::new`).
    rwlocks: BTreeSet<String>,
    /// Every identifier the body mentions in value position (plus
    /// format-interpolated names) — the guard-usage oracle.
    uses: BTreeSet<String>,
}

impl<'a> FnCtx<'a> {
    fn new<'b>(pass: &'a Pass<'a>, id: FnId, body: &'b Block) -> FnCtx<'a> {
        let mut rwlocks = BTreeSet::new();
        let mut uses = BTreeSet::new();
        let mut lets: Vec<&'b ast::LetStmt> = Vec::new();
        for stmt in &body.stmts {
            if let Stmt::Let(l) = stmt {
                lets.push(l);
            }
        }
        let mut visit = |e: &'b Expr| {
            match e {
                // Nested blocks: their `let`s feed the RwLock proof too.
                Expr::Block(b) => {
                    for stmt in &b.stmts {
                        if let Stmt::Let(l) = stmt {
                            lets.push(l);
                        }
                    }
                }
                Expr::Path(p) => {
                    if let Some(head) = p.segments.first() {
                        uses.insert(head.clone());
                    }
                }
                Expr::Lit(l) => {
                    for name in interpolated(&l.text) {
                        uses.insert(name);
                    }
                }
                _ => {}
            }
        };
        ast::walk_block(body, &mut visit);
        for l in lets {
            let from_ctor = matches!(
                &l.init,
                Some(Expr::Call(c)) if matches!(
                    &*c.callee,
                    Expr::Path(p) if p.segments.len() >= 2
                        && p.segments[p.segments.len() - 2] == "RwLock"
                )
            );
            if l.ty.contains("RwLock") || from_ctor {
                rwlocks.extend(l.bound.iter().cloned());
            }
        }
        FnCtx {
            pass,
            id,
            rwlocks,
            uses,
        }
    }

    /// The lock a receiver/argument expression names, if any.
    fn identity(&self, e: &Expr) -> Option<LockId> {
        match e {
            Expr::Path(p) => {
                let last = p.segments.last()?;
                if self.pass.ws.statics.contains_key(last) {
                    Some(LockId::Static(last.clone()))
                } else if p.segments.len() == 1 {
                    Some(LockId::Local(last.clone()))
                } else {
                    None
                }
            }
            Expr::Field(f) => {
                let mut parts = vec![f.name.clone()];
                let mut base = &*f.base;
                loop {
                    match base {
                        Expr::Field(inner) => {
                            parts.push(inner.name.clone());
                            base = &inner.base;
                        }
                        Expr::Path(p) => {
                            parts.push(p.segments.join("::"));
                            break;
                        }
                        _ => return None,
                    }
                }
                parts.reverse();
                Some(LockId::Field(parts.join(".")))
            }
            Expr::Call(c) => {
                // An accessor fn returning the lock (`registry().lock()`).
                let Expr::Path(p) = &*c.callee else {
                    return None;
                };
                let info = &self.pass.ws.fns[self.id];
                let targets = self.pass.ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                );
                let first = *targets.first()?;
                let qname = &self.pass.ws.fns[first].qname;
                // cfg-variants share a qname; anything else is ambiguous.
                if targets.iter().all(|&t| &self.pass.ws.fns[t].qname == qname) {
                    Some(LockId::Accessor(qname.clone()))
                } else {
                    None
                }
            }
            Expr::MethodCall(m) if matches!(m.method.as_str(), "expect" | "unwrap") => {
                self.identity(&m.recv)
            }
            _ => None,
        }
    }

    /// True when `id` is a proven `RwLock`, so `.read()`/`.write()` on it
    /// count as acquisitions.
    fn proven_rwlock(&self, id: &LockId) -> bool {
        match id {
            LockId::Static(n) => self
                .pass
                .ws
                .statics
                .get(n)
                .is_some_and(|s| s.ty.contains("RwLock")),
            LockId::Local(n) => self.rwlocks.contains(n),
            LockId::Accessor(_) | LockId::Field(_) => false,
        }
    }

    /// Is this expression node itself an acquisition?
    fn acquisition(&self, e: &Expr) -> Option<Acq> {
        match e {
            Expr::MethodCall(m) if m.method == "lock" && m.args.is_empty() => {
                if stdio_handle(&m.recv) {
                    return None;
                }
                Some(Acq {
                    id: self.identity(&m.recv),
                    excl: true,
                    pos: m.pos,
                })
            }
            Expr::MethodCall(m)
                if matches!(m.method.as_str(), "read" | "write") && m.args.is_empty() =>
            {
                let id = self.identity(&m.recv)?;
                if !self.proven_rwlock(&id) {
                    return None;
                }
                Some(Acq {
                    excl: m.method == "write",
                    id: Some(id),
                    pos: m.pos,
                })
            }
            Expr::Call(c) => {
                // A `// sfcheck:lock-helper` fn locks its first argument.
                let Expr::Path(p) = &*c.callee else {
                    return None;
                };
                let info = &self.pass.ws.fns[self.id];
                let targets = self.pass.ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                );
                if !targets.iter().any(|t| self.pass.helpers.contains(t)) {
                    return None;
                }
                Some(Acq {
                    id: c.args.first().and_then(|a| self.identity(a)),
                    excl: true,
                    pos: c.pos,
                })
            }
            _ => None,
        }
    }

    /// An initializer whose value IS a guard (possibly behind
    /// `.expect()`/`.unwrap()`), so the binding keeps the lock held.
    fn direct_guard(&self, e: &Expr) -> Option<Acq> {
        if let Some(acq) = self.acquisition(e) {
            return Some(acq);
        }
        if let Expr::MethodCall(m) = e {
            if matches!(m.method.as_str(), "expect" | "unwrap") {
                return self.direct_guard(&m.recv);
            }
        }
        None
    }

    /// Collect lock-relevant events under a statement, in order.
    fn stmt_events(&self, stmt: &Stmt, out: &mut Vec<Event>) {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    self.expr_events(init, out);
                }
            }
            Stmt::Expr(e) => self.expr_events(e, out),
            Stmt::Item(_) => {}
        }
    }

    /// Collect lock-relevant events under an expression, in evaluation
    /// order. Closure bodies are skipped: they execute elsewhere, so
    /// their acquisitions are neither held here nor part of this fn's
    /// summary.
    fn expr_events(&self, e: &Expr, out: &mut Vec<Event>) {
        if let Some(acq) = self.acquisition(e) {
            out.push(Event::Acq(acq));
        }
        match e {
            Expr::Path(_) | Expr::Lit(_) | Expr::Closure(_) => {}
            Expr::Call(c) => {
                if let Expr::Path(p) = &*c.callee {
                    let last = p.segments.last().map(String::as_str).unwrap_or("");
                    if last == "drop" && c.args.len() == 1 {
                        if let Expr::Path(a) = &c.args[0] {
                            if a.segments.len() == 1 {
                                out.push(Event::Drop(a.segments[0].clone()));
                            }
                        }
                    }
                    if last == "scope"
                        && p.segments.len() >= 2
                        && p.segments[p.segments.len() - 2] == "thread"
                    {
                        out.push(Event::Blocking("thread::scope", c.pos));
                    }
                    let info = &self.pass.ws.fns[self.id];
                    for t in self.pass.ws.resolve_path(
                        info.file,
                        &info.module,
                        info.impl_ty.as_deref(),
                        &p.segments,
                    ) {
                        // Agree with the call graph (std-name and
                        // self-edge filtering live there).
                        if self.pass.cg.edges[self.id].binary_search(&t).is_ok()
                            && !self.pass.helpers.contains(&t)
                        {
                            out.push(Event::Call(t, c.pos));
                        }
                    }
                }
                self.expr_events(&c.callee, out);
                for a in &c.args {
                    self.expr_events(a, out);
                }
            }
            Expr::MethodCall(m) => {
                if m.args.is_empty()
                    && matches!(m.method.as_str(), "join" | "recv" | "recv_timeout")
                {
                    let what: &'static str = match m.method.as_str() {
                        "join" => ".join()",
                        "recv" => ".recv()",
                        _ => ".recv_timeout()",
                    };
                    out.push(Event::Blocking(what, m.pos));
                }
                if let Some(cands) = self.pass.ws.methods.get(&m.method) {
                    if let [single] = cands[..] {
                        if self.pass.cg.edges[self.id].binary_search(&single).is_ok() {
                            out.push(Event::Call(single, m.pos));
                        }
                    }
                }
                self.expr_events(&m.recv, out);
                for a in &m.args {
                    self.expr_events(a, out);
                }
            }
            Expr::Macro(mac) => {
                for a in &mac.args {
                    self.expr_events(a, out);
                }
            }
            Expr::Index(i) => {
                self.expr_events(&i.base, out);
                self.expr_events(&i.index, out);
            }
            Expr::Field(f) => self.expr_events(&f.base, out),
            Expr::Block(b) => {
                for stmt in &b.stmts {
                    self.stmt_events(stmt, out);
                }
            }
            Expr::Seq(s) => {
                for c in &s.children {
                    self.expr_events(c, out);
                }
            }
        }
    }

    /// Push the fact through one step. With a sink, also emit findings
    /// and record acquisition pairs — the state updates are identical
    /// either way, so the fixpoint transfer and the emission replay
    /// always agree on guard liveness.
    fn step_fact(&self, fact: &mut Fact, step: &Step<'_>, mut sink: Option<&mut Emit<'_>>) {
        match step {
            Step::Bind { names, init, pos } => {
                let Some(init) = init else { return };
                self.eval_events(init, fact, sink.as_deref_mut());
                let Some(acq) = self.direct_guard(init) else {
                    return;
                };
                match names.first() {
                    None => {
                        // `let _ = m.lock()` drops the guard immediately.
                        if let Some(s) = sink {
                            let what = acq
                                .id
                                .as_ref()
                                .map(|id| format!("`{id}` "))
                                .unwrap_or_default();
                            let mut f = finding_at(
                                self.pass.ws,
                                self.pass.ws.fns[self.id].file,
                                *pos,
                                "guard-discipline",
                                format!(
                                    "guard-discipline: `let _ = …` drops the {what}guard \
                                     immediately — the critical section is empty; bind it \
                                     as `let _guard = …` to hold the lock"
                                ),
                            );
                            if f.snippet.contains("let _ =") {
                                f.suggestion =
                                    Some(f.snippet.replacen("let _ =", "let _guard =", 1));
                            }
                            s.findings.push(f);
                        }
                    }
                    Some(g) => {
                        if let Some(s) = sink {
                            if !g.starts_with('_') && !self.uses.contains(*g) {
                                s.findings.push(finding_at(
                                    self.pass.ws,
                                    self.pass.ws.fns[self.id].file,
                                    *pos,
                                    "guard-discipline",
                                    format!(
                                        "guard-discipline: guard `{g}` is locked but never \
                                         used — name it `_{g}` if the lock is held for \
                                         effect, or delete the acquisition"
                                    ),
                                ));
                            }
                        }
                        fact.insert(
                            (*g).to_string(),
                            Guard {
                                id: acq.id,
                                excl: acq.excl,
                            },
                        );
                    }
                }
            }
            Step::Eval(e) => self.eval_events(e, fact, sink),
            Step::EndScope(names) => {
                for n in names {
                    fact.remove(*n);
                }
            }
        }
    }

    /// Process the events under one evaluated expression against the
    /// current held set, in order.
    fn eval_events(&self, e: &Expr, fact: &mut Fact, mut sink: Option<&mut Emit<'_>>) {
        let mut events = Vec::new();
        self.expr_events(e, &mut events);
        let file = self.pass.ws.fns[self.id].file;
        for ev in events {
            match ev {
                Event::Drop(name) => {
                    fact.remove(&name);
                }
                Event::Acq(acq) => {
                    let Some(s) = sink.as_deref_mut() else {
                        continue;
                    };
                    let Some(id) = &acq.id else { continue };
                    if let Some(gname) = conflicting_guard(fact, id, acq.excl) {
                        s.findings.push(finding_at(
                            self.pass.ws,
                            file,
                            acq.pos,
                            "double-lock",
                            format!(
                                "double-lock: `{id}` may already be held here (guard \
                                 `{gname}`) — re-acquiring a non-reentrant lock \
                                 self-deadlocks"
                            ),
                        ));
                    }
                    if id.is_global() {
                        let me = &self.pass.ws.fns[self.id].qname;
                        for held in held_globals(fact, id) {
                            s.pairs.entry((held, id.clone())).or_insert(Witness {
                                file,
                                pos: acq.pos,
                                chain: vec![me.clone()],
                            });
                        }
                    }
                }
                Event::Call(callee, pos) => {
                    let Some(s) = sink.as_deref_mut() else {
                        continue;
                    };
                    if !fact.is_empty() {
                        let kind = if self.pass.parallel.contains(&callee) {
                            Some(PARALLEL_ENTRY)
                        } else if self.pass.io_blocking.contains(&callee) {
                            Some(IO_BLOCKING)
                        } else {
                            None
                        };
                        if let Some(kind) = kind {
                            s.findings.push(finding_at(
                                self.pass.ws,
                                file,
                                pos,
                                "held-lock-blocking",
                                format!(
                                    "held-lock-blocking: {} held across a call into \
                                     `{}` (marked {kind}) — a lock must never span a \
                                     blocking boundary",
                                    held_desc(fact),
                                    self.pass.ws.fns[callee].qname,
                                ),
                            ));
                        }
                    }
                    for (lock, excl) in &self.pass.trans[callee] {
                        if let Some(gname) = conflicting_guard(fact, lock, *excl) {
                            let mut chain = vec![self.pass.ws.fns[self.id].qname.clone()];
                            chain.extend(self.pass.chain_of(callee, lock));
                            s.findings.push(finding_at(
                                self.pass.ws,
                                file,
                                pos,
                                "double-lock",
                                format!(
                                    "double-lock: `{lock}` is held here (guard `{gname}`) \
                                     and re-acquired through the call path {} — \
                                     self-deadlock",
                                    chain.join(" → "),
                                ),
                            ));
                        }
                        for held in held_globals(fact, lock) {
                            let mut chain = vec![self.pass.ws.fns[self.id].qname.clone()];
                            chain.extend(self.pass.chain_of(callee, lock));
                            s.pairs.entry((held, lock.clone())).or_insert(Witness {
                                file,
                                pos,
                                chain,
                            });
                        }
                    }
                }
                Event::Blocking(what, pos) => {
                    let Some(s) = sink.as_deref_mut() else {
                        continue;
                    };
                    if !fact.is_empty() {
                        s.findings.push(finding_at(
                            self.pass.ws,
                            file,
                            pos,
                            "held-lock-blocking",
                            format!(
                                "held-lock-blocking: {} held across blocking `{what}` — \
                                 a lock must never span a blocking boundary",
                                held_desc(fact),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

impl<'a, 'p> cfg::Analysis<'a> for FnCtx<'p> {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        BTreeMap::new()
    }

    fn join(&self, a: &Fact, b: &Fact) -> Fact {
        let mut out = a.clone();
        for (name, g) in b {
            match out.get_mut(name) {
                None => {
                    out.insert(name.clone(), g.clone());
                }
                Some(have) if have == g => {}
                Some(have) => {
                    // Same binding, different lock on the two paths:
                    // keep it live but forget the identity (may-hold).
                    have.excl |= g.excl;
                    if have.id != g.id {
                        have.id = None;
                    }
                }
            }
        }
        out
    }

    fn transfer(&self, cfg: &Cfg<'a>, block: BlockId, fact: Fact) -> Fact {
        let mut fact = fact;
        for step in &cfg.blocks[block].steps {
            self.step_fact(&mut fact, step, None);
        }
        fact
    }
}

/// A held guard on `id` whose mode conflicts with a new `excl`
/// acquisition (read/read is the only compatible pairing).
fn conflicting_guard(fact: &Fact, id: &LockId, excl: bool) -> Option<String> {
    fact.iter()
        .find(|(_, g)| g.id.as_ref() == Some(id) && (g.excl || excl))
        .map(|(name, _)| name.clone())
}

/// Global locks held by the fact, other than `acquiring`.
fn held_globals(fact: &Fact, acquiring: &LockId) -> Vec<LockId> {
    let mut out: Vec<LockId> = fact
        .values()
        .filter_map(|g| g.id.clone())
        .filter(|id| id.is_global() && id != acquiring)
        .collect();
    out.dedup();
    out
}

/// Human description of the held set for messages.
fn held_desc(fact: &Fact) -> String {
    let parts: Vec<String> = fact
        .iter()
        .map(|(name, g)| match &g.id {
            Some(id) => format!("guard `{name}` on `{id}`"),
            None => format!("guard `{name}`"),
        })
        .collect();
    parts.join(", ")
}

/// `io::stdout().lock()` and friends are not sync locks.
fn stdio_handle(e: &Expr) -> bool {
    match e {
        Expr::Call(c) => stdio_handle(&c.callee),
        Expr::MethodCall(m) => stdio_handle(&m.recv),
        Expr::Path(p) => matches!(
            p.segments.last().map(String::as_str),
            Some("stdout" | "stderr" | "stdin")
        ),
        _ => false,
    }
}

/// `{ident}`-style names inside a literal (format interpolation), for
/// the guard-usage oracle.
fn interpolated(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > i + 1 && !bytes[i + 1].is_ascii_digit() {
                if let Ok(name) = std::str::from_utf8(&bytes[i + 1..j]) {
                    out.push(name.to_string());
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Typo'd marker spellings the guard-discipline lint repairs.
const MARKER_TYPOS: [(&str, &str); 3] = [
    ("sfcheck:io_blocking", "sfcheck:io-blocking"),
    ("sfcheck:lock_helper", "sfcheck:lock-helper"),
    ("sfcheck:parallel_entry", "sfcheck:parallel-entry"),
];

/// Run the lock-discipline lints.
///
/// Summaries and acquisition pairs are always computed whole-workspace —
/// an inversion's two sides can live in call-graph-disconnected files,
/// so no dirty closure is sound for the model itself (the cache instead
/// fingerprints lock-relevant files; see `cache::global_fingerprint`).
/// Emission is dirty-scoped: a finding is kept only when its file is in
/// the dirty set, and clean files replay theirs from the cache.
pub fn run(ws: &Workspace, cg: &CallGraph, dirty: Option<&BTreeSet<usize>>) -> Vec<Finding> {
    let pass = Pass::build(ws, cg);
    let mut out: Vec<Finding> = Vec::new();
    let mut pairs: Pairs = BTreeMap::new();
    for id in 0..ws.fns.len() {
        let info = &ws.fns[id];
        if info.is_test || pass.helpers.contains(&id) {
            continue;
        }
        let Some(body) = ws.body_of(id) else { continue };
        let ctx = FnCtx::new(&pass, id, body);
        let cfg = Cfg::build(body);
        let facts = cfg::fixpoint(&cfg, &ctx);
        let mut fn_findings = Vec::new();
        for (b, entry) in facts.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let mut fact = entry.clone();
            let mut emit = Emit {
                findings: &mut fn_findings,
                pairs: &mut pairs,
            };
            for step in &cfg.blocks[b].steps {
                ctx.step_fact(&mut fact, step, Some(&mut emit));
            }
        }
        if dirty.is_none_or(|d| d.contains(&info.file)) {
            out.append(&mut fn_findings);
        }
    }
    for ((a, b), w) in &pairs {
        if a >= b {
            continue;
        }
        let Some(rev) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        if dirty.is_none_or(|d| d.contains(&w.file)) {
            out.push(finding_at(
                ws,
                w.file,
                w.pos,
                "lock-order-inversion",
                format!(
                    "lock-order-inversion: `{a}` then `{b}` (path: {}) but `{b}` then \
                     `{a}` (path: {}) — opposite acquisition orders can deadlock",
                    w.chain.join(" → "),
                    rev.chain.join(" → "),
                ),
            ));
        }
    }
    // Marker typos: an `sfcheck:` lock annotation that silently does
    // nothing is a discipline hole, not a style nit.
    for (idx, file) in ws.files.iter().enumerate() {
        if file.class == FileClass::Test || dirty.is_some_and(|d| !d.contains(&idx)) {
            continue;
        }
        for (lno, line) in file.text.lines().enumerate() {
            let Some(slashes) = line.find("//") else {
                continue;
            };
            for (typo, fixed) in MARKER_TYPOS {
                if let Some(col) = line.find(typo) {
                    if col < slashes {
                        continue;
                    }
                    let pos = Pos {
                        line: lno as u32 + 1,
                        col: col as u32 + 1,
                    };
                    let mut f = finding_at(
                        ws,
                        idx,
                        pos,
                        "guard-discipline",
                        format!(
                            "guard-discipline: annotation typo — `{typo}` is not a \
                             recognized marker; write `{fixed}`"
                        ),
                    );
                    f.suggestion = Some(f.snippet.replacen(typo, fixed, 1));
                    out.push(f);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::{classify, crate_dir_of, SourceFile};

    fn ws_from(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let manifests = vec![SourceFile {
            rel_path: "crates/app/Cargo.toml".to_string(),
            text: "[package]\nname = \"app\"\n".to_string(),
            class: classify("crates/app/Cargo.toml"),
            crate_dir: crate_dir_of("crates/app/Cargo.toml"),
        }];
        let parsed = files
            .iter()
            .map(|(rel, text)| {
                (
                    SourceFile {
                        rel_path: rel.to_string(),
                        text: text.to_string(),
                        class: classify(rel),
                        crate_dir: crate_dir_of(rel),
                    },
                    parse(&lex(text)),
                )
            })
            .collect();
        let ws = crate::resolve::build(parsed, &manifests);
        let cg = crate::callgraph::build(&ws);
        (ws, cg)
    }

    fn lints_of(src: &str) -> Vec<Finding> {
        let (ws, cg) = ws_from(&[("crates/app/src/lib.rs", src)]);
        run(&ws, &cg, None)
    }

    const TWO_MUTEXES: &str = "static A: Mutex<i32> = Mutex::new(0);\n\
                               static B: Mutex<i32> = Mutex::new(0);\n";

    #[test]
    fn inversion_across_three_fns_is_reported_with_both_chains() {
        let src = format!(
            "{TWO_MUTEXES}\
             pub fn f1() {{ let ga = A.lock().unwrap(); g(); drop(ga); }}\n\
             pub fn g() {{ let gb = B.lock().unwrap(); drop(gb); }}\n\
             pub fn f2() {{ let gb = B.lock().unwrap(); h(); drop(gb); }}\n\
             pub fn h() {{ let ga = A.lock().unwrap(); drop(ga); }}\n"
        );
        let found = lints_of(&src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "lock-order-inversion");
        assert!(
            found[0].message.contains("f1 → app::g"),
            "{}",
            found[0].message
        );
        assert!(
            found[0].message.contains("f2 → app::h"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn consistent_nesting_order_is_clean() {
        let src = format!(
            "{TWO_MUTEXES}\
             pub fn f() {{ let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }}\n\
             pub fn g() {{ let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }}\n"
        );
        assert!(lints_of(&src).is_empty());
    }

    #[test]
    fn double_lock_behind_a_branch_is_caught() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   pub fn f(flag: bool) {\n\
                   let g1 = M.lock().unwrap();\n\
                   if flag { let g2 = M.lock().unwrap(); drop(g2); }\n\
                   drop(g1);\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "double-lock");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn double_lock_through_a_call_chain_names_the_path() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   pub fn f() { let g1 = M.lock().unwrap(); mid(); drop(g1); }\n\
                   pub fn mid() { leaf(); }\n\
                   pub fn leaf() { let g2 = M.lock().unwrap(); drop(g2); }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "double-lock");
        assert!(
            found[0].message.contains("app::f → app::mid → app::leaf"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn guard_dropped_before_the_blocking_call_is_clean() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   // sfcheck:parallel-entry\n\
                   pub fn heavy() {}\n\
                   pub fn f() { let g = M.lock().unwrap(); drop(g); heavy(); }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn guard_held_across_parallel_entry_call_is_flagged() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   // sfcheck:parallel-entry\n\
                   pub fn heavy() {}\n\
                   pub fn f() { let g = M.lock().unwrap(); heavy(); drop(g); }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "held-lock-blocking");
        assert!(
            found[0].message.contains("app::heavy"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn guard_held_across_recv_is_flagged() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   pub fn f(rx: Receiver<i32>) {\n\
                   let g = M.lock().unwrap();\n\
                   let v = rx.recv().unwrap();\n\
                   drop(v); drop(g);\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "held-lock-blocking");
        assert!(found[0].message.contains(".recv()"), "{}", found[0].message);
    }

    #[test]
    fn let_underscore_lock_gets_a_machine_fix() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   pub fn f() { let _ = M.lock().unwrap(); }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "guard-discipline");
        let fix = found[0].suggestion.as_deref().expect("machine fix");
        assert!(fix.contains("let _guard ="), "{fix}");
    }

    #[test]
    fn unused_named_guard_is_flagged_and_underscore_name_is_not() {
        let noisy = "static M: Mutex<i32> = Mutex::new(0);\n\
                     pub fn compute() {}\n\
                     pub fn f() { let guard = M.lock().unwrap(); compute(); }\n";
        let found = lints_of(noisy);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "guard-discipline");
        assert!(
            found[0].message.contains("never used"),
            "{}",
            found[0].message
        );

        let quiet = "static M: Mutex<i32> = Mutex::new(0);\n\
                     pub fn compute() {}\n\
                     pub fn f() { let _guard = M.lock().unwrap(); compute(); }\n";
        assert!(lints_of(quiet).is_empty());
    }

    #[test]
    fn rwlock_read_read_is_clean_but_read_write_is_double_lock() {
        let clean = "static R: RwLock<i32> = RwLock::new(0);\n\
                     pub fn f() {\n\
                     let a = R.read().unwrap();\n\
                     let b = R.read().unwrap();\n\
                     drop(b); drop(a);\n\
                     }\n";
        assert!(lints_of(clean).is_empty());

        let bad = "static R: RwLock<i32> = RwLock::new(0);\n\
                   pub fn f() {\n\
                   let a = R.read().unwrap();\n\
                   let b = R.write().unwrap();\n\
                   drop(b); drop(a);\n\
                   }\n";
        let found = lints_of(bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "double-lock");
    }

    #[test]
    fn lock_helper_call_counts_as_acquisition_and_helper_is_not_linted() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   // sfcheck:lock-helper\n\
                   pub fn lp(m: &Mutex<i32>) -> i32 { m.lock().unwrap() }\n\
                   pub fn f() { let a = lp(&M); let b = lp(&M); drop(b); drop(a); }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "double-lock");
        assert!(found[0].message.contains('M'), "{}", found[0].message);
    }

    #[test]
    fn accessor_fn_gives_the_lock_a_process_wide_identity() {
        let src = "pub fn registry() -> i32 { 0 }\n\
                   pub fn f() {\n\
                   let a = registry().lock().unwrap();\n\
                   let b = registry().lock().unwrap();\n\
                   drop(b); drop(a);\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "double-lock");
        assert!(
            found[0].message.contains("registry()"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn stdio_locks_and_unproven_read_write_are_ignored() {
        let src = "pub fn f(buf: Cursor<i32>) {\n\
                   let out = std::io::stdout().lock();\n\
                   let n = buf.read();\n\
                   drop(n); drop(out);\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn closure_bodies_are_outside_the_held_set() {
        // The closure runs elsewhere; its acquisition must not count as
        // held at the call site, and must not enter the fn summary.
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   pub fn f() {\n\
                   let g = M.lock().unwrap();\n\
                   let job = move || M.lock().unwrap();\n\
                   drop(job); drop(g);\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn marker_typo_is_reported_with_a_fix() {
        let src = format!(
            "pub fn slow() {{}}\n{} sfcheck:io{}blocking\npub fn f() {{}}\n",
            "//", '_'
        );
        let found = lints_of(&src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "guard-discipline");
        let fix = found[0].suggestion.as_deref().expect("machine fix");
        assert!(fix.contains("sfcheck:io-blocking"), "{fix}");
    }

    #[test]
    fn inversion_pairs_survive_disconnected_call_components() {
        // The two sides live in files with no call path between them —
        // the shape the lock footprint in the cache fingerprint exists
        // for.
        let shared = "static A: Mutex<i32> = Mutex::new(0);\n\
                      static B: Mutex<i32> = Mutex::new(0);\n";
        let one = "pub fn f() { let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }\n";
        let two = "pub fn g() { let b = B.lock().unwrap(); let a = A.lock().unwrap(); drop(a); drop(b); }\n";
        let (ws, cg) = ws_from(&[
            ("crates/app/src/lib.rs", shared),
            ("crates/app/src/one.rs", one),
            ("crates/app/src/two.rs", two),
        ]);
        let found = run(&ws, &cg, None);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint, "lock-order-inversion");
        // Dirty-scoped emission keeps the finding only for its own file.
        let dirty: BTreeSet<usize> = [1usize].into_iter().collect();
        let scoped = run(&ws, &cg, Some(&dirty));
        assert_eq!(scoped.len(), 1, "{scoped:?}");
        let other: BTreeSet<usize> = [2usize].into_iter().collect();
        assert!(run(&ws, &cg, Some(&other)).is_empty());
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = "static M: Mutex<i32> = Mutex::new(0);\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { let g = M.lock().unwrap(); let h = M.lock().unwrap(); drop(h); drop(g); }\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }
}
