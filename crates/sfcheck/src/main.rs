//! `sfcheck` CLI.
//!
//! ```text
//! cargo run -p sfcheck --                 # human output, exit 1 on findings
//! cargo run -p sfcheck -- --json          # deterministic JSON report
//! cargo run -p sfcheck -- --sarif         # SARIF 2.1.0 document
//! cargo run -p sfcheck -- --fix-dry-run   # include mechanical fixes in the report
//! cargo run -p sfcheck -- --fix           # apply mechanical fixes to the tree
//! cargo run -p sfcheck -- --write-baseline  # record current findings as the baseline
//! cargo run -p sfcheck -- --baseline-remap crates/old=crates/new  # follow a move
//! cargo run -p sfcheck -- --no-cache       # ignore target/sfcheck-cache
//! cargo run -p sfcheck -- --cache-dir DIR  # cache somewhere else
//! ```
//!
//! Exit codes: `0` clean (or fully baselined/waived), `1` live findings,
//! `2` tool error (I/O, malformed baseline, bad flags).

use std::path::PathBuf;
use std::process::ExitCode;

use sfcheck::baseline::Baseline;
use sfcheck::report::human_line;
use sfcheck::{fix, run_check, workspace_root_from, CheckOptions, SfError};

struct Cli {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    baseline_remap: Vec<(String, String)>,
    json: bool,
    sarif: bool,
    fix_dry_run: bool,
    fix: bool,
    write_baseline: bool,
    no_cache: bool,
    cache_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, SfError> {
    let mut cli = Cli {
        root: None,
        baseline: None,
        baseline_remap: Vec::new(),
        json: false,
        sarif: false,
        fix_dry_run: false,
        fix: false,
        write_baseline: false,
        no_cache: false,
        cache_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--sarif" => cli.sarif = true,
            "--fix-dry-run" => cli.fix_dry_run = true,
            "--fix" => cli.fix = true,
            "--write-baseline" => cli.write_baseline = true,
            "--no-cache" => cli.no_cache = true,
            "--cache-dir" => {
                cli.cache_dir =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        SfError::new("--cache-dir requires a directory argument")
                    })?));
            }
            "--root" => {
                cli.root =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        SfError::new("--root requires a directory argument")
                    })?));
            }
            "--baseline" => {
                cli.baseline =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        SfError::new("--baseline requires a path argument")
                    })?));
            }
            "--baseline-remap" => {
                let spec = args.next().ok_or_else(|| {
                    SfError::new("--baseline-remap requires an `old=new` argument")
                })?;
                let (old, new) = spec.split_once('=').ok_or_else(|| {
                    SfError::new(format!("--baseline-remap `{spec}`: expected `old=new`"))
                })?;
                cli.baseline_remap.push((old.to_string(), new.to_string()));
            }
            "--help" | "-h" => {
                println!(
                    "sfcheck: repo-invariant static analysis\n\
                     \n\
                     USAGE: sfcheck [--root DIR] [--baseline PATH] \
                     [--baseline-remap OLD=NEW]... [--json] [--sarif] \
                     [--fix-dry-run] [--fix] [--write-baseline] \
                     [--no-cache] [--cache-dir DIR]\n\
                     \n\
                     Exit codes: 0 clean, 1 live findings, 2 tool error."
                );
                std::process::exit(0);
            }
            other => return Err(SfError::new(format!("unknown flag `{other}`"))),
        }
    }
    if cli.json && cli.sarif {
        return Err(SfError::new("--json and --sarif are mutually exclusive"));
    }
    Ok(cli)
}

fn run() -> Result<bool, SfError> {
    let cli = parse_args()?;
    let root = match cli.root {
        Some(r) => r,
        None => {
            let cwd =
                std::env::current_dir().map_err(|e| SfError::new(format!("current dir: {e}")))?;
            workspace_root_from(&cwd)?
        }
    };
    let mut opts = CheckOptions::new(root.clone());
    opts.baseline_path = cli.baseline;
    opts.fix_dry_run = cli.fix_dry_run;
    opts.baseline_remap = cli.baseline_remap;
    opts.no_cache = cli.no_cache;
    opts.cache_dir = cli.cache_dir;

    let outcome = run_check(&opts)?;

    if cli.fix {
        // Apply to live and baselined findings alike: a legacy finding
        // with a mechanical fix should get fixed, not preserved.
        let mut targets = outcome.findings.clone();
        targets.extend(outcome.baselined.iter().cloned());
        let fixed = fix::apply(&root, &targets)?;
        for note in &fixed.skipped {
            eprintln!("sfcheck: fix skipped: {note}");
        }
        println!(
            "sfcheck: applied {} fix(es) in {} file(s)",
            fixed.applied, fixed.files_changed
        );
        // Re-check so the gate reflects the tree as rewritten.
        let after = run_check(&opts)?;
        let remaining = after
            .findings
            .iter()
            .chain(after.baselined.iter())
            .filter(|f| f.suggestion.is_some())
            .count();
        if remaining > 0 {
            return Err(SfError::new(format!(
                "{remaining} machine-applicable finding(s) survived --fix"
            )));
        }
        return Ok(after.clean());
    }

    if cli.write_baseline {
        let path = opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| root.join("sfcheck.baseline.json"));
        let doc = Baseline::to_json(&outcome.findings).emit();
        std::fs::write(&path, doc + "\n")
            .map_err(|e| SfError::new(format!("write baseline {}: {e}", path.display())))?;
        eprintln!(
            "sfcheck: wrote {} finding(s) to {}",
            outcome.findings.len(),
            path.display()
        );
        return Ok(true);
    }

    if cli.sarif {
        println!("{}", outcome.sarif.emit());
    } else if cli.json {
        println!("{}", outcome.report.emit());
    } else {
        for f in &outcome.findings {
            println!("{}", human_line(f));
        }
        let summary = &outcome.report;
        let stat = |k: &str| {
            summary
                .get("summary")
                .and_then(|s| s.get(k))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        println!(
            "sfcheck: {} finding(s), {} baselined, {} waived ({} files, {} manifests)",
            stat("findings"),
            stat("baselined"),
            stat("waived"),
            stat("files_scanned"),
            stat("manifests_scanned"),
        );
    }
    Ok(outcome.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("sfcheck: error: {e}");
            ExitCode::from(2)
        }
    }
}
