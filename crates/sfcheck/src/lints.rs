//! The lint suite, keyed to this repository's invariants.
//!
//! | id | lint | invariant it guards |
//! |----|------|---------------------|
//! | D1 | `wall-clock` | wall-clock reads only inside `crates/obs`'s gate |
//! | D2 | `hash-collections` | no `HashMap`/`HashSet` in output-feeding crates |
//! | D3 | `env-dependence` | env reads only at the sanctioned resolution points |
//! | H1 | `hermetic-manifest` | zero registry dependencies in any manifest |
//! | P1 | `panic-hygiene` | no `unwrap`/`expect`/`panic!` in core/frame library code |
//! | P2 | `unsafe-binary-op` | `binary_op_unsafe` only in the CAAFE baseline |
//! | W1 | `waiver-syntax` | every waiver names a known lint and gives a reason |
//! | F1 | `par-capture-race` | parallel closures capture no shared-mutable bindings |
//! | F2 | `rng-seed-discipline` | rng streams in parallel regions derive per item |
//! | F3 | `panic-reachability` | no panic site reachable from the public pipeline API |
//! | T1 | `determinism-taint` | no wall/env/thread/hash-order value reaches an output sink |
//! | T2 | `seed-stream-collision` | every `seed_jump` stream claims a disjoint index range |
//! | T3 | `obs-volatile-discipline` | volatile fields reach the report only under `volatile` |
//! | L1 | `lock-order-inversion` | process-wide locks are acquired in one global order |
//! | L2 | `double-lock` | no possibly-held non-reentrant lock is ever re-acquired |
//! | L3 | `held-lock-blocking` | no lock guard lives across a blocking or pool boundary |
//! | L4 | `guard-discipline` | every lock guard is bound, used, and dropped deliberately |
//!
//! F1–F3 are the cross-file dataflow lints ([`crate::dataflow`]); they run
//! over the workspace symbol table and call graph rather than per-file
//! tokens, but their findings waive identically. T1 and T3 are the
//! interprocedural taint lints ([`crate::taint`]) and T2 the seed-stream
//! registry ([`crate::streams`]), added in v3 — same waiver mechanism.
//! L1–L4 are the CFG-level lock-discipline lints ([`crate::locks`]),
//! added in v4: a per-fn control-flow graph tracks guard liveness and a
//! call-graph summary propagates held-lock sets interprocedurally.
//!
//! Findings can be waived inline with a line comment:
//!
//! ```text
//! // sfcheck:allow(panic-hygiene) invariant: indices filtered from 0..n
//! // sfcheck:allow(panic-hygiene, panic-reachability) proven unreachable
//! ```
//!
//! on the offending line or the line directly above it. One waiver may
//! name several comma-separated lints when one site trips overlapping
//! invariants. The reason text after the closing parenthesis is
//! mandatory — a waiver is documentation, not suppression.

use std::collections::BTreeMap;

use crate::lexer::{lex, Token, TokenKind};
use crate::walker::{FileClass, SourceFile};

/// Identifiers of every shipped lint, in report order.
pub const LINT_IDS: [&str; 17] = [
    "determinism-taint",
    "double-lock",
    "env-dependence",
    "guard-discipline",
    "hash-collections",
    "held-lock-blocking",
    "hermetic-manifest",
    "lock-order-inversion",
    "obs-volatile-discipline",
    "panic-hygiene",
    "panic-reachability",
    "par-capture-race",
    "rng-seed-discipline",
    "seed-stream-collision",
    "unsafe-binary-op",
    "waiver-syntax",
    "wall-clock",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint identifier (kebab-case, from [`LINT_IDS`]).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line, used for baseline matching.
    pub snippet: String,
    /// A mechanical replacement line for `--fix-dry-run`, when one exists.
    pub suggestion: Option<String>,
}

/// A finding suppressed by an inline waiver, kept for the report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's mandatory reason text.
    pub reason: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Live findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a valid inline waiver.
    pub waived: Vec<Waived>,
}

/// A parsed `// sfcheck:allow(<lint>[, <lint>…]) <reason>` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The lints the waiver names (comma-separated in source).
    pub lints: Vec<String>,
    /// Mandatory reason text after the closing parenthesis.
    pub reason: String,
}

/// Extract waivers from comment tokens; malformed waivers become
/// `waiver-syntax` findings so they cannot silently suppress nothing.
/// Waivers live only in lexer comment tokens — waiver-shaped text inside
/// string literals or code never matches.
fn collect_waivers(file: &str, lines: &[&str], tokens: &[Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // Doc comments (`///` exactly, `//!`) document the waiver syntax
        // itself; only plain comments — `//`, and `////`+ which rustc also
        // treats as non-doc — can carry a live waiver.
        let is_doc = (tok.text.starts_with("///") && !tok.text.starts_with("////"))
            || tok.text.starts_with("//!");
        if is_doc {
            continue;
        }
        let Some(at) = tok.text.find("sfcheck:allow") else {
            continue;
        };
        let rest = &tok.text[at + "sfcheck:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            r.split_once(')')
                .map(|(list, reason)| (list.trim().to_string(), reason.trim().to_string()))
        });
        let bad = |message: String, suggestion: Option<String>| Finding {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            lint: "waiver-syntax",
            message,
            snippet: snippet_at(lines, tok.line),
            suggestion,
        };
        let Some((list, reason)) = parsed else {
            findings.push(bad(
                "malformed waiver: expected `sfcheck:allow(<lint>[, <lint>…]) <reason>`".into(),
                None,
            ));
            continue;
        };
        let lints: Vec<String> = list
            .split(',')
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty())
            .collect();
        if lints.is_empty() {
            findings.push(bad(
                "malformed waiver: empty lint list in `sfcheck:allow(…)`".into(),
                None,
            ));
            continue;
        }
        let unknown: Vec<&String> = lints
            .iter()
            .filter(|l| !LINT_IDS.contains(&l.as_str()))
            .collect();
        if let Some(first) = unknown.first() {
            // Underscore-for-hyphen typos are machine-fixable: suggest the
            // line with every such lint name normalized.
            let mut fixed_line = snippet_at(lines, tok.line);
            let mut fixable = true;
            for u in &unknown {
                let normalized = u.replace('_', "-");
                if LINT_IDS.contains(&normalized.as_str()) {
                    fixed_line = fixed_line.replace(u.as_str(), &normalized);
                } else {
                    fixable = false;
                }
            }
            findings.push(bad(
                format!("waiver names unknown lint `{first}`"),
                fixable.then_some(fixed_line),
            ));
            continue;
        }
        if reason.is_empty() {
            findings.push(bad(
                format!(
                    "waiver for `{}` is missing its mandatory reason",
                    lints.join(", ")
                ),
                None,
            ));
            continue;
        }
        waivers.push(Waiver {
            line: tok.line,
            lints,
            reason,
        });
    }
    (waivers, findings)
}

fn snippet_at(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items, as inclusive line
/// spans. Token-level: find the attribute, then the guarded item's body
/// (brace-matched) or its terminating semicolon.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if let Some(end) = match_test_attribute(&code, i) {
            let start_line = code[i].line;
            if let Some(region_end) = item_end(&code, end) {
                regions.push((start_line, code[region_end].line));
                i = region_end + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// If `code[i..]` starts a `#[cfg(test)]`-style or `#[test]` attribute,
/// return the index one past its closing `]`.
fn match_test_attribute(code: &[&Token], i: usize) -> Option<usize> {
    if code[i].text != "#" || code.get(i + 1)?.text != "[" {
        return None;
    }
    // Scan the attribute's token group, tracking bracket depth.
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    for (j, tok) in code.iter().enumerate().skip(i + 1) {
        match tok.text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    // `#[test]` or `#[cfg(… test …)]` both gate test code.
                    let gated = is_test && (saw_cfg || j == i + 3);
                    return gated.then_some(j + 1);
                }
            }
            "test" if tok.kind == TokenKind::Ident => is_test = true,
            "cfg" if tok.kind == TokenKind::Ident => saw_cfg = true,
            _ => {}
        }
    }
    None
}

/// Index of the token ending the item that starts at `code[i]`: the
/// matching `}` of its first brace, or a `;` before any brace opens
/// (e.g. `#[cfg(test)] use …;`). Skips stacked attributes.
fn item_end(code: &[&Token], mut i: usize) -> Option<usize> {
    // Skip any further attributes between this one and the item.
    while i < code.len() && code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[") {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < code.len() {
            match code[j].text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    let mut depth = 0usize;
    for (j, tok) in code.iter().enumerate().skip(i) {
        match tok.text.as_str() {
            ";" if depth == 0 => return Some(j),
            "{" => depth += 1,
            "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Scan one Rust source file with every applicable per-file lint.
pub fn scan_rust(file: &SourceFile) -> ScanResult {
    let (raw, waivers) = scan_rust_raw(file, &lex(&file.text));
    apply_waivers(raw, &waivers)
}

/// The per-file phase of a scan: raw (unwaived) findings plus the file's
/// parsed waivers. The caller applies waivers after merging in any
/// cross-file findings for this file (the dataflow lints), so one waiver
/// mechanism covers both.
pub fn scan_rust_raw(file: &SourceFile, tokens: &[Token]) -> (Vec<Finding>, Vec<Waiver>) {
    let lines: Vec<&str> = file.text.lines().collect();
    let (waivers, mut waiver_findings) = collect_waivers(&file.rel_path, &lines, tokens);
    let regions = test_regions(tokens);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();

    let mut raw: Vec<Finding> = Vec::new();
    raw.append(&mut waiver_findings);
    wall_clock_lint(file, &lines, &regions, &code, &mut raw);
    hash_collections_lint(file, &lines, &regions, &code, &mut raw);
    env_dependence_lint(file, &lines, &regions, &code, &mut raw);
    panic_hygiene_lint(file, &lines, &regions, &code, &mut raw);
    unsafe_binary_op_lint(file, &lines, &regions, &code, &mut raw);
    (raw, waivers)
}

/// Split raw findings into live and waived using same-line / line-above
/// waivers that name the finding's lint.
pub fn apply_waivers(raw: Vec<Finding>, waivers: &[Waiver]) -> ScanResult {
    let mut out = ScanResult::default();
    for finding in raw {
        let waiver = waivers.iter().find(|w| {
            w.lints.iter().any(|l| l == finding.lint)
                && (w.line == finding.line || w.line + 1 == finding.line)
        });
        match waiver {
            Some(w) => out.waived.push(Waived {
                finding,
                reason: w.reason.clone(),
            }),
            None => out.findings.push(finding),
        }
    }
    out
}

fn push(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    lines: &[&str],
    tok: &Token,
    lint: &'static str,
    message: String,
    suggestion: Option<String>,
) {
    out.push(Finding {
        file: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        lint,
        message,
        snippet: snippet_at(lines, tok.line),
        suggestion,
    });
}

fn seq(code: &[&Token], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, want)| code.get(i + k).is_some_and(|t| t.text == *want))
}

/// D1 `wall-clock`: `Instant::now()` / `SystemTime` outside `crates/obs`.
///
/// The logical-clock contract (DESIGN §9) requires every wall-clock read
/// to route through the obs gate (`obs::global::{time, stopwatch}` or the
/// recorder's wall mode) so reports stay byte-identical by default.
fn wall_clock_lint(
    file: &SourceFile,
    lines: &[&str],
    regions: &[(u32, u32)],
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    if file.crate_dir == "obs" || file.class == FileClass::Test {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if in_regions(regions, tok.line) || tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "Instant" && seq(code, i + 1, &[":", ":", "now"]) {
            push(
                out,
                file,
                lines,
                tok,
                "wall-clock",
                "bare `Instant::now()` outside the obs wall-clock gate; route through \
                 `smartfeat_obs::global::stopwatch`/`time` so logical-clock mode holds"
                    .into(),
                None,
            );
        } else if tok.text == "SystemTime" {
            push(
                out,
                file,
                lines,
                tok,
                "wall-clock",
                "`SystemTime` outside the obs wall-clock gate".into(),
                None,
            );
        }
    }
}

/// Crates whose data structures can reach serialized or user-visible
/// output (reports, CSV/JSON emission, metrics, tables): iteration order
/// there must be defined, so hash collections are banned.
fn feeds_output(crate_dir: &str) -> bool {
    matches!(crate_dir, "frame" | "core" | "obs" | "bench" | "sfcheck")
}

/// D2 `hash-collections`: `HashMap`/`HashSet` in output-feeding crates.
fn hash_collections_lint(
    file: &SourceFile,
    lines: &[&str],
    regions: &[(u32, u32)],
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    if !feeds_output(&file.crate_dir) || file.class == FileClass::Test {
        return;
    }
    for tok in code {
        if in_regions(regions, tok.line) || tok.kind != TokenKind::Ident {
            continue;
        }
        // Blessed deterministic alternatives: sorted `BTreeMap`/`BTreeSet`
        // (the mechanical `--fix` replacement) or the fixed-seed,
        // first-occurrence-ordered `smartfeat_frame::StableMap`/`StableSet`
        // for hot paths. Neither trips this lint.
        let (replacement, stable) = match tok.text.as_str() {
            "HashMap" => ("BTreeMap", "StableMap"),
            "HashSet" => ("BTreeSet", "StableSet"),
            _ => continue,
        };
        let line_text = snippet_at(lines, tok.line);
        push(
            out,
            file,
            lines,
            tok,
            "hash-collections",
            format!(
                "`{}` in an output-feeding module; iteration order is nondeterministic — \
                 use `{replacement}` or `smartfeat_frame::{stable}`",
                tok.text
            ),
            Some(
                line_text
                    .replace("HashMap", "BTreeMap")
                    .replace("HashSet", "BTreeSet"),
            ),
        );
    }
}

/// D3 `env-dependence`: env reads outside the sanctioned resolution
/// points (`crates/par` for `SMARTFEAT_THREADS`, `crates/obs` for the
/// wall-clock opt-in). Bin and test code is exempt: there, environment is
/// the user interface.
fn env_dependence_lint(
    file: &SourceFile,
    lines: &[&str],
    regions: &[(u32, u32)],
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    if matches!(file.crate_dir.as_str(), "par" | "obs") || file.class != FileClass::Lib {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if in_regions(regions, tok.line) || tok.kind != TokenKind::Ident {
            continue;
        }
        let hit = (tok.text == "env"
            && (seq(code, i + 1, &[":", ":", "var"]) || seq(code, i + 1, &[":", ":", "var_os"])))
            || tok.text == "available_parallelism";
        if hit {
            push(
                out,
                file,
                lines,
                tok,
                "env-dependence",
                "environment-dependent value outside the sanctioned resolution points \
                 (crates/par, crates/obs); thread/env effects must stay out of \
                 deterministic outputs"
                    .into(),
                None,
            );
        }
    }
}

/// P1 `panic-hygiene`: `.unwrap()` / `.expect("…")` / `panic!`-family
/// macros in library code of `crates/core` and `crates/frame`. Test and
/// bin code is exempt; `parser.expect(b'x')`-style method calls whose
/// argument is not a string literal are not `Option::expect`.
fn panic_hygiene_lint(
    file: &SourceFile,
    lines: &[&str],
    regions: &[(u32, u32)],
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    if !matches!(file.crate_dir.as_str(), "core" | "frame") || file.class != FileClass::Lib {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if in_regions(regions, tok.line) {
            continue;
        }
        let finding = if tok.text == "." && seq(code, i + 1, &["unwrap", "(", ")"]) {
            Some("`.unwrap()` in library code; return a typed `Error` instead".to_string())
        } else if tok.text == "."
            && seq(code, i + 1, &["expect", "("])
            && code
                .get(i + 3)
                .is_some_and(|t| matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit))
        {
            Some("`.expect(\"…\")` in library code; return a typed `Error` instead".to_string())
        } else if tok.kind == TokenKind::Ident
            && matches!(
                tok.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && code.get(i + 1).is_some_and(|t| t.text == "!")
        {
            Some(format!("`{}!` in library code", tok.text))
        } else {
            None
        };
        if let Some(message) = finding {
            push(out, file, lines, tok, "panic-hygiene", message, None);
        }
    }
}

/// P2 `unsafe-binary-op`: `binary_op_unsafe` is the deliberately
/// crash-prone division used to reproduce CAAFE's unguarded generated
/// code; any other call site is a bug. The definition and its documented
/// CAAFE use are the only allowed files.
fn unsafe_binary_op_lint(
    file: &SourceFile,
    lines: &[&str],
    regions: &[(u32, u32)],
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    const ALLOWED: [&str; 3] = [
        "crates/frame/src/ops/binary.rs",
        "crates/frame/src/ops/mod.rs",
        "crates/baselines/src/caafe.rs",
    ];
    if ALLOWED.contains(&file.rel_path.as_str()) || file.class == FileClass::Test {
        return;
    }
    for tok in code {
        if in_regions(regions, tok.line) || tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "binary_op_unsafe" {
            push(
                out,
                file,
                lines,
                tok,
                "unsafe-binary-op",
                "`binary_op_unsafe` outside the CAAFE baseline that documents it; \
                 use the guarded `binary_op`"
                    .into(),
                None,
            );
        }
    }
}

/// H1 `hermetic-manifest`: dependency entries in any `Cargo.toml` that
/// are not `path` dependencies or `workspace = true` inheritance. This is
/// the static twin of `tests/hermetic.rs`'s runtime scan.
pub fn scan_manifest(file: &SourceFile) -> ScanResult {
    let mut out = ScanResult::default();
    let mut table = String::new();
    for (idx, raw) in file.text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            table = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let in_dep_table = table == "workspace.dependencies" || table.ends_with("dependencies");
        if !in_dep_table {
            continue;
        }
        let ok = line.contains("path =")
            || line.contains("path=")
            || line.contains("workspace = true")
            || line.contains("workspace=true");
        if !ok {
            out.findings.push(Finding {
                file: file.rel_path.clone(),
                line: idx as u32 + 1,
                col: 1,
                lint: "hermetic-manifest",
                message: format!(
                    "`[{table}]` declares a non-path dependency (hermetic-build policy: \
                     std-only, zero registry deps)"
                ),
                snippet: line.to_string(),
                suggestion: None,
            });
        }
    }
    out
}

/// Per-lint finding counts (all lints present, zero-filled) for the
/// report summary.
pub fn lint_counts(findings: &[Finding]) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = LINT_IDS.iter().map(|id| (id.to_string(), 0)).collect();
    for f in findings {
        *counts.entry(f.lint.to_string()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(crate_dir: &str, rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
            class: crate::walker::classify(rel_path),
            crate_dir: crate_dir.to_string(),
        }
    }

    fn lints_of(result: &ScanResult) -> Vec<&'static str> {
        result.findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn wall_clock_fires_outside_obs_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let in_core = lib_file("core", "crates/core/src/pipeline.rs", src);
        assert_eq!(lints_of(&scan_rust(&in_core)), ["wall-clock"]);
        let in_obs = lib_file("obs", "crates/obs/src/global.rs", src);
        assert!(scan_rust(&in_obs).findings.is_empty());
    }

    #[test]
    fn wall_clock_ignores_comments_strings_and_tests() {
        let src = r#"
// Instant::now() in a comment
fn f() { let s = "Instant::now()"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x = Instant::now(); }
}
"#;
        let file = lib_file("core", "crates/core/src/pipeline.rs", src);
        assert!(scan_rust(&file).findings.is_empty());
    }

    #[test]
    fn hash_collections_scoped_to_output_crates_with_suggestion() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }";
        let in_frame = lib_file("frame", "crates/frame/src/csv.rs", src);
        let result = scan_rust(&in_frame);
        assert_eq!(result.findings.len(), 3);
        assert_eq!(
            result.findings[0].suggestion.as_deref(),
            Some("use std::collections::BTreeMap;")
        );
        assert!(result.findings[0]
            .message
            .contains("smartfeat_frame::StableMap"));
        // `ml` does not feed serialized output; exempt.
        let in_ml = lib_file("ml", "crates/ml/src/forest.rs", src);
        assert!(scan_rust(&in_ml).findings.is_empty());
    }

    #[test]
    fn stable_map_is_blessed_in_output_crates() {
        // The deterministic index type must NOT trip hash-collections even
        // in the most output-critical crates.
        let src = "use smartfeat_frame::{StableMap, StableSet};\n\
                   fn f() -> StableMap<String, u32> { StableMap::new() }\n\
                   fn g() -> StableSet<String> { StableSet::new() }";
        for (dir, path) in [
            ("frame", "crates/frame/src/frame.rs"),
            ("core", "crates/core/src/transform.rs"),
        ] {
            let file = lib_file(dir, path, src);
            assert!(
                scan_rust(&file).findings.is_empty(),
                "StableMap/StableSet flagged in {path}"
            );
        }
    }

    #[test]
    fn env_dependence_allows_par_obs_bin_and_test() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        assert_eq!(
            lints_of(&scan_rust(&lib_file("rng", "crates/rng/src/check.rs", src))),
            ["env-dependence"]
        );
        assert!(scan_rust(&lib_file("par", "crates/par/src/lib.rs", src))
            .findings
            .is_empty());
        assert!(
            scan_rust(&lib_file("core", "crates/core/src/bin/cli.rs", src))
                .findings
                .is_empty()
        );
        assert!(scan_rust(&lib_file("root", "tests/x.rs", src))
            .findings
            .is_empty());
    }

    #[test]
    fn panic_hygiene_distinguishes_parser_expect() {
        let src = r#"
fn lib1(v: Option<u32>) -> u32 { v.unwrap() }
fn lib2(v: Option<u32>) -> u32 { v.expect("present") }
fn lib3(p: &mut P) { p.expect(b'{'); }
fn lib4() { panic!("boom"); }
"#;
        let file = lib_file("frame", "crates/frame/src/json.rs", src);
        let result = scan_rust(&file);
        assert_eq!(
            lints_of(&result),
            ["panic-hygiene", "panic-hygiene", "panic-hygiene"]
        );
        // The byte-literal expect on line 4 is a parser method, not flagged.
        assert!(result.findings.iter().all(|f| f.line != 4));
    }

    #[test]
    fn panic_hygiene_only_in_core_and_frame_lib() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }";
        assert!(scan_rust(&lib_file("ml", "crates/ml/src/tree.rs", src))
            .findings
            .is_empty());
        assert!(
            scan_rust(&lib_file("core", "crates/core/src/bin/cli.rs", src))
                .findings
                .is_empty()
        );
        assert_eq!(
            lints_of(&scan_rust(&lib_file(
                "core",
                "crates/core/src/config.rs",
                src
            ))),
            ["panic-hygiene"]
        );
    }

    #[test]
    fn unsafe_binary_op_allowed_only_in_caafe() {
        let src = "use smartfeat_frame::ops::binary_op_unsafe;";
        assert!(
            scan_rust(&lib_file("baselines", "crates/baselines/src/caafe.rs", src))
                .findings
                .is_empty()
        );
        assert_eq!(
            lints_of(&scan_rust(&lib_file(
                "baselines",
                "crates/baselines/src/autofeat.rs",
                src
            ))),
            ["unsafe-binary-op"]
        );
    }

    #[test]
    fn waiver_suppresses_and_carries_reason() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // sfcheck:allow(panic-hygiene) invariant: always Some here\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        assert!(result.findings.is_empty());
        assert_eq!(result.waived.len(), 1);
        assert_eq!(result.waived[0].reason, "invariant: always Some here");
    }

    #[test]
    fn waiver_wrong_lint_does_not_suppress() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // sfcheck:allow(wall-clock) mismatched\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        assert_eq!(lints_of(&scan_rust(&file)), ["panic-hygiene"]);
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        let src = "/// Use `// sfcheck:allow(panic-hygiene)` to waive.\nfn f(v: Option<u32>) -> u32 { v.unwrap() }";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        // No waiver-syntax finding for the doc text, and no suppression.
        assert_eq!(lints_of(&result), ["panic-hygiene"]);
    }

    #[test]
    fn waiver_text_inside_string_literals_is_inert() {
        // Waiver-shaped text in a string is neither a live waiver (the
        // unwrap still fires) nor a waiver-syntax finding.
        let src = "fn f(v: Option<u32>) -> u32 {\n    let _doc = \"// sfcheck:allow(panic-hygiene) fake\";\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        assert_eq!(lints_of(&scan_rust(&file)), ["panic-hygiene"]);
    }

    #[test]
    fn four_slash_comments_are_plain_and_carry_waivers() {
        // rustc: exactly three slashes is a doc comment; four or more is a
        // regular comment, so a waiver there is live.
        let src = "fn f(v: Option<u32>) -> u32 {\n    //// sfcheck:allow(panic-hygiene) four slashes are not docs\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        assert!(result.findings.is_empty());
        assert_eq!(result.waived.len(), 1);
    }

    #[test]
    fn comma_list_waiver_covers_each_named_lint() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // sfcheck:allow(panic-hygiene, panic-reachability) invariant: checked above\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        assert!(result.findings.is_empty());
        assert_eq!(result.waived.len(), 1);
        // A lint outside the list is not suppressed.
        let src = "fn f(v: Option<u32>) -> u32 {\n    // sfcheck:allow(wall-clock, env-dependence) mismatched\n    v.unwrap()\n}";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        assert_eq!(lints_of(&scan_rust(&file)), ["panic-hygiene"]);
    }

    #[test]
    fn underscore_lint_typo_gets_a_machine_fix() {
        let src = "// sfcheck:allow(panic_hygiene) reason text\n";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        assert_eq!(lints_of(&result), ["waiver-syntax"]);
        assert_eq!(
            result.findings[0].suggestion.as_deref(),
            Some("// sfcheck:allow(panic-hygiene) reason text")
        );
    }

    #[test]
    fn malformed_waivers_are_findings() {
        let src = "// sfcheck:allow(panic-hygiene)\n// sfcheck:allow(no-such-lint) reason\n// sfcheck:allow no parens\n";
        let file = lib_file("frame", "crates/frame/src/frame.rs", src);
        let result = scan_rust(&file);
        assert_eq!(
            lints_of(&result),
            ["waiver-syntax", "waiver-syntax", "waiver-syntax"]
        );
    }

    #[test]
    fn manifest_scan_flags_registry_shapes() {
        let bad = lib_file(
            "frame",
            "crates/frame/Cargo.toml",
            "[dependencies]\nserde = \"1.0\"\nproptest = { version = \"1\" }\n\
             [dev-dependencies]\ncriterion = { git = \"https://x\" }\n",
        );
        assert_eq!(scan_manifest(&bad).findings.len(), 3);
        let good = lib_file(
            "frame",
            "crates/frame/Cargo.toml",
            "[package]\nname = \"x\"\nversion = \"1.0\"\n\
             [dependencies]\nsmartfeat-rng = { path = \"../rng\" }\nsmartfeat-frame.workspace = true\n",
        );
        assert!(scan_manifest(&good).findings.is_empty());
    }

    #[test]
    fn cfg_test_region_covers_nested_braces() {
        let src = r#"
fn lib(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    fn helper(v: Option<u32>) -> u32 {
        if true { v.unwrap() } else { 0 }
    }
}
fn lib2(v: Option<u32>) -> u32 { v.unwrap() }
"#;
        let file = lib_file("core", "crates/core/src/config.rs", src);
        let result = scan_rust(&file);
        // Only the two library fns fire; the test-module helper is exempt.
        assert_eq!(result.findings.len(), 2);
        assert_eq!(result.findings[0].line, 2);
        assert_eq!(result.findings[1].line, 9);
    }

    #[test]
    fn lint_counts_zero_fill_every_lint() {
        let counts = lint_counts(&[]);
        assert_eq!(counts.len(), LINT_IDS.len());
        assert!(counts.values().all(|&v| v == 0));
    }
}
