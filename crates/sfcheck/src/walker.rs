//! Deterministic workspace walker: find every `.rs` file and `Cargo.toml`
//! under the repository root and classify each one, so the lint scopes can
//! reason about "library code of crate X" without consulting cargo.
//!
//! Determinism contract: the walk is sorted (byte order of relative
//! paths, `/`-separated), so the report lists files in the same order on
//! every run and platform.

use std::fs;
use std::path::{Path, PathBuf};

use crate::SfError;

/// How a source file relates to shipped code; lint scopes key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: what downstream crates and the pipeline execute.
    Lib,
    /// Binary entry points (`src/bin/*`, `src/main.rs`): user-facing CLI
    /// surface where env/config reads are the interface.
    Bin,
    /// Test, bench, or example code (`tests/`, `benches/`, `examples/`):
    /// exempt from the panic-hygiene and determinism lints by design.
    Test,
}

impl FileClass {
    /// Report tag.
    pub fn name(self) -> &'static str {
        match self {
            FileClass::Lib => "lib",
            FileClass::Bin => "bin",
            FileClass::Test => "test",
        }
    }
}

/// One discovered file, with text loaded and provenance resolved.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// File contents.
    pub text: String,
    /// Classification from the path shape.
    pub class: FileClass,
    /// The `crates/<name>` directory this file lives under, or `"root"`
    /// for the workspace package's own `src/`, `tests/`, `examples/`.
    pub crate_dir: String,
}

/// Classify a workspace-relative path (`/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let in_dir = |d: &str| parts.iter().rev().skip(1).any(|p| *p == d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileClass::Test;
    }
    if in_dir("bin") || rel_path.ends_with("src/main.rs") {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// The `crates/<name>` component of a path, or `"root"`.
pub fn crate_dir_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Recursively collect workspace-relative paths of files whose name
/// matches `want`, skipping build output and VCS metadata.
fn collect(root: &Path, dir: &Path, out: &mut Vec<String>, want: &dyn Fn(&str) -> bool) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target` is cargo build output; dot-directories (.git, .idea)
            // are never source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out, want);
        } else if want(&name) {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
}

/// All `.rs` files under `root`, sorted, loaded, classified.
pub fn rust_sources(root: &Path) -> Result<Vec<SourceFile>, SfError> {
    let mut paths = Vec::new();
    collect(root, root, &mut paths, &|n| n.ends_with(".rs"));
    paths.sort();
    load(root, paths)
}

/// All `Cargo.toml` manifests under `root`, sorted, loaded.
pub fn manifests(root: &Path) -> Result<Vec<SourceFile>, SfError> {
    let mut paths = Vec::new();
    collect(root, root, &mut paths, &|n| n == "Cargo.toml");
    paths.sort();
    load(root, paths)
}

fn load(root: &Path, paths: Vec<String>) -> Result<Vec<SourceFile>, SfError> {
    let mut out = Vec::with_capacity(paths.len());
    for rel_path in paths {
        let full: PathBuf = root.join(&rel_path);
        let text = fs::read_to_string(&full)
            .map_err(|e| SfError::new(format!("read {}: {e}", full.display())))?;
        let class = classify(&rel_path);
        let crate_dir = crate_dir_of(&rel_path);
        out.push(SourceFile {
            rel_path,
            text,
            class,
            crate_dir,
        });
    }
    Ok(out)
}

/// Search upward from `start` for a directory whose `Cargo.toml` declares
/// `[workspace]` — the root `cargo run -p sfcheck` should scan.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_path_shape() {
        assert_eq!(classify("crates/frame/src/csv.rs"), FileClass::Lib);
        assert_eq!(classify("crates/core/src/bin/smartfeat.rs"), FileClass::Bin);
        assert_eq!(classify("crates/sfcheck/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("tests/hermetic.rs"), FileClass::Test);
        assert_eq!(classify("crates/par/benches/pool.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Test);
        // A file merely *named* tests.rs is not test code.
        assert_eq!(classify("crates/x/src/tests.rs"), FileClass::Lib);
    }

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(crate_dir_of("crates/frame/src/csv.rs"), "frame");
        assert_eq!(crate_dir_of("src/lib.rs"), "root");
        assert_eq!(crate_dir_of("tests/hermetic.rs"), "root");
    }

    #[test]
    fn workspace_walk_is_sorted_and_finds_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/sfcheck has a workspace root");
        let sources = rust_sources(root).expect("walk succeeds");
        let paths: Vec<&str> = sources.iter().map(|s| s.rel_path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "walk output must be sorted");
        assert!(paths.contains(&"crates/sfcheck/src/lexer.rs"));
        assert!(!paths.iter().any(|p| p.starts_with("target/")));
        let manifests = manifests(root).expect("manifest walk succeeds");
        assert!(manifests.len() >= 12);
    }
}
