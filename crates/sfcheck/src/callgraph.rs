//! Conservative call graph over the [`crate::resolve::Workspace`] symbol
//! table.
//!
//! Edges come from two sources:
//!
//! - **Path calls** (`f(…)`, `a::b::f(…)`, `Ty::assoc(…)`) resolved with
//!   [`crate::resolve::Workspace::resolve_path`]. Multi-segment paths used
//!   as values (function references passed to combinators) also produce
//!   edges; single-segment bare names only do so in call position, so a
//!   local variable sharing a fn name does not fabricate an edge.
//! - **Method calls** (`x.f(…)`) under the *unambiguous-dispatch* rule:
//!   an edge is added only when exactly one non-test impl-associated fn in
//!   the entire workspace has that name. Ambiguous names produce no edge,
//!   and neither do names std types also provide ([`STD_METHOD_NAMES`]:
//!   `load`, `lock`, `parse`, …) — the approximation trades recall for
//!   zero-noise reachability reports (DESIGN.md §11).
//!
//! Alongside edges, each function records its panic sites (`unwrap`,
//! string-`expect`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`)
//! so the `panic-reachability` lint can walk roots → sites with an
//! explainable path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::{Expr, Pos};
use crate::resolve::{FnId, Workspace};

/// Method names common on std types (atomics, locks, iterators,
/// collections, `str`). A workspace fn that happens to share one of these
/// names is *not* the unambiguous dispatch target of `x.name(…)` — the
/// receiver is far more likely a std value (`AtomicU64::load` vs a
/// workspace `load`), so these names never produce method edges.
pub(crate) const STD_METHOD_NAMES: [&str; 24] = [
    "clone", "cmp", "default", "drain", "eq", "fmt", "from", "get", "insert", "into", "iter",
    "len", "load", "lock", "new", "next", "parse", "push", "read", "send", "store", "swap", "take",
    "write",
];

/// One panic-capable expression inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, or a macro name with `!`.
    pub what: String,
    /// Line/column of the site.
    pub pos: Pos,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[f]`: sorted, deduplicated callee IDs of function `f`.
    pub edges: Vec<Vec<FnId>>,
    /// `panic_sites[f]`: panic-capable sites inside `f`, in source order.
    pub panic_sites: Vec<Vec<PanicSite>>,
}

/// Build the call graph for every function in the workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut edges = Vec::with_capacity(ws.fns.len());
    let mut panic_sites = Vec::with_capacity(ws.fns.len());
    for id in 0..ws.fns.len() {
        let (e, p) = analyze_fn(ws, id);
        edges.push(e);
        panic_sites.push(p);
    }
    CallGraph { edges, panic_sites }
}

fn analyze_fn(ws: &Workspace, id: FnId) -> (Vec<FnId>, Vec<PanicSite>) {
    let info = &ws.fns[id];
    let Some(body) = ws.body_of(id) else {
        return (Vec::new(), Vec::new());
    };
    let file = &ws.files[info.file];
    let mut callees: BTreeSet<FnId> = BTreeSet::new();
    let mut sites: Vec<PanicSite> = Vec::new();
    crate::ast::walk_block(body, &mut |e| match e {
        Expr::Call(c) => {
            if let Expr::Path(p) = &*c.callee {
                for target in ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                ) {
                    if target != id {
                        callees.insert(target);
                    }
                }
            }
        }
        Expr::Path(p) if p.segments.len() >= 2 => {
            // Fn reference used as a value (`map(parse_row)` etc.). The
            // callee-position duplicate of a direct call dedupes here.
            for target in ws.resolve_path(
                info.file,
                &info.module,
                info.impl_ty.as_deref(),
                &p.segments,
            ) {
                if target != id {
                    callees.insert(target);
                }
            }
        }
        Expr::MethodCall(m) => {
            if !STD_METHOD_NAMES.contains(&m.method.as_str()) {
                if let Some(cands) = ws.methods.get(&m.method) {
                    if cands.len() == 1 && cands[0] != id {
                        callees.insert(cands[0]);
                    }
                }
            }
            match m.method.as_str() {
                "unwrap" if m.args.is_empty() => sites.push(PanicSite {
                    what: "unwrap".into(),
                    pos: m.pos,
                }),
                "expect" if m.args.len() == 1 && is_string_arg(&m.args[0], &file.text) => {
                    sites.push(PanicSite {
                        what: "expect".into(),
                        pos: m.pos,
                    });
                }
                _ => {}
            }
        }
        Expr::Macro(mac) => {
            if let Some(last) = mac.segments.last() {
                if matches!(
                    last.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    sites.push(PanicSite {
                        what: format!("{last}!"),
                        pos: mac.pos,
                    });
                }
            }
        }
        _ => {}
    });
    sites.sort_by_key(|s| (s.pos.line, s.pos.col));
    (callees.into_iter().collect(), sites)
}

/// `expect(arg)` only panics with a message when `arg` is a string — a
/// byte/char argument is a parser-style `expect` method. Checked against
/// the source bytes at the argument's span.
fn is_string_arg(arg: &Expr, text: &str) -> bool {
    if let Expr::Lit(l) = arg {
        let bytes = text.as_bytes();
        let at = l.span.start as usize;
        return match bytes.get(at) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(at + 1), Some(b'"') | Some(b'#')),
            _ => false,
        };
    }
    // Non-literal expect arguments (formatted messages) count as panics.
    !matches!(arg, Expr::Lit(_))
}

impl CallGraph {
    /// BFS from `roots`, returning each reachable fn mapped to its BFS
    /// parent (`roots` map to themselves). Deterministic: the queue is
    /// seeded with sorted roots and edges are stored sorted.
    pub fn reachable_from(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut sorted_roots: Vec<FnId> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in &sorted_roots {
            if r < self.edges.len() && !parent.contains_key(&r) {
                parent.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &callee in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(callee) {
                    slot.insert(f);
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// The call path `root → … → target` implied by a BFS parent map,
    /// rendered as qualified names.
    pub fn path_to(
        &self,
        ws: &Workspace,
        parent: &BTreeMap<FnId, FnId>,
        target: FnId,
    ) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = target;
        let mut guard = 0usize;
        while let Some(&p) = parent.get(&cur) {
            path.push(ws.fns[cur].qname.clone());
            if p == cur || guard > self.edges.len() {
                break;
            }
            cur = p;
            guard += 1;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::{classify, SourceFile};

    fn ws_from(files: &[(&str, &str)]) -> Workspace {
        let manifests = vec![SourceFile {
            rel_path: "crates/x/Cargo.toml".into(),
            text: "[package]\nname = \"smartfeat-x\"\n".into(),
            class: classify("crates/x/Cargo.toml"),
            crate_dir: "x".into(),
        }];
        let parsed = files
            .iter()
            .map(|(rel, text)| {
                (
                    SourceFile {
                        rel_path: rel.to_string(),
                        text: text.to_string(),
                        class: classify(rel),
                        crate_dir: crate::walker::crate_dir_of(rel),
                    },
                    parse(&lex(text)),
                )
            })
            .collect();
        crate::resolve::build(parsed, &manifests)
    }

    #[test]
    fn direct_and_transitive_edges_reach_panic_sites() {
        let ws = ws_from(&[(
            "crates/x/src/lib.rs",
            "pub fn entry() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf(v: Option<u32>) -> u32 { v.unwrap() }\n\
             fn unrelated() { panic!(\"boom\") }",
        )]);
        let cg = build(&ws);
        let entry = 0;
        let parent = cg.reachable_from(&[entry]);
        assert!(parent.contains_key(&2), "leaf reachable via middle");
        assert!(!parent.contains_key(&3), "unrelated not reachable");
        assert_eq!(cg.panic_sites[2][0].what, "unwrap");
        assert_eq!(cg.panic_sites[3][0].what, "panic!");
        let path = cg.path_to(&ws, &parent, 2);
        assert_eq!(
            path,
            [
                "smartfeat_x::entry",
                "smartfeat_x::middle",
                "smartfeat_x::leaf"
            ]
        );
    }

    #[test]
    fn method_edges_require_unambiguous_dispatch() {
        let ws = ws_from(&[(
            "crates/x/src/lib.rs",
            "pub struct A; impl A { pub fn only(&self) {} pub fn dup(&self) {} }\n\
             pub struct B; impl B { pub fn dup(&self) {} }\n\
             pub fn caller(a: &A) { a.only(); a.dup(); }",
        )]);
        let cg = build(&ws);
        let caller = ws
            .fns
            .iter()
            .position(|f| f.name == "caller")
            .expect("caller indexed");
        let only = ws.fns.iter().position(|f| f.name == "only").expect("only");
        assert_eq!(cg.edges[caller], vec![only], "dup is ambiguous: no edge");
    }

    #[test]
    fn std_shadowed_method_names_produce_no_edges() {
        // `stats.load()` is far more likely an atomic than the workspace's
        // only `load` — even unambiguous dispatch must not claim it.
        let ws = ws_from(&[(
            "crates/x/src/lib.rs",
            "pub struct Cfg; impl Cfg { pub fn load(&self) {} }\n\
             pub fn caller(n: &AtomicU64) { n.load(Ordering::Relaxed); }",
        )]);
        let cg = build(&ws);
        let caller = ws.fns.iter().position(|f| f.name == "caller").expect("c");
        assert!(cg.edges[caller].is_empty());
    }

    #[test]
    fn fn_references_as_values_count_as_edges() {
        let ws = ws_from(&[(
            "crates/x/src/lib.rs",
            "pub mod inner { pub fn parse_row() {} }\n\
             pub fn caller(xs: Vec<u32>) { xs.iter().map(inner::parse_row); }",
        )]);
        let cg = build(&ws);
        let caller = ws.fns.iter().position(|f| f.name == "caller").expect("c");
        let target = ws
            .fns
            .iter()
            .position(|f| f.name == "parse_row")
            .expect("t");
        assert_eq!(cg.edges[caller], vec![target]);
    }

    #[test]
    fn parser_style_expect_is_not_a_panic_site() {
        let ws = ws_from(&[(
            "crates/x/src/lib.rs",
            "pub fn f(p: &mut P) { p.expect(b'{'); }\n\
             pub fn g(v: Option<u32>) { v.expect(\"present\"); }",
        )]);
        let cg = build(&ws);
        assert!(cg.panic_sites[0].is_empty(), "byte expect is a parser call");
        assert_eq!(cg.panic_sites[1].len(), 1);
    }
}
