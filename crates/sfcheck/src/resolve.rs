//! Workspace symbol table: every function definition across every crate,
//! with deterministic IDs and a conservative intra-workspace path
//! resolver.
//!
//! Names are resolved the way the lints need, not the way rustc does:
//! crate names come from manifests (hyphens normalized to underscores),
//! module paths come from file locations plus inline `mod` nesting, and a
//! path expression resolves through the file's `use` imports, `crate` /
//! `self` / `super` heads, and enclosing-module fallback. Anything that
//! leaves the workspace (`std`, …) resolves to nothing. The approximation
//! is documented in DESIGN.md §11.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{self, File, Item, ItemKind, Param, Stmt};
use crate::walker::{FileClass, SourceFile};

/// Deterministic function ID: index into [`Workspace::fns`], which is
/// sorted by `(file, span.start)`.
pub type FnId = usize;

/// One parsed source file with its resolution context.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Source text (spans index into this).
    pub text: String,
    /// Classification from the path shape.
    pub class: FileClass,
    /// The `crates/<name>` directory (or `"root"`), from the walker.
    pub crate_dir: String,
    /// Crate name, underscore-normalized (`smartfeat_par`); empty when the
    /// file is under no manifest.
    pub crate_name: String,
    /// Module path of the file within its crate (`["ops", "binary"]`).
    pub module: Vec<String>,
    /// The parsed tree.
    pub ast: File,
    /// Flat import map: binding name → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Glob-import prefixes (`use a::b::*` contributes `["a", "b"]`).
    pub globs: Vec<Vec<String>>,
}

/// One function definition in the symbol table.
#[derive(Debug)]
pub struct FnInfo {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Fully qualified name: `crate::module::…::[Ty::]name`.
    pub qname: String,
    /// Bare function name.
    pub name: String,
    /// Module path of the definition site (inline `mod`s included).
    pub module: Vec<String>,
    /// Enclosing `impl` self-type name, for associated fns.
    pub impl_ty: Option<String>,
    /// Whether the fn is `pub`.
    pub is_pub: bool,
    /// True for test code: test-classified files, `#[cfg(test)]` /
    /// `#[test]` items, or fns nested under such items.
    pub is_test: bool,
    /// `// sfcheck:<name>` markers attached to the fn.
    pub markers: Vec<String>,
    /// Parameters (names, flattened types, `&mut` flags).
    pub params: Vec<Param>,
    /// Byte span of the item.
    pub span: ast::Span,
    /// Line/column of the item.
    pub pos: ast::Pos,
    /// Navigation path from `File::items` to the fn item (indices through
    /// `Mod`/`Impl` nesting), so the body can be fetched on demand.
    pub item_path: Vec<usize>,
}

/// A `static` item (module-level or fn-local) and its declared type.
/// The lock pass reads the type text to spot `Mutex`/`RwLock` globals.
#[derive(Debug, Clone)]
pub struct StaticInfo {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Declared type, as written (empty when unparseable).
    pub ty: String,
    /// True for `static mut`.
    pub mutable: bool,
}

/// The workspace-wide symbol table.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed files in walk (sorted-path) order.
    pub files: Vec<ParsedFile>,
    /// All function definitions, sorted by `(file, span.start)`.
    pub fns: Vec<FnInfo>,
    /// Qualified name → function IDs (cfg-variants can collide).
    pub by_qname: BTreeMap<String, Vec<FnId>>,
    /// Impl-associated functions by bare name (for unambiguous-dispatch
    /// method-call edges).
    pub methods: BTreeMap<String, Vec<FnId>>,
    /// Names of `static mut` items anywhere in the workspace.
    pub mut_statics: BTreeSet<String>,
    /// Every `static` by name (first definition wins), including fn-local
    /// statics, which item collection otherwise never descends into.
    pub statics: BTreeMap<String, StaticInfo>,
    /// Underscore-normalized names of workspace crates.
    pub crate_names: BTreeSet<String>,
}

/// Crate name per manifest directory (`"" → workspace package`), parsed
/// from `[package] name = …` lines; hyphens normalized to underscores.
pub fn crate_dirs(manifests: &[SourceFile]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for m in manifests {
        let dir = m
            .rel_path
            .strip_suffix("Cargo.toml")
            .unwrap_or(&m.rel_path)
            .trim_end_matches('/')
            .to_string();
        let mut table = String::new();
        for raw in m.text.lines() {
            let line = raw.trim();
            if line.starts_with('[') {
                table = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            if table == "package" {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        let name = value.trim().trim_matches('"').replace('-', "_");
                        out.insert(dir.clone(), name);
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Module path of a source file within its crate, from the path shape:
/// `src/lib.rs` / `src/main.rs` / `src/bin/*` → crate root, `src/a/b.rs` →
/// `["a", "b"]`, `mod.rs` names its directory. Test/bench/example files
/// are roots of their own target; they get an empty module path.
fn module_of(rel_in_crate: &str) -> Vec<String> {
    let Some(under_src) = rel_in_crate.strip_prefix("src/") else {
        return Vec::new();
    };
    let mut parts: Vec<&str> = under_src.split('/').collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    if parts.first() == Some(&"bin") {
        return Vec::new();
    }
    let mut module: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    match last {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        other => {
            if let Some(stem) = other.strip_suffix(".rs") {
                module.push(stem.to_string());
            }
        }
    }
    module
}

/// Build the symbol table from parsed files.
///
/// `parsed` carries `(source, ast)` pairs in walk order; `manifests` maps
/// files to crates.
pub fn build(parsed: Vec<(SourceFile, File)>, manifests: &[SourceFile]) -> Workspace {
    let dirs = crate_dirs(manifests);
    let mut files = Vec::with_capacity(parsed.len());
    for (src, tree) in parsed {
        // Longest manifest-directory prefix wins.
        let mut crate_name = String::new();
        let mut best = 0usize;
        for (dir, name) in &dirs {
            let matches = dir.is_empty() || src.rel_path.starts_with(dir);
            if matches && dir.len() >= best {
                best = dir.len();
                crate_name = name.clone();
            }
        }
        let rel_in_crate = if best == 0 {
            src.rel_path.as_str()
        } else {
            src.rel_path[best..].trim_start_matches('/')
        };
        let module = module_of(rel_in_crate);
        let (imports, globs) = collect_imports(&tree);
        files.push(ParsedFile {
            rel_path: src.rel_path,
            text: src.text,
            class: src.class,
            crate_dir: src.crate_dir,
            crate_name,
            module,
            ast: tree,
            imports,
            globs,
        });
    }

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut mut_statics = BTreeSet::new();
    let mut statics = BTreeMap::new();
    for (file_idx, file) in files.iter().enumerate() {
        let in_test_file = file.class == FileClass::Test;
        let mut ctx = CollectCtx {
            file: file_idx,
            crate_name: &file.crate_name,
            module: file.module.clone(),
            impl_ty: None,
            in_test: in_test_file,
            fns: &mut fns,
            mut_statics: &mut mut_statics,
            statics: &mut statics,
        };
        collect_items(&file.ast.items, &mut Vec::new(), &mut ctx);
    }
    fns.sort_by_key(|f| (f.file, f.span.start));

    let mut by_qname: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    let mut methods: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_qname.entry(f.qname.clone()).or_default().push(id);
        if f.impl_ty.is_some() && !f.is_test {
            methods.entry(f.name.clone()).or_default().push(id);
        }
    }
    let crate_names = dirs.values().cloned().collect();
    Workspace {
        files,
        fns,
        by_qname,
        methods,
        mut_statics,
        statics,
        crate_names,
    }
}

struct CollectCtx<'a> {
    file: usize,
    crate_name: &'a str,
    module: Vec<String>,
    impl_ty: Option<String>,
    in_test: bool,
    fns: &'a mut Vec<FnInfo>,
    mut_statics: &'a mut BTreeSet<String>,
    statics: &'a mut BTreeMap<String, StaticInfo>,
}

/// Collect fn-local `static` declarations (direct statements of a body or
/// of bodies of fns nested in it) — `OnceLock<Mutex<…>>` registries live
/// there, out of reach of item collection.
fn body_statics<'a>(b: &'a ast::Block, out: &mut Vec<&'a ast::StaticItem>) {
    for stmt in &b.stmts {
        if let Stmt::Item(item) = stmt {
            match &item.kind {
                ItemKind::Static(s) => out.push(s),
                ItemKind::Fn(f) => {
                    if let Some(body) = &f.body {
                        body_statics(body, out);
                    }
                }
                _ => {}
            }
        }
    }
}

fn collect_items(items: &[Item], path: &mut Vec<usize>, ctx: &mut CollectCtx<'_>) {
    for (idx, item) in items.iter().enumerate() {
        path.push(idx);
        let item_test = ctx.in_test || item.is_test_gated();
        match &item.kind {
            ItemKind::Fn(f) => {
                let mut qname = String::new();
                if !ctx.crate_name.is_empty() {
                    qname.push_str(ctx.crate_name);
                }
                for seg in &ctx.module {
                    qname.push_str("::");
                    qname.push_str(seg);
                }
                if let Some(ty) = &ctx.impl_ty {
                    qname.push_str("::");
                    qname.push_str(ty);
                }
                qname.push_str("::");
                qname.push_str(&f.name);
                ctx.fns.push(FnInfo {
                    file: ctx.file,
                    qname,
                    name: f.name.clone(),
                    module: ctx.module.clone(),
                    impl_ty: ctx.impl_ty.clone(),
                    is_pub: f.is_pub,
                    is_test: item_test,
                    markers: item.markers.clone(),
                    params: f.params.clone(),
                    span: item.span.clone(),
                    pos: item.pos,
                    item_path: path.clone(),
                });
                if let Some(body) = &f.body {
                    let mut found = Vec::new();
                    body_statics(body, &mut found);
                    for s in found {
                        ctx.statics.entry(s.name.clone()).or_insert(StaticInfo {
                            file: ctx.file,
                            ty: s.ty.clone(),
                            mutable: s.mutable,
                        });
                    }
                }
            }
            ItemKind::Mod(m) => {
                if let Some(nested) = &m.items {
                    ctx.module.push(m.name.clone());
                    let was_test = ctx.in_test;
                    ctx.in_test = item_test;
                    collect_items(nested, path, ctx);
                    ctx.in_test = was_test;
                    ctx.module.pop();
                }
            }
            ItemKind::Impl(imp) => {
                let was_ty = ctx.impl_ty.replace(imp.ty_name.clone());
                let was_test = ctx.in_test;
                ctx.in_test = item_test;
                collect_items(&imp.items, path, ctx);
                ctx.in_test = was_test;
                ctx.impl_ty = was_ty;
            }
            ItemKind::Static(s) => {
                if s.mutable {
                    ctx.mut_statics.insert(s.name.clone());
                }
                ctx.statics.entry(s.name.clone()).or_insert(StaticInfo {
                    file: ctx.file,
                    ty: s.ty.clone(),
                    mutable: s.mutable,
                });
            }
            _ => {}
        }
        path.pop();
    }
}

/// Flatten a file's `use` declarations (top-level and inside inline mods)
/// into `alias → path` plus glob prefixes.
fn collect_imports(file: &File) -> (BTreeMap<String, Vec<String>>, Vec<Vec<String>>) {
    let mut imports = BTreeMap::new();
    let mut globs = Vec::new();
    fn walk(
        items: &[Item],
        imports: &mut BTreeMap<String, Vec<String>>,
        globs: &mut Vec<Vec<String>>,
    ) {
        for item in items {
            match &item.kind {
                ItemKind::Use(u) => {
                    for t in &u.targets {
                        if t.alias == "*" {
                            globs.push(t.path.clone());
                        } else {
                            imports
                                .entry(t.alias.clone())
                                .or_insert_with(|| t.path.clone());
                        }
                    }
                }
                ItemKind::Mod(m) => {
                    if let Some(nested) = &m.items {
                        walk(nested, imports, globs);
                    }
                }
                _ => {}
            }
        }
    }
    walk(&file.items, &mut imports, &mut globs);
    (imports, globs)
}

impl Workspace {
    /// The body of a function, navigated via its stored item path.
    pub fn body_of(&self, id: FnId) -> Option<&ast::Block> {
        let info = self.fns.get(id)?;
        let file = self.files.get(info.file)?;
        let mut items = &file.ast.items;
        for (depth, &idx) in info.item_path.iter().enumerate() {
            let item = items.get(idx)?;
            if depth + 1 == info.item_path.len() {
                return match &item.kind {
                    ItemKind::Fn(f) => f.body.as_ref(),
                    _ => None,
                };
            }
            items = match &item.kind {
                ItemKind::Mod(m) => m.items.as_ref()?,
                ItemKind::Impl(i) => &i.items,
                _ => return None,
            };
        }
        None
    }

    /// Resolve a path expression written in `file_idx`, inside a fn whose
    /// module path is `module` and whose enclosing impl type is `impl_ty`.
    /// Returns sorted, deduplicated candidate fn IDs; empty for paths that
    /// leave the workspace or do not name a known fn.
    pub fn resolve_path(
        &self,
        file_idx: usize,
        module: &[String],
        impl_ty: Option<&str>,
        segments: &[String],
    ) -> Vec<FnId> {
        if segments.is_empty() {
            return Vec::new();
        }
        let Some(file) = self.files.get(file_idx) else {
            return Vec::new();
        };
        let mut expanded: Vec<Vec<String>> = Vec::new();
        expanded.push(segments.to_vec());
        if let Some(full) = file.imports.get(&segments[0]) {
            let mut v = full.clone();
            v.extend(segments[1..].iter().cloned());
            expanded.push(v);
        }
        for glob in &file.globs {
            let mut v = glob.clone();
            v.extend(segments.iter().cloned());
            expanded.push(v);
        }

        let mut out = BTreeSet::new();
        for segs in expanded {
            for qname in self.absolute_candidates(file, module, impl_ty, &segs) {
                if let Some(ids) = self.by_qname.get(&qname) {
                    out.extend(ids.iter().copied());
                }
            }
        }
        out.into_iter().collect()
    }

    /// Absolute qualified-name candidates for one (possibly relative)
    /// segment list in the given context.
    fn absolute_candidates(
        &self,
        file: &ParsedFile,
        module: &[String],
        impl_ty: Option<&str>,
        segs: &[String],
    ) -> Vec<String> {
        let head = segs[0].as_str();
        let crate_name = file.crate_name.as_str();
        let join = |parts: &[&str]| parts.join("::");
        let mut out = Vec::new();
        match head {
            "std" | "core" | "alloc" if crate_name != head => return out,
            "crate" => {
                let mut parts: Vec<&str> = vec![crate_name];
                parts.extend(segs[1..].iter().map(String::as_str));
                out.push(join(&parts));
            }
            "self" => {
                let mut parts: Vec<&str> = vec![crate_name];
                parts.extend(module.iter().map(String::as_str));
                parts.extend(segs[1..].iter().map(String::as_str));
                out.push(join(&parts));
            }
            "super" => {
                let mut supers = 0usize;
                while segs.get(supers).map(String::as_str) == Some("super") {
                    supers += 1;
                }
                let keep = module.len().saturating_sub(supers);
                let mut parts: Vec<&str> = vec![crate_name];
                parts.extend(module[..keep].iter().map(String::as_str));
                parts.extend(segs[supers..].iter().map(String::as_str));
                out.push(join(&parts));
            }
            "Self" => {
                if let Some(ty) = impl_ty {
                    let mut parts: Vec<&str> = vec![crate_name];
                    parts.extend(module.iter().map(String::as_str));
                    parts.push(ty);
                    parts.extend(segs[1..].iter().map(String::as_str));
                    out.push(join(&parts));
                }
            }
            _ if self.crate_names.contains(head) => {
                out.push(segs.join("::"));
            }
            _ => {
                // Relative: resolve from the enclosing module, then from
                // the crate root.
                let mut from_mod: Vec<&str> = vec![crate_name];
                from_mod.extend(module.iter().map(String::as_str));
                from_mod.extend(segs.iter().map(String::as_str));
                out.push(join(&from_mod));
                let mut from_root: Vec<&str> = vec![crate_name];
                from_root.extend(segs.iter().map(String::as_str));
                out.push(join(&from_root));
            }
        }
        out
    }

    /// Function IDs whose definitions carry the given marker.
    pub fn marked(&self, marker: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.markers.iter().any(|m| m == marker))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::classify;

    fn src(rel: &str, text: &str) -> (SourceFile, File) {
        let sf = SourceFile {
            rel_path: rel.to_string(),
            text: text.to_string(),
            class: classify(rel),
            crate_dir: crate::walker::crate_dir_of(rel),
        };
        let tree = parse(&lex(text));
        (sf, tree)
    }

    fn manifest(rel: &str, name: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: format!("[package]\nname = \"{name}\"\n"),
            class: classify(rel),
            crate_dir: crate::walker::crate_dir_of(rel),
        }
    }

    fn two_crate_workspace() -> Workspace {
        let manifests = vec![
            manifest("crates/alpha/Cargo.toml", "smartfeat-alpha"),
            manifest("crates/beta/Cargo.toml", "smartfeat-beta"),
        ];
        let parsed = vec![
            src(
                "crates/alpha/src/lib.rs",
                "pub mod ops;\npub fn top() { ops::inner(); }\n\
                 pub struct T;\nimpl T { pub fn assoc(&self) {} }\n\
                 static mut COUNTER: u32 = 0;",
            ),
            src(
                "crates/alpha/src/ops.rs",
                "use smartfeat_beta::helper;\npub fn inner() { helper(); crate::top(); }",
            ),
            src(
                "crates/beta/src/lib.rs",
                "// sfcheck:parallel-entry\npub fn helper() {}\n\
                 #[cfg(test)]\nmod tests { fn t() {} }",
            ),
        ];
        build(parsed, &manifests)
    }

    #[test]
    fn qnames_modules_and_ids_are_deterministic() {
        let ws = two_crate_workspace();
        let qnames: Vec<&str> = ws.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            qnames,
            [
                "smartfeat_alpha::top",
                "smartfeat_alpha::T::assoc",
                "smartfeat_alpha::ops::inner",
                "smartfeat_beta::helper",
                "smartfeat_beta::tests::t",
            ]
        );
        assert!(ws.fns[4].is_test, "cfg(test) mod marks nested fns as test");
        assert!(!ws.fns[3].is_test);
        assert!(ws.mut_statics.contains("COUNTER"));
        assert_eq!(ws.marked("parallel-entry"), vec![3]);
    }

    #[test]
    fn resolution_covers_imports_crate_and_relative_paths() {
        let ws = two_crate_workspace();
        let inner = 2usize; // smartfeat_alpha::ops::inner, file crates/alpha/src/ops.rs
        let file = ws.fns[inner].file;
        let module = ws.fns[inner].module.clone();
        // Imported name.
        assert_eq!(
            ws.resolve_path(file, &module, None, &["helper".into()]),
            vec![3]
        );
        // crate:: head.
        assert_eq!(
            ws.resolve_path(file, &module, None, &["crate".into(), "top".into()]),
            vec![0]
        );
        // Cross-crate absolute path.
        assert_eq!(
            ws.resolve_path(
                file,
                &module,
                None,
                &["smartfeat_beta".into(), "helper".into()]
            ),
            vec![3]
        );
        // Relative path from the lib root file.
        let top_file = ws.fns[0].file;
        assert_eq!(
            ws.resolve_path(top_file, &[], None, &["ops".into(), "inner".into()]),
            vec![2]
        );
        // std paths resolve to nothing.
        assert!(ws
            .resolve_path(
                file,
                &module,
                None,
                &["std".into(), "mem".into(), "swap".into()]
            )
            .is_empty());
    }

    #[test]
    fn bodies_are_reachable_through_item_paths() {
        let ws = two_crate_workspace();
        assert!(ws.body_of(0).is_some());
        assert!(ws.body_of(1).is_some(), "impl-associated fn body");
        let assoc = &ws.fns[1];
        assert_eq!(assoc.impl_ty.as_deref(), Some("T"));
        assert!(assoc.params[0].name == "self");
    }
}
