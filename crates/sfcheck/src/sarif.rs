//! SARIF 2.1.0 emission (`--sarif`).
//!
//! One run, one driver (`sfcheck`), one rule per lint id. Live findings
//! emit at level `error`, baselined findings at `warning`, waived
//! findings at `note` with a SARIF suppression carrying the waiver
//! reason — so a SARIF viewer shows the same three-way partition as the
//! JSON report. Objects are `BTreeMap`-backed [`JsonValue`]s and inputs
//! are pre-sorted, so emission is byte-identical across runs and thread
//! counts (the repo gate pins this).

use smartfeat_frame::json::JsonValue;

use crate::lints::{Finding, LINT_IDS};
use crate::report::ReportInput;

/// Stable one-line description per lint id, for the SARIF rule metadata.
fn describe(lint: &str) -> &'static str {
    match lint {
        "determinism-taint" => "no wall/env/thread/hash-order value reaches an output sink",
        "double-lock" => "no possibly-held non-reentrant lock is ever re-acquired",
        "env-dependence" => "environment reads only at the sanctioned resolution points",
        "guard-discipline" => "every lock guard is bound, used, and dropped deliberately",
        "hash-collections" => "no HashMap/HashSet in output-feeding crates",
        "held-lock-blocking" => "no lock guard lives across a blocking or pool boundary",
        "hermetic-manifest" => "zero registry dependencies in any manifest",
        "lock-order-inversion" => "process-wide locks are acquired in one global order",
        "obs-volatile-discipline" => "volatile fields reach the metrics report only under volatile",
        "panic-hygiene" => "no unwrap/expect/panic! in core/frame library code",
        "panic-reachability" => "no panic site reachable from the public pipeline API",
        "par-capture-race" => "parallel closures capture no shared-mutable bindings",
        "rng-seed-discipline" => "rng streams in parallel regions derive per item",
        "seed-stream-collision" => "every seed_jump stream claims a disjoint index range",
        "unsafe-binary-op" => "binary_op_unsafe only in the CAAFE baseline",
        "waiver-syntax" => "every waiver names a known lint and gives a reason",
        "wall-clock" => "wall-clock reads only inside the obs gate",
        _ => "sfcheck lint",
    }
}

fn rule(lint: &str) -> JsonValue {
    JsonValue::object([
        ("id", JsonValue::from(lint)),
        (
            "shortDescription",
            JsonValue::object([("text", JsonValue::from(describe(lint)))]),
        ),
    ])
}

fn location(f: &Finding) -> JsonValue {
    JsonValue::object([(
        "physicalLocation",
        JsonValue::object([
            (
                "artifactLocation",
                JsonValue::object([("uri", JsonValue::from(f.file.as_str()))]),
            ),
            (
                "region",
                JsonValue::object([
                    (
                        "snippet",
                        JsonValue::object([("text", JsonValue::from(f.snippet.as_str()))]),
                    ),
                    ("startColumn", JsonValue::from(u64::from(f.col))),
                    ("startLine", JsonValue::from(u64::from(f.line))),
                ]),
            ),
        ]),
    )])
}

fn result(f: &Finding, level: &str, suppression_reason: Option<&str>) -> JsonValue {
    let mut pairs = vec![
        ("level", JsonValue::from(level)),
        ("locations", JsonValue::Array(vec![location(f)])),
        (
            "message",
            JsonValue::object([("text", JsonValue::from(f.message.as_str()))]),
        ),
        ("ruleId", JsonValue::from(f.lint)),
    ];
    if let Some(reason) = suppression_reason {
        pairs.push((
            "suppressions",
            JsonValue::Array(vec![JsonValue::object([
                ("justification", JsonValue::from(reason)),
                ("kind", JsonValue::from("inSource")),
                ("status", JsonValue::from("accepted")),
            ])]),
        ));
    }
    JsonValue::object(pairs)
}

/// Build the SARIF document for one run's partitioned findings.
pub fn build(input: &ReportInput<'_>) -> JsonValue {
    let rules: Vec<JsonValue> = LINT_IDS.iter().map(|id| rule(id)).collect();
    let mut results: Vec<JsonValue> = Vec::new();
    for f in input.findings {
        results.push(result(f, "error", None));
    }
    for f in input.baselined {
        results.push(result(f, "warning", None));
    }
    for w in input.waived {
        results.push(result(&w.finding, "note", Some(w.reason.as_str())));
    }

    let driver = JsonValue::object([
        ("informationUri", JsonValue::from("DESIGN.md")),
        ("name", JsonValue::from("sfcheck")),
        ("rules", JsonValue::Array(rules)),
    ]);
    let run = JsonValue::object([
        ("results", JsonValue::Array(results)),
        ("tool", JsonValue::object([("driver", driver)])),
    ]);
    JsonValue::object([
        (
            "$schema",
            JsonValue::from("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("runs", JsonValue::Array(vec![run])),
        ("version", JsonValue::from("2.1.0")),
    ])
}

/// Test convenience: SARIF for bare findings.
#[cfg(test)]
fn build_simple(
    findings: &[Finding],
    baselined: &[Finding],
    waived: &[crate::lints::Waived],
) -> JsonValue {
    build(&ReportInput {
        baselined,
        findings,
        waived,
        files_scanned: 0,
        manifests_scanned: 0,
        fix_dry_run: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, line: u32) -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line,
            col: 5,
            lint,
            message: format!("{lint} fired"),
            snippet: "let x = 1;".into(),
            suggestion: None,
        }
    }

    #[test]
    fn sarif_shape_levels_and_determinism() {
        let live = [finding("wall-clock", 3)];
        let base = [finding("hash-collections", 7)];
        let waived = [crate::lints::Waived {
            finding: finding("panic-hygiene", 9),
            reason: "proven unreachable".into(),
        }];
        let a = build_simple(&live, &base, &waived).emit();
        let b = build_simple(&live, &base, &waived).emit();
        assert_eq!(a, b, "emission is deterministic");

        let doc = JsonValue::parse(&a).unwrap();
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        let levels: Vec<&str> = results
            .iter()
            .map(|r| r.get("level").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(levels, ["error", "warning", "note"]);
        // The waived result carries its reason as a SARIF suppression.
        let sup = results[2].get("suppressions").unwrap().as_array().unwrap();
        assert_eq!(
            sup[0].get("justification").unwrap().as_str(),
            Some("proven unreachable")
        );
        // Every shipped lint has rule metadata.
        let rules = runs[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(rules.len(), LINT_IDS.len());
    }

    #[test]
    fn every_lint_has_a_description() {
        for id in LINT_IDS {
            assert_ne!(describe(id), "sfcheck lint", "{id} missing description");
        }
    }
}
