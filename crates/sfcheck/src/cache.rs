//! The incremental analysis cache (`target/sfcheck-cache/`).
//!
//! Two levels, both keyed by FNV-1a content hashes and invalidated by a
//! version stamp derived from the lint suite:
//!
//! - **Full skip**: when every source and manifest hash matches the
//!   cached snapshot, the entire analysis — lex, parse, token lints,
//!   symbol table, call graph, and all cross-file passes — is skipped
//!   and the cached pre-baseline findings and waivers are replayed. The
//!   baseline partition, JSON report, and SARIF document are always
//!   rebuilt fresh (they are pure functions of the findings), so
//!   `--baseline`, `--baseline-remap`, and `--fix-dry-run` need not be
//!   part of the key and warm output is byte-identical to cold.
//! - **Partial**: on any change, per-file token-lint results
//!   (`files/<hash>.json`) are reused for unchanged files, and the
//!   cross-file passes re-run only over the **dirty** file set: the
//!   changed files closed under call-graph components of both the old
//!   and the new graph (a removed edge can retire a finding in a file
//!   the new graph no longer reaches). Clean files replay their cached
//!   cross-file findings. The closure is sound only while symbol-level
//!   context is unchanged, so a conservative **global fingerprint**
//!   (every fn qname, marker set, method-dispatch table, mutable
//!   statics, crate names, file membership, manifest hashes) guards the
//!   partial path — any signature-level change falls back to a full
//!   re-analysis. The seed-stream and volatile-discipline passes are
//!   global by nature — stream claims in unconnected crates collide, and
//!   the volatile-field set comes from comment annotations invisible to
//!   both the fingerprint and the call graph — and cheap, so they always
//!   re-run un-scoped and their findings never enter the cached
//!   `global_findings` bucket.
//!
//! Writes are temp-file + rename, so concurrent sfcheck processes (the
//! repo gate runs several) never observe torn entries; any read that
//! fails to parse or names an unknown lint id is a cache miss, never an
//! error. `stats.json` records what each run reused — counts only, no
//! wall times, because sfcheck lints itself and its own artifacts must
//! stay deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use smartfeat_frame::json::JsonValue;

use crate::callgraph::CallGraph;
use crate::lints::{Finding, Waived, Waiver, LINT_IDS};
use crate::resolve::Workspace;
use crate::walker::SourceFile;

/// Schema revision; bump when the cached shapes change. (v4: the
/// `global_findings` bucket now carries the lock-discipline findings,
/// and the global fingerprint hashes lock-relevant files whole — see
/// [`global_fingerprint`] — so older entries must not be replayed.)
const SCHEMA: &str = "v4";

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for content keys
/// (a collision only risks a stale replay, and the version stamp plus
/// hash length make that astronomically unlikely).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Object accessor (the frame JSON type exposes `get` but not the map).
fn as_map(v: &JsonValue) -> Option<&BTreeMap<String, JsonValue>> {
    match v {
        JsonValue::Object(m) => Some(m),
        _ => None,
    }
}

/// The version stamp: schema plus the shipped lint set, so adding or
/// renaming a lint invalidates every prior entry.
fn version() -> String {
    format!("{SCHEMA}:{}", LINT_IDS.join("+"))
}

/// What one run did with the cache, for `stats.json` and CI artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// `"cold"`, `"warm-full"`, or `"warm-partial"`.
    pub mode: &'static str,
    /// Source files in the workspace.
    pub files_total: usize,
    /// Files whose token-lint results were replayed from cache.
    pub files_reused: usize,
    /// `"skipped"`, `"full"`, or `"partial"` — the cross-file passes.
    pub global: &'static str,
    /// Files re-analyzed by the cross-file passes (equals `files_total`
    /// when `global` is `"full"`, 0 when `"skipped"`).
    pub dirty_files: usize,
}

impl Stats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("dirty_files", JsonValue::from(self.dirty_files as u64)),
            ("files_reused", JsonValue::from(self.files_reused as u64)),
            ("files_total", JsonValue::from(self.files_total as u64)),
            ("global", JsonValue::from(self.global)),
            ("mode", JsonValue::from(self.mode)),
            ("version", JsonValue::from(version().as_str())),
        ])
    }
}

/// A full-skip hit: everything `run_check` needs past the analysis.
pub struct FullHit {
    /// Pre-baseline findings (token + cross-file + manifest), sorted.
    pub findings: Vec<Finding>,
    /// Waived findings, sorted.
    pub waived: Vec<Waived>,
}

/// The plan for the cross-file passes on a cold/partial run.
pub struct GlobalPlan {
    /// Files the call-graph passes must re-analyze; `None` = all.
    pub dirty: Option<BTreeSet<usize>>,
    /// Cached cross-file findings for clean files (by file index).
    pub cached: BTreeMap<usize, Vec<Finding>>,
}

impl GlobalPlan {
    fn full() -> GlobalPlan {
        GlobalPlan {
            dirty: None,
            cached: BTreeMap::new(),
        }
    }
}

/// Handle on the cache directory; `None` inside means disabled.
pub struct Cache {
    dir: Option<PathBuf>,
    /// The parsed previous `workspace.json`, if any and valid.
    prior: Option<JsonValue>,
    /// Hash of each current source, aligned with the source list.
    src_hashes: Vec<u64>,
    man_hashes: Vec<u64>,
}

impl Cache {
    /// Open (or disable) the cache for a run.
    pub fn open(
        root: &Path,
        cache_dir: Option<&Path>,
        no_cache: bool,
        sources: &[SourceFile],
        manifests: &[SourceFile],
    ) -> Cache {
        let dir = if no_cache {
            None
        } else {
            Some(
                cache_dir
                    .map(Path::to_path_buf)
                    .unwrap_or_else(|| root.join("target").join("sfcheck-cache")),
            )
        };
        let src_hashes = sources.iter().map(|s| fnv1a(s.text.as_bytes())).collect();
        let man_hashes = manifests.iter().map(|m| fnv1a(m.text.as_bytes())).collect();
        let prior = dir.as_ref().and_then(|d| {
            let text = std::fs::read_to_string(d.join("workspace.json")).ok()?;
            let doc = JsonValue::parse(&text).ok()?;
            (doc.get("version")?.as_str()? == version()).then_some(doc)
        });
        Cache {
            dir,
            prior,
            src_hashes,
            man_hashes,
        }
    }

    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Do the cached snapshot's hashes match the current tree exactly?
    fn tree_unchanged(&self, sources: &[SourceFile], manifests: &[SourceFile]) -> bool {
        let Some(prior) = &self.prior else {
            return false;
        };
        for (kind, files, hashes) in [
            ("files", sources, &self.src_hashes),
            ("manifests", manifests, &self.man_hashes),
        ] {
            let Some(entries) = prior.get(kind).and_then(as_map) else {
                return false;
            };
            if entries.len() != files.len() {
                return false;
            }
            for (file, hash) in files.iter().zip(hashes) {
                if entries.get(&file.rel_path).and_then(JsonValue::as_str)
                    != Some(hex(*hash).as_str())
                {
                    return false;
                }
            }
        }
        true
    }

    /// Level 1: replay the whole run when nothing changed.
    pub fn try_full_hit(
        &self,
        sources: &[SourceFile],
        manifests: &[SourceFile],
    ) -> Option<FullHit> {
        if !self.tree_unchanged(sources, manifests) {
            return None;
        }
        let prior = self.prior.as_ref()?;
        let findings = findings_from_json(prior.get("findings")?)?;
        let waived = waived_from_json(prior.get("waived")?)?;
        Some(FullHit { findings, waived })
    }

    /// Level 2a: per-file token-lint results for an unchanged file.
    pub fn file_entry(&self, file: &SourceFile, hash: u64) -> Option<(Vec<Finding>, Vec<Waiver>)> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join("files").join(entry_name(file))).ok()?;
        let doc = JsonValue::parse(&text).ok()?;
        if doc.get("hash")?.as_str()? != hex(hash) || doc.get("version")?.as_str()? != version() {
            return None;
        }
        let findings = findings_from_json(doc.get("raw")?)?;
        let waivers = waivers_from_json(doc.get("waivers")?)?;
        Some((findings, waivers))
    }

    /// Level 2b: decide how much of the cross-file analysis must re-run.
    ///
    /// The partial path requires: same file membership, same manifests,
    /// and an identical global fingerprint — then `dirty` is the changed
    /// files closed under the old *and* new call-graph components.
    pub fn plan_global(
        &self,
        sources: &[SourceFile],
        manifests: &[SourceFile],
        ws: &Workspace,
        cg: &CallGraph,
    ) -> GlobalPlan {
        let Some(prior) = &self.prior else {
            return GlobalPlan::full();
        };
        let (Some(prior_files), Some(prior_mans)) = (
            prior.get("files").and_then(as_map),
            prior.get("manifests").and_then(as_map),
        ) else {
            return GlobalPlan::full();
        };
        if prior_files.len() != sources.len() || prior_mans.len() != manifests.len() {
            return GlobalPlan::full();
        }
        for (m, h) in manifests.iter().zip(&self.man_hashes) {
            if prior_mans.get(&m.rel_path).and_then(JsonValue::as_str) != Some(hex(*h).as_str()) {
                return GlobalPlan::full();
            }
        }
        if prior.get("global_fingerprint").and_then(JsonValue::as_str)
            != Some(hex(global_fingerprint(ws, manifests, &self.man_hashes)).as_str())
        {
            return GlobalPlan::full();
        }
        let mut changed: BTreeSet<usize> = BTreeSet::new();
        for (idx, (file, hash)) in sources.iter().zip(&self.src_hashes).enumerate() {
            match prior_files.get(&file.rel_path).and_then(JsonValue::as_str) {
                Some(h) if h == hex(*hash) => {}
                Some(_) => {
                    changed.insert(idx);
                }
                // Membership changed despite equal counts: renamed file.
                None => return GlobalPlan::full(),
            }
        }

        let index_of: BTreeMap<&str, usize> = sources
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel_path.as_str(), i))
            .collect();
        let mut dirty = changed.clone();
        // New-graph closure.
        let comp = file_components(ws, cg);
        for &idx in &changed {
            for (other, &c) in comp.iter().enumerate() {
                if c == comp[idx] {
                    dirty.insert(other);
                }
            }
        }
        // Old-graph closure, from the stored component membership.
        let Some(prior_comp) = prior.get("components").and_then(as_map) else {
            return GlobalPlan::full();
        };
        for &idx in &changed {
            let Some(members) = prior_comp
                .get(&sources[idx].rel_path)
                .and_then(JsonValue::as_array)
            else {
                return GlobalPlan::full();
            };
            for member in members {
                let Some(rel) = member.as_str() else {
                    return GlobalPlan::full();
                };
                match index_of.get(rel) {
                    Some(&i) => {
                        dirty.insert(i);
                    }
                    // A component member no longer exists — stale map.
                    None => return GlobalPlan::full(),
                }
            }
        }

        // Replay cached cross-file findings for every clean file.
        let Some(prior_global) = prior.get("global_findings").and_then(as_map) else {
            return GlobalPlan::full();
        };
        let mut cached = BTreeMap::new();
        for (idx, file) in sources.iter().enumerate() {
            if dirty.contains(&idx) {
                continue;
            }
            match prior_global.get(&file.rel_path) {
                Some(list) => match findings_from_json(list) {
                    Some(fs) => {
                        if !fs.is_empty() {
                            cached.insert(idx, fs);
                        }
                    }
                    None => return GlobalPlan::full(),
                },
                None => {}
            }
        }
        GlobalPlan {
            dirty: Some(dirty),
            cached,
        }
    }

    /// Persist the run: snapshot, per-file entries, cross-file findings.
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        &self,
        sources: &[SourceFile],
        manifests: &[SourceFile],
        ws: &Workspace,
        cg: &CallGraph,
        raw_by_file: &[(Vec<Finding>, Vec<Waiver>)],
        global_by_file: &BTreeMap<usize, Vec<Finding>>,
        findings: &[Finding],
        waived: &[Waived],
    ) {
        let Some(dir) = &self.dir else { return };
        let files_dir = dir.join("files");
        if std::fs::create_dir_all(&files_dir).is_err() {
            return;
        }
        for ((file, hash), (raw, waivers)) in sources.iter().zip(&self.src_hashes).zip(raw_by_file)
        {
            let doc = JsonValue::object([
                ("hash", JsonValue::from(hex(*hash).as_str())),
                ("path", JsonValue::from(file.rel_path.as_str())),
                ("raw", findings_to_json(raw)),
                ("version", JsonValue::from(version().as_str())),
                ("waivers", waivers_to_json(waivers)),
            ]);
            write_atomic(dir, &files_dir.join(entry_name(file)), &doc.emit());
        }

        let comp = file_components(ws, cg);
        let mut components: BTreeMap<String, JsonValue> = BTreeMap::new();
        let mut global: BTreeMap<String, JsonValue> = BTreeMap::new();
        for (idx, file) in sources.iter().enumerate() {
            let members: Vec<JsonValue> = sources
                .iter()
                .enumerate()
                .filter(|(j, _)| comp[*j] == comp[idx])
                .map(|(_, f)| JsonValue::from(f.rel_path.as_str()))
                .collect();
            components.insert(file.rel_path.clone(), JsonValue::Array(members));
            let fs = global_by_file.get(&idx).cloned().unwrap_or_default();
            global.insert(file.rel_path.clone(), findings_to_json(&fs));
        }
        let file_map: BTreeMap<String, JsonValue> = sources
            .iter()
            .zip(&self.src_hashes)
            .map(|(f, h)| (f.rel_path.clone(), JsonValue::from(hex(*h).as_str())))
            .collect();
        let man_map: BTreeMap<String, JsonValue> = manifests
            .iter()
            .zip(&self.man_hashes)
            .map(|(m, h)| (m.rel_path.clone(), JsonValue::from(hex(*h).as_str())))
            .collect();
        let doc = JsonValue::object([
            ("components", JsonValue::Object(components)),
            ("files", JsonValue::Object(file_map)),
            ("findings", findings_to_json(findings)),
            (
                "global_fingerprint",
                JsonValue::from(hex(global_fingerprint(ws, manifests, &self.man_hashes)).as_str()),
            ),
            ("global_findings", JsonValue::Object(global)),
            ("manifests", JsonValue::Object(man_map)),
            ("version", JsonValue::from(version().as_str())),
            ("waived", waived_to_json(waived)),
        ]);
        write_atomic(dir, &dir.join("workspace.json"), &doc.emit());
    }

    /// Record what this run reused.
    pub fn write_stats(&self, stats: &Stats) {
        let Some(dir) = &self.dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        write_atomic(dir, &dir.join("stats.json"), &stats.to_json().emit());
    }
}

fn entry_name(file: &SourceFile) -> String {
    format!("{}.json", hex(fnv1a(file.rel_path.as_bytes())))
}

/// Temp-file + rename; best-effort (a cache that fails to write is just
/// cold next time, never an error).
fn write_atomic(dir: &Path, path: &Path, text: &str) {
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, text.as_bytes()).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Symbol-level context the partial path depends on: any change here
/// (new fn, changed marker, new method name flipping dispatch
/// uniqueness, renamed crate) forces a full cross-file re-analysis.
fn global_fingerprint(ws: &Workspace, manifests: &[SourceFile], man_hashes: &[u64]) -> u64 {
    let mut acc = String::new();
    for info in &ws.fns {
        acc.push_str(&info.qname);
        acc.push('|');
        for m in &info.markers {
            acc.push_str(m);
            acc.push(',');
        }
        acc.push(if info.is_pub { 'p' } else { '-' });
        acc.push(if info.is_test { 't' } else { '-' });
        acc.push_str(&ws.files[info.file].rel_path);
        acc.push('\n');
    }
    for (name, candidates) in &ws.methods {
        acc.push_str(name);
        acc.push(':');
        acc.push_str(&candidates.len().to_string());
        acc.push('\n');
    }
    for s in &ws.mut_statics {
        acc.push_str(s);
        acc.push('\n');
    }
    for c in &ws.crate_names {
        acc.push_str(c);
        acc.push('\n');
    }
    for f in &ws.files {
        acc.push_str(&f.rel_path);
        acc.push('\n');
    }
    for (m, h) in manifests.iter().zip(man_hashes) {
        acc.push_str(&m.rel_path);
        acc.push_str(&hex(*h));
        acc.push('\n');
    }
    // Lock footprint. A lock-order-inversion's two sides can live in
    // files with no call path between them, so the component closure
    // that bounds every other cross-file lint cannot bound the lock
    // pass. Hash every lock-relevant file whole: any edit to one forces
    // a full re-analysis, and edits elsewhere keep the partial path.
    for f in &ws.files {
        if lock_relevant(&f.text) {
            acc.push_str("lock:");
            acc.push_str(&f.rel_path);
            acc.push_str(&hex(fnv1a(f.text.as_bytes())));
            acc.push('\n');
        }
    }
    fnv1a(acc.as_bytes())
}

/// Could this file change what the lock pass computes anywhere?
/// Deliberately lexical and over-approximate — a false `true` costs one
/// full re-analysis, a false `false` would cost a stale finding.
fn lock_relevant(text: &str) -> bool {
    [
        "Mutex",
        "RwLock",
        ".lock()",
        "sfcheck:lock-helper",
        "sfcheck:io-blocking",
    ]
    .iter()
    .any(|needle| text.contains(needle))
}

/// Undirected connected components over files, induced by fn call edges.
fn file_components(ws: &Workspace, cg: &CallGraph) -> Vec<usize> {
    let n = ws.files.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (caller, callees) in cg.edges.iter().enumerate() {
        let fa = ws.fns[caller].file;
        for &callee in callees {
            let fb = ws.fns[callee].file;
            let (ra, rb) = (find(&mut parent, fa), find(&mut parent, fb));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

// ---- JSON round-tripping for findings / waivers -------------------------

fn finding_to_json(f: &Finding) -> JsonValue {
    let mut pairs = vec![
        ("col", JsonValue::from(u64::from(f.col))),
        ("file", JsonValue::from(f.file.as_str())),
        ("line", JsonValue::from(u64::from(f.line))),
        ("lint", JsonValue::from(f.lint)),
        ("message", JsonValue::from(f.message.as_str())),
        ("snippet", JsonValue::from(f.snippet.as_str())),
    ];
    if let Some(s) = &f.suggestion {
        pairs.push(("suggestion", JsonValue::from(s.as_str())));
    }
    JsonValue::object(pairs)
}

fn finding_from_json(v: &JsonValue) -> Option<Finding> {
    // Re-intern the lint id against the shipped set; an unknown id means
    // the entry predates a lint rename and must miss.
    let lint = LINT_IDS
        .iter()
        .find(|id| Some(**id) == v.get("lint").and_then(JsonValue::as_str))?;
    Some(Finding {
        file: v.get("file")?.as_str()?.to_string(),
        line: u32::try_from(v.get("line")?.as_u64()?).ok()?,
        col: u32::try_from(v.get("col")?.as_u64()?).ok()?,
        lint,
        message: v.get("message")?.as_str()?.to_string(),
        snippet: v.get("snippet")?.as_str()?.to_string(),
        suggestion: match v.get("suggestion") {
            Some(s) => Some(s.as_str()?.to_string()),
            None => None,
        },
    })
}

fn findings_to_json(findings: &[Finding]) -> JsonValue {
    JsonValue::Array(findings.iter().map(finding_to_json).collect())
}

fn findings_from_json(v: &JsonValue) -> Option<Vec<Finding>> {
    v.as_array()?.iter().map(finding_from_json).collect()
}

fn waivers_to_json(waivers: &[Waiver]) -> JsonValue {
    JsonValue::Array(
        waivers
            .iter()
            .map(|w| {
                JsonValue::object([
                    ("line", JsonValue::from(u64::from(w.line))),
                    (
                        "lints",
                        JsonValue::Array(
                            w.lints
                                .iter()
                                .map(|l| JsonValue::from(l.as_str()))
                                .collect(),
                        ),
                    ),
                    ("reason", JsonValue::from(w.reason.as_str())),
                ])
            })
            .collect(),
    )
}

fn waivers_from_json(v: &JsonValue) -> Option<Vec<Waiver>> {
    v.as_array()?
        .iter()
        .map(|w| {
            Some(Waiver {
                line: u32::try_from(w.get("line")?.as_u64()?).ok()?,
                lints: w
                    .get("lints")?
                    .as_array()?
                    .iter()
                    .map(|l| Some(l.as_str()?.to_string()))
                    .collect::<Option<Vec<String>>>()?,
                reason: w.get("reason")?.as_str()?.to_string(),
            })
        })
        .collect()
}

fn waived_to_json(waived: &[Waived]) -> JsonValue {
    JsonValue::Array(
        waived
            .iter()
            .map(|w| {
                JsonValue::object([
                    ("finding", finding_to_json(&w.finding)),
                    ("reason", JsonValue::from(w.reason.as_str())),
                ])
            })
            .collect(),
    )
}

fn waived_from_json(v: &JsonValue) -> Option<Vec<Waived>> {
    v.as_array()?
        .iter()
        .map(|w| {
            Some(Waived {
                finding: finding_from_json(w.get("finding")?)?,
                reason: w.get("reason")?.as_str()?.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_distinguishes() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"sfcheck"), fnv1a(b"sfcheck"));
    }

    #[test]
    fn finding_roundtrip_preserves_everything() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 3,
            lint: "determinism-taint",
            message: "msg with \"quotes\" and \\ slashes".into(),
            snippet: "let x = 1;".into(),
            suggestion: Some("let y = 2;".into()),
        };
        let json = finding_to_json(&f).emit();
        let back = finding_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn unknown_lint_id_is_a_miss() {
        let doc = JsonValue::parse(
            "{\"col\":1,\"file\":\"f\",\"line\":1,\"lint\":\"retired-lint\",\
             \"message\":\"m\",\"snippet\":\"s\"}",
        )
        .unwrap();
        assert!(finding_from_json(&doc).is_none());
    }

    #[test]
    fn waiver_and_waived_roundtrip() {
        let w = Waiver {
            line: 12,
            lints: vec!["wall-clock".into(), "env-dependence".into()],
            reason: "sanctioned".into(),
        };
        let json = waivers_to_json(std::slice::from_ref(&w)).emit();
        let back = waivers_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back[0].line, w.line);
        assert_eq!(back[0].lints, w.lints);
        assert_eq!(back[0].reason, w.reason);
    }
}
