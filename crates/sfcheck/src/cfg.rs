//! Statement-level control-flow graphs over the tolerant AST, plus a
//! small forward-dataflow framework (lattice join + transfer functions
//! run to fixpoint) for the passes built on top of it.
//!
//! The granularity is deliberately coarse: one [`Step`] per statement,
//! with control flow recovered from the parser's [`Ctrl`]-tagged `Seq`
//! nodes (`if`/`while`/`for`/`loop`/`match`/`return`/`break`/
//! `continue`). Expressions are atomic from the CFG's point of view
//! except when a control-flow construct appears in *statement or value
//! position* — an `if` nested inside a call argument is evaluated as
//! part of its enclosing step, which is sound for the may-analyses this
//! layer serves (the transfer function unions over everything inside
//! the step). `let` initializers are likewise not split: the whole
//! initializer rides on the [`Step::Bind`].
//!
//! Determinism and totality contract: block IDs are allocation-ordered
//! (entry = 0, exit = 1, then source order), construction never panics
//! on fuzz soup, and every lowered statement is attributed to exactly
//! one basic block (`stmt_pos` accounting, pinned by the seeded fuzz in
//! `v3_analysis.rs` against the [`lowered_stmt_count`] mirror).

use crate::ast::{Block, Ctrl, Expr, Pos, Stmt};

/// Index into [`Cfg::blocks`].
pub type BlockId = usize;

/// The function's entry block (always present, holds no steps).
pub const ENTRY: BlockId = 0;
/// The function's exit block (normal return and `return` both reach it).
pub const EXIT: BlockId = 1;

/// One atomic unit of a basic block.
#[derive(Debug)]
pub enum Step<'a> {
    /// A `let` statement: the names it binds and its (unsplit)
    /// initializer. Also used (with `init: None`) for pattern bindings
    /// introduced at a branch-body entry (`if let` / `while let` /
    /// `for` / match arms).
    Bind {
        /// Names bound by the pattern.
        names: Vec<&'a str>,
        /// Initializer expression, when present.
        init: Option<&'a Expr>,
        /// Position of the binding.
        pos: Pos,
    },
    /// An expression evaluated for effect.
    Eval(&'a Expr),
    /// Bindings leaving scope at the end of a block, in drop order
    /// (reverse declaration order).
    EndScope(Vec<&'a str>),
}

/// A basic block: straight-line steps plus successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// Steps in execution order.
    pub steps: Vec<Step<'a>>,
    /// Successor block IDs, in the order the edges were created.
    pub succs: Vec<BlockId>,
    /// Positions of the statements that began lowering in this block —
    /// the totality accounting the fuzz harness checks.
    pub stmt_pos: Vec<Pos>,
}

/// A per-function control-flow graph.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// Basic blocks; [`ENTRY`] and [`EXIT`] always exist.
    pub blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Cfg<'a> {
    /// Build the CFG of a function body. Total: never panics, any input.
    pub fn build(body: &'a Block) -> Cfg<'a> {
        let mut b = Builder { blocks: Vec::new() };
        b.new_block(); // ENTRY
        b.new_block(); // EXIT
        let first = b.new_block();
        b.edge(ENTRY, first);
        let last = b.lower_block(body, first, &[]);
        b.edge(last, EXIT);
        Cfg { blocks: b.blocks }
    }

    /// Total number of lowered statements across all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmt_pos.len()).sum()
    }
}

/// Innermost-loop targets for `break`/`continue`.
struct LoopCtx {
    head: BlockId,
    join: BlockId,
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, block: BlockId, step: Step<'a>) {
        self.blocks[block].steps.push(step);
    }

    /// Lower a `{ … }` scope starting in `cur`; returns the block
    /// control flows out of.
    fn lower_block(&mut self, b: &'a Block, mut cur: BlockId, loops: &[LoopCtx]) -> BlockId {
        let mut scope: Vec<&'a str> = Vec::new();
        for stmt in &b.stmts {
            self.blocks[cur].stmt_pos.push(stmt.pos());
            match stmt {
                Stmt::Let(l) => {
                    self.push(
                        cur,
                        Step::Bind {
                            names: l.bound.iter().map(String::as_str).collect(),
                            init: l.init.as_ref(),
                            pos: l.pos,
                        },
                    );
                    scope.extend(l.bound.iter().map(String::as_str));
                }
                Stmt::Expr(e) => cur = self.lower_expr(e, cur, loops),
                Stmt::Item(_) => {} // nested items get their own CFGs
            }
        }
        if !scope.is_empty() {
            scope.reverse();
            self.push(cur, Step::EndScope(scope));
        }
        cur
    }

    /// Lower one statement-position expression; returns the block
    /// control flows out of.
    fn lower_expr(&mut self, e: &'a Expr, cur: BlockId, loops: &[LoopCtx]) -> BlockId {
        match e {
            Expr::Block(b) => {
                let first = self.new_block();
                self.edge(cur, first);
                self.lower_block(b, first, loops)
            }
            Expr::Seq(s) => match s.ctrl {
                Ctrl::None | Ctrl::Arm => {
                    // Plain runs: children evaluate in order; an
                    // orphaned arm degrades the same way.
                    let mut cur = cur;
                    for c in &s.children {
                        cur = self.lower_expr(c, cur, loops);
                    }
                    cur
                }
                Ctrl::If => {
                    if let Some(cond) = s.children.first() {
                        self.push(cur, Step::Eval(cond));
                    }
                    let join = self.new_block();
                    let branches = &s.children[s.children.len().min(1)..];
                    for (i, branch) in branches.iter().enumerate() {
                        let entry = self.new_block();
                        self.edge(cur, entry);
                        if i == 0 && !s.binds.is_empty() {
                            // `if let` pattern names scope to the then-arm.
                            self.push(
                                entry,
                                Step::Bind {
                                    names: s.binds.iter().map(String::as_str).collect(),
                                    init: None,
                                    pos: s.pos,
                                },
                            );
                        }
                        let end = self.lower_expr(branch, entry, loops);
                        self.edge(end, join);
                    }
                    if branches.len() < 2 {
                        // No else: the condition can fall through.
                        self.edge(cur, join);
                    }
                    join
                }
                Ctrl::While | Ctrl::For => {
                    // `for`: the iterable evaluates once, up front.
                    if s.ctrl == Ctrl::For {
                        if let Some(iter) = s.children.first() {
                            self.push(cur, Step::Eval(iter));
                        }
                    }
                    let head = self.new_block();
                    self.edge(cur, head);
                    // `while`: the condition re-evaluates each trip.
                    if s.ctrl == Ctrl::While {
                        if let Some(cond) = s.children.first() {
                            self.push(head, Step::Eval(cond));
                        }
                    }
                    let join = self.new_block();
                    self.edge(head, join);
                    if let Some(body) = s.children.get(1) {
                        let entry = self.new_block();
                        self.edge(head, entry);
                        if !s.binds.is_empty() {
                            self.push(
                                entry,
                                Step::Bind {
                                    names: s.binds.iter().map(String::as_str).collect(),
                                    init: None,
                                    pos: s.pos,
                                },
                            );
                        }
                        let inner = [LoopCtx { head, join }];
                        let end = self.lower_expr(body, entry, &inner);
                        self.edge(end, head);
                    }
                    // Fuzz soup can attach trailing children (a stray
                    // `else` clause); lower them after the loop so the
                    // stmt accounting stays total.
                    let mut after = join;
                    for extra in s.children.iter().skip(2) {
                        after = self.lower_expr(extra, after, loops);
                    }
                    after
                }
                Ctrl::Loop => {
                    let head = self.new_block();
                    self.edge(cur, head);
                    let join = self.new_block();
                    match s.children.first() {
                        Some(body) => {
                            let inner = [LoopCtx { head, join }];
                            let end = self.lower_expr(body, head, &inner);
                            self.edge(end, head);
                        }
                        // Degenerate soup: keep the join reachable.
                        None => self.edge(head, join),
                    }
                    join
                }
                Ctrl::Match => {
                    if let Some(scrutinee) = s.children.first() {
                        self.push(cur, Step::Eval(scrutinee));
                    }
                    let join = self.new_block();
                    let arms = &s.children[s.children.len().min(1)..];
                    if arms.is_empty() {
                        self.edge(cur, join);
                    }
                    for arm in arms {
                        let entry = self.new_block();
                        self.edge(cur, entry);
                        if let Expr::Seq(a) = arm {
                            if !a.binds.is_empty() {
                                self.push(
                                    entry,
                                    Step::Bind {
                                        names: a.binds.iter().map(String::as_str).collect(),
                                        init: None,
                                        pos: a.pos,
                                    },
                                );
                            }
                        }
                        let end = self.lower_expr(arm, entry, loops);
                        self.edge(end, join);
                    }
                    join
                }
                Ctrl::Return => {
                    let mut cur = cur;
                    for c in &s.children {
                        cur = self.lower_expr(c, cur, loops);
                    }
                    self.edge(cur, EXIT);
                    self.new_block() // unreachable continuation
                }
                Ctrl::Break | Ctrl::Continue => {
                    let mut cur = cur;
                    for c in &s.children {
                        cur = self.lower_expr(c, cur, loops);
                    }
                    let target = match (s.ctrl, loops.last()) {
                        (Ctrl::Break, Some(l)) => l.join,
                        (Ctrl::Continue, Some(l)) => l.head,
                        _ => EXIT, // soup outside any loop
                    };
                    self.edge(cur, target);
                    self.new_block() // unreachable continuation
                }
            },
            _ => {
                self.push(cur, Step::Eval(e));
                cur
            }
        }
    }
}

/// Mirror of the builder's statement-lowering recursion, for the fuzz
/// totality check: the number of statements [`Cfg::build`] attributes
/// to blocks, computed independently of the builder.
pub fn lowered_stmt_count(b: &Block) -> usize {
    fn count_expr(e: &Expr) -> usize {
        match e {
            Expr::Block(b) => lowered_stmt_count(b),
            Expr::Seq(s) => {
                let skip = match s.ctrl {
                    // The first child (condition / iterable / scrutinee)
                    // is evaluated as an atomic step, not lowered.
                    Ctrl::If | Ctrl::While | Ctrl::For | Ctrl::Match => 1,
                    _ => 0,
                };
                s.children.iter().skip(skip).map(count_expr).sum()
            }
            _ => 0,
        }
    }
    b.stmts
        .iter()
        .map(|stmt| {
            1 + match stmt {
                Stmt::Expr(e) => count_expr(e),
                Stmt::Let(_) | Stmt::Item(_) => 0,
            }
        })
        .sum()
}

// ---- forward dataflow -----------------------------------------------------

/// A forward may/must dataflow problem over a [`Cfg`]. Facts must form a
/// join-semilattice under [`Analysis::join`] with a finite height, or
/// the fixpoint driver's iteration budget cuts the loop (conservative
/// for may-analyses: later blocks keep their last joined fact).
pub trait Analysis<'a> {
    /// The lattice element attached to each block entry.
    type Fact: Clone + PartialEq;

    /// Fact at the function entry.
    fn entry_fact(&self) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Push a fact through one block's steps.
    fn transfer(&self, cfg: &Cfg<'a>, block: BlockId, fact: Self::Fact) -> Self::Fact;
}

/// Run `analysis` to fixpoint; returns the fact at each block's entry
/// (`None` for blocks unreachable from [`ENTRY`]). Deterministic: the
/// worklist is an ordered set, so iteration order never depends on hash
/// state or thread count.
pub fn fixpoint<'a, A: Analysis<'a>>(cfg: &Cfg<'a>, analysis: &A) -> Vec<Option<A::Fact>> {
    let n = cfg.blocks.len();
    let mut facts: Vec<Option<A::Fact>> = vec![None; n];
    facts[ENTRY] = Some(analysis.entry_fact());
    let mut work: std::collections::BTreeSet<BlockId> = std::iter::once(ENTRY).collect();
    // Far above any monotone fixpoint's need; guards non-monotone bugs.
    let mut budget = n.saturating_mul(n.saturating_add(8)).saturating_mul(4);
    while let Some(&b) = work.iter().next() {
        work.remove(&b);
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(in_fact) = facts[b].clone() else {
            continue;
        };
        let out = analysis.transfer(cfg, b, in_fact);
        for &succ in &cfg.blocks[b].succs {
            let joined = match &facts[succ] {
                None => out.clone(),
                Some(old) => analysis.join(old, &out),
            };
            if facts[succ].as_ref() != Some(&joined) {
                facts[succ] = Some(joined);
                work.insert(succ);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn body_of(src: &str) -> Block {
        let file = parser::parse(&lexer::lex(src));
        for item in &file.items {
            if let crate::ast::ItemKind::Fn(f) = &item.kind {
                return f.body.clone().expect("fn has a body");
            }
        }
        panic!("no fn in source");
    }

    fn reachable(cfg: &Cfg<'_>) -> Vec<bool> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![ENTRY];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        seen
    }

    #[test]
    fn straight_line_is_one_block() {
        let body = body_of("fn f() { let a = 1; g(a); h(); }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), 3);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        // entry, exit, one real block.
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[2].succs, vec![EXIT]);
    }

    #[test]
    fn if_else_forms_a_diamond() {
        let body = body_of("fn f(c: bool) { if c { a(); } else { b(); } t(); }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        // First real block branches two ways and cannot skip the arms.
        let first = 2;
        assert_eq!(cfg.blocks[first].succs.len(), 2);
        assert!(!cfg.blocks[first].succs.contains(&EXIT));
        assert!(reachable(&cfg)[EXIT]);
    }

    #[test]
    fn if_without_else_can_fall_through() {
        let body = body_of("fn f(c: bool) { if c { a(); } t(); }");
        let cfg = Cfg::build(&body);
        // The branch block has both the arm and the join as successors.
        assert_eq!(cfg.blocks[2].succs.len(), 2);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
    }

    #[test]
    fn while_loop_has_a_back_edge() {
        let body = body_of("fn f() { while c() { step(); } done(); }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s > EXIT));
        assert!(back, "no back edge in {cfg:?}");
        assert!(reachable(&cfg)[EXIT]);
    }

    #[test]
    fn early_return_reaches_exit_directly() {
        let body = body_of("fn f(c: bool) { if c { return 1; } after(); }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        // Some reachable block other than the last one points at EXIT.
        let seen = reachable(&cfg);
        let exits: Vec<BlockId> = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| seen[*i] && b.succs.contains(&EXIT))
            .map(|(i, _)| i)
            .collect();
        assert!(exits.len() >= 2, "return did not add an exit edge: {cfg:?}");
    }

    #[test]
    fn loop_without_break_never_reaches_its_join() {
        let body = body_of("fn f() { loop { tick(); } }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        assert!(
            !reachable(&cfg)[EXIT],
            "infinite loop reached exit: {cfg:?}"
        );
    }

    #[test]
    fn break_reaches_the_loop_join() {
        let body = body_of("fn f() { loop { if done() { break; } } after(); }");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        assert!(reachable(&cfg)[EXIT]);
    }

    #[test]
    fn match_arms_each_get_a_block() {
        let body = body_of(
            "fn f(x: u8) { match x { 0 => zero(), n if n > 3 => big(n), _ => other(), } t(); }",
        );
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.stmt_count(), lowered_stmt_count(&body));
        // Scrutinee block fans out to all three arms.
        assert_eq!(cfg.blocks[2].succs.len(), 3);
    }

    #[test]
    fn scope_exit_emits_endscope_in_drop_order() {
        let body = body_of("fn f() { let a = 1; let b = 2; use_both(a, b); }");
        let cfg = Cfg::build(&body);
        let Some(Step::EndScope(names)) = cfg.blocks[2].steps.last() else {
            panic!("no EndScope: {cfg:?}");
        };
        assert_eq!(names, &["b", "a"]);
    }

    /// A tiny reaching-analysis over the framework: count the maximum
    /// number of CFG steps on any path to each block (capped), proving
    /// join/transfer plumbing and loop termination.
    struct Depth;
    impl<'a> Analysis<'a> for Depth {
        type Fact = usize;
        fn entry_fact(&self) -> usize {
            0
        }
        fn join(&self, a: &usize, b: &usize) -> usize {
            *a.max(b)
        }
        fn transfer(&self, cfg: &Cfg<'a>, block: BlockId, fact: usize) -> usize {
            (fact + cfg.blocks[block].steps.len()).min(64)
        }
    }

    #[test]
    fn fixpoint_terminates_on_loops_and_orders_facts() {
        let body = body_of("fn f() { a(); while c() { b(); } d(); }");
        let cfg = Cfg::build(&body);
        let facts = fixpoint(&cfg, &Depth);
        assert!(facts[ENTRY].is_some());
        let exit = facts[EXIT].expect("exit reachable");
        assert!(exit >= 2, "steps did not accumulate: {facts:?}");
    }
}
