//! A hand-rolled Rust lexer, just deep enough for reliable lint matching.
//!
//! The lints in this crate look for token *sequences* (`Instant :: now`,
//! `. unwrap ( )`), so the lexer's one job is to never confuse code with
//! non-code: string literals (including raw strings whose bodies may
//! contain `//` or `"`), nested block comments, and the `'a`-lifetime vs
//! `'x'`-char ambiguity must all tokenize correctly, or a lint would fire
//! on a comment or miss real code. It is deliberately lossy everywhere
//! else — keywords are just identifiers, numbers are one opaque token,
//! and multi-character operators are emitted as single-character puncts
//! (`::` is two `:` tokens), which keeps sequence matching trivial.
//!
//! The lexer is infallible: malformed input (an unterminated string or
//! comment) tokenizes to end-of-input instead of erroring, because a lint
//! pass must never crash on a source file the compiler itself would
//! reject with a better message.

/// What a token is. Only the distinctions the lints need are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword, including raw identifiers (`r#match`
    /// yields the text after `r#`).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// A character or byte-character literal: `'x'`, `'\n'`, `b'{'`.
    CharLit,
    /// A string or byte-string literal: `"…"`, `b"…"`.
    StrLit,
    /// A raw (byte-)string literal: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStrLit,
    /// A numeric literal (integer or float, any base; one opaque token).
    NumLit,
    /// A single punctuation character. `::` is two `Punct(':')` tokens.
    Punct,
    /// A `//` line comment, text includes the slashes but not the newline.
    LineComment,
    /// A `/* … */` block comment, nesting handled; text includes fences.
    BlockComment,
}

/// One token with its source position (1-based line and column) and its
/// byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind tag.
    pub kind: TokenKind,
    /// The token's text as written (except raw identifiers and lifetimes,
    /// whose text drops the `r#` / `'` prefix — see [`TokenKind::Ident`]).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub offset: u32,
    /// Byte length of the token's source span. `offset..offset + len`
    /// always slices the source at character boundaries and reconstructs
    /// the token as written (the span round-trip the fuzz harness pins).
    pub len: u32,
}

impl Token {
    /// True for kinds lints match against (everything but comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The token's byte span, `offset..offset + len`.
    pub fn span(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// Positionless token under construction; `lex` stamps line/col/span.
fn tok(kind: TokenKind, text: impl Into<String>) -> Token {
    Token {
        kind,
        text: text.into(),
        line: 0,
        col: 0,
        offset: 0,
        len: 0,
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
            pos: 0,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peek one character past the next one (clones the iterator; the
    /// lookahead depth is bounded so this stays cheap).
    fn peek2(&mut self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Comments are emitted as tokens (the waiver scanner
/// needs them); whitespace is dropped.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let t = match c {
            '/' => lex_slash(&mut cur),
            '\'' => lex_quote(&mut cur),
            '"' => lex_string(&mut cur, String::new()),
            'r' | 'b' => lex_prefixed(&mut cur),
            c if is_ident_start(c) => lex_ident(&mut cur),
            c if c.is_ascii_digit() => lex_number(&mut cur),
            _ => {
                cur.bump();
                tok(TokenKind::Punct, c.to_string())
            }
        };
        out.push(Token {
            line,
            col,
            offset: start as u32,
            len: (cur.pos - start) as u32,
            ..t
        });
    }
    out
}

/// `/` starts a line comment, a block comment, or is plain punctuation.
fn lex_slash(cur: &mut Cursor) -> Token {
    cur.bump();
    match cur.peek() {
        Some('/') => {
            let mut text = String::from("/");
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            tok(TokenKind::LineComment, text)
        }
        Some('*') => {
            let mut text = String::from("/");
            let mut depth = 0usize;
            // Consume `*`; depth becomes 1 when the fence completes below.
            text.push('*');
            cur.bump();
            depth += 1;
            while depth > 0 {
                match cur.bump() {
                    None => break, // unterminated: tolerate
                    Some('*') if cur.peek() == Some('/') => {
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        depth -= 1;
                    }
                    Some('/') if cur.peek() == Some('*') => {
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        depth += 1;
                    }
                    Some(c) => text.push(c),
                }
            }
            tok(TokenKind::BlockComment, text)
        }
        _ => tok(TokenKind::Punct, "/"),
    }
}

/// `'` starts either a lifetime or a character literal.
///
/// Disambiguation: `'` + identifier + `'` is a char literal (`'a'`);
/// `'` + identifier *not* followed by `'` is a lifetime (`'a`, `'static`);
/// `'` + escape or non-identifier char is always a char literal.
fn lex_quote(cur: &mut Cursor) -> Token {
    cur.bump(); // the opening quote
    let mut text = String::from("'");
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the escape, then to the close.
            text.push('\\');
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'u' {
                    // '\u{…}': consume through the closing brace.
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            tok(TokenKind::CharLit, text)
        }
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
                tok(TokenKind::CharLit, text)
            } else {
                tok(TokenKind::Lifetime, text[1..].to_string())
            }
        }
        Some(c) => {
            // Non-identifier char literal: '(' , '0', '"', …
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            tok(TokenKind::CharLit, text)
        }
        None => tok(TokenKind::Punct, text),
    }
}

/// A `"…"` string with escape handling (an escaped quote must not close).
fn lex_string(cur: &mut Cursor, prefix: String) -> Token {
    let mut text = prefix;
    text.push('"');
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    tok(TokenKind::StrLit, text)
}

/// `r…` / `b…` prefixes: raw strings, byte strings, byte chars, raw
/// identifiers — or just an identifier that happens to start with r/b.
fn lex_prefixed(cur: &mut Cursor) -> Token {
    let first = cur.peek().expect("caller saw a char");
    match (first, cur.peek2()) {
        // b'x' byte-char literal.
        ('b', Some('\'')) => {
            cur.bump(); // b
            let inner = lex_quote(cur);
            tok(TokenKind::CharLit, format!("b{}", inner.text))
        }
        // b"…" byte string.
        ('b', Some('"')) => {
            cur.bump();
            lex_string(cur, "b".into())
        }
        // r"…" / r#…#"…" raw string, r#ident raw identifier, br equivalents.
        _ => {
            // Tentatively read the whole identifier, then reinterpret if a
            // raw-string fence follows the r/br/rb prefix.
            let mut ident = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                ident.push(c);
                cur.bump();
            }
            let raw_prefix = ident == "r" || ident == "br";
            if raw_prefix && cur.peek() == Some('"') {
                return lex_raw_string(cur, ident, 0);
            }
            if raw_prefix && cur.peek() == Some('#') {
                // Count fence hashes; `r#ident` (one hash, then an
                // identifier char instead of `"`) is a raw identifier.
                let mut hashes = 0usize;
                while cur.peek() == Some('#') {
                    hashes += 1;
                    cur.bump();
                }
                if cur.peek() == Some('"') {
                    return lex_raw_string(cur, ident, hashes);
                }
                if ident == "r" && hashes == 1 {
                    let mut raw = String::new();
                    while let Some(c) = cur.peek() {
                        if !is_ident_continue(c) {
                            break;
                        }
                        raw.push(c);
                        cur.bump();
                    }
                    return tok(TokenKind::Ident, raw);
                }
                // `r## not-a-string`: surface the pieces as best we can.
                let mut text = ident;
                text.push_str(&"#".repeat(hashes));
                return tok(TokenKind::Ident, text);
            }
            tok(TokenKind::Ident, ident)
        }
    }
}

/// The body of a raw string whose fence is `"` plus `hashes` hashes.
/// Nothing inside — `//`, `"`, backslashes — terminates it except the
/// exact closing fence.
fn lex_raw_string(cur: &mut Cursor, prefix: String, hashes: usize) -> Token {
    let mut text = prefix;
    text.push_str(&"#".repeat(hashes));
    text.push('"');
    cur.bump(); // opening quote
    'scan: while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            // A close requires `hashes` hashes immediately after.
            let mut it = cur.chars.clone();
            for _ in 0..hashes {
                if it.next() != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
    }
    tok(TokenKind::RawStrLit, text)
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    tok(TokenKind::Ident, text)
}

/// A numeric literal: digits, `_`, base prefixes and suffixes, and a
/// fractional part — but `1..5`'s `..` is left to punctuation.
fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut seen_dot = false;
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else if c == '.' && !seen_dot && cur.peek2().is_some_and(|d| d.is_ascii_digit()) {
            seen_dot = true;
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    tok(TokenKind::NumLit, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(Token::is_code)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_swallows_line_comment_and_quotes() {
        // The `//` and `"` inside the raw string must not start a comment
        // or terminate early; the trailing ident must still be seen.
        let src = r##"let s = r#"// not a comment, "quoted""#; after"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStrLit && t.contains("not a comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_string_fence_hash_counts_must_match() {
        // A `"#` inside an `r##"…"##` string does not close it.
        let src = "r##\"inner \"# still inside\"## tail";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStrLit);
        assert!(toks[0].1.contains("still inside"));
        assert_eq!(toks[1].1, "tail");
    }

    #[test]
    fn nested_block_comments_balance() {
        let src = "before /* outer /* inner */ still comment */ after";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "before".into()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static_thing; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static_thing"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'x'"]);
    }

    #[test]
    fn escaped_and_special_char_literals() {
        let toks = kinds(r"let a = '\n'; let b = '\''; let c = '\u{1F980}'; let d = '0';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, [r"'\n'", r"'\''", r"'\u{1F980}'", "'0'"]);
    }

    #[test]
    fn byte_literals_are_not_string_matches() {
        // `self.expect(b'{')` — the argument must lex as a char literal,
        // not a string, so the panic-hygiene lint can tell it apart from
        // `Option::expect("message")`.
        let toks = kinds("self.expect(b'{')?; let s = b\"bytes\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == "b'{'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == "b\"bytes\""));
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let toks = kinds(r#"let s = "a \" b"; next"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == r#""a \" b""#));
        assert!(toks.iter().any(|(_, t)| t == "next"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "match"));
    }

    #[test]
    fn double_colon_is_two_puncts_for_sequence_matching() {
        let texts = code_texts("Instant::now()");
        assert_eq!(texts, ["Instant", ":", ":", "now", "(", ")"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let texts = code_texts("for i in 0..5 { let x = 3.25; let h = 0xFF; }");
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"3.25".to_string()));
        assert!(texts.contains(&"0xFF".to_string()));
        // The two range dots survive as punctuation.
        assert_eq!(texts.iter().filter(|t| *t == ".").count(), 2);
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn spans_reconstruct_the_source_slice() {
        let src = "fn f<'a>(x: &'a str) { let r#match = b'{'; let s = r#\"raw // \"#; x }";
        for t in lex(src) {
            let slice = &src[t.span()];
            let ok = match t.kind {
                TokenKind::Ident => slice == t.text || slice == format!("r#{}", t.text),
                TokenKind::Lifetime => slice == format!("'{}", t.text),
                _ => slice == t.text,
            };
            assert!(ok, "span {:?} sliced {slice:?} for token {t:?}", t.span());
        }
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }
}
