//! The seed-stream registry: the `seed-stream-collision` lint.
//!
//! Every deterministic subsystem derives its RNG streams with
//! `smartfeat_rng::seed_jump(base, STREAM)`, and the stream index space is
//! a single global namespace per base seed — two subsystems jumping to
//! the same index silently share a stream, which is exactly the collision
//! shape PRs 7–8 made easy (`SCORE_STREAM=101`, `EVOLUTION_STREAM=211`,
//! `CASCADE_STREAM=311+rung`, raw per-tree `seed_jump(seed, i)` in
//! `crates/ml`). This pass harvests every call site of a
//! `// sfcheck:seed-derivation` fn workspace-wide and checks the claimed
//! indices for overlap:
//!
//! - a **constant** stream argument (integer literal or `const` path)
//!   claims the single index `[v, v+1)`;
//! - a **dynamic** argument (`CONST + i`, `i as u64`, …) must declare its
//!   reserved range on the call line or the line above with
//!   `// sfcheck:seed-stream(start..end)`, and any constant it mentions
//!   must fall inside that range;
//! - call sites whose *base* argument is itself a `seed_jump(..)` result
//!   are exempt — they index a derived namespace, not the root one.
//!
//! Claims merge into families (same const definition, same literal per
//! crate, same declared range per crate); ranges of *distinct* families
//! must be pairwise disjoint. Malformed annotations are findings, never
//! silently inert — the underscore typo `sfcheck:seed_stream` carries a
//! mechanical `--fix` suggestion, mirroring the waiver-syntax one.

use std::collections::BTreeMap;

use crate::ast::{Expr, Pos};
use crate::dataflow::{finding_at, SEED_DERIVATION};
use crate::lexer::{lex, Token, TokenKind};
use crate::lints::Finding;
use crate::resolve::{FnId, Workspace};
use crate::walker::FileClass;

const LINT: &str = "seed-stream-collision";

/// A declared `// sfcheck:seed-stream(start..end)` reservation.
#[derive(Debug, Clone)]
struct Annotation {
    line: u32,
    start: u64,
    end: u64,
}

/// One stream claim at a `seed_jump` call site.
#[derive(Debug)]
struct Claim {
    file: usize,
    pos: Pos,
    /// Family identity: claims with equal keys are one reservation.
    key: String,
    start: u64,
    end: u64,
    /// Human description for overlap messages (`` `SCORE_STREAM` (=101) ``).
    desc: String,
}

/// Is this line comment a plain (non-doc) comment? Mirrors the waiver
/// collector: `///` (but not `////`) and `//!` are documentation.
fn is_plain_comment(tok: &Token) -> bool {
    tok.kind == TokenKind::LineComment
        && !((tok.text.starts_with("///") && !tok.text.starts_with("////"))
            || tok.text.starts_with("//!"))
}

/// Parse a decimal integer literal, tolerating `_` separators and a type
/// suffix (`101u64`). Non-decimal radixes are not stream constants here.
fn parse_decimal(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    if cleaned.starts_with("0x") || cleaned.starts_with("0b") || cleaned.starts_with("0o") {
        return None;
    }
    let digits: String = cleaned.chars().take_while(char::is_ascii_digit).collect();
    let suffix = &cleaned[digits.len()..];
    let suffix_ok = matches!(
        suffix,
        "" | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    );
    if digits.is_empty() || !suffix_ok {
        return None;
    }
    digits.parse().ok()
}

/// Harvest `const NAME: TY = <int>;` definitions from one file's tokens.
fn harvest_consts(tokens: &[Token]) -> Vec<(String, u64)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].kind == TokenKind::Ident
            && code[i].text == "const"
            && i + 1 < code.len()
            && code[i + 1].kind == TokenKind::Ident
        {
            let name = code[i + 1].text.clone();
            // Scan to the `=` of this item (stop at `;` — an associated
            // const without an initializer, or a malformed item).
            let mut j = i + 2;
            while j < code.len() && !matches!(code[j].text.as_str(), "=" | ";") {
                j += 1;
            }
            if j + 2 < code.len()
                && code[j].text == "="
                && code[j + 1].kind == TokenKind::NumLit
                && code[j + 2].kind == TokenKind::Punct
                && code[j + 2].text == ";"
            {
                if let Some(v) = parse_decimal(&code[j + 1].text) {
                    out.push((name, v));
                }
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Harvest `sfcheck:seed-stream(start..end)` annotations from one file's
/// comments; malformed ones (and the `seed_stream` underscore typo)
/// become findings.
fn harvest_annotations(
    ws: &Workspace,
    file_idx: usize,
    tokens: &[Token],
    out: &mut Vec<Finding>,
) -> Vec<Annotation> {
    let mut annos = Vec::new();
    for tok in tokens {
        if !is_plain_comment(tok) {
            continue;
        }
        let pos = Pos {
            line: tok.line,
            col: tok.col,
        };
        if let Some(at) = tok.text.find("sfcheck:seed_stream") {
            let fixed = tok
                .text
                .replacen("sfcheck:seed_stream", "sfcheck:seed-stream", 1);
            let mut f = finding_at(
                ws,
                file_idx,
                pos,
                LINT,
                format!(
                    "`{}` is not a recognized annotation — the reserved-range marker is \
                     spelled `sfcheck:seed-stream(start..end)`",
                    &tok.text[at..at + "sfcheck:seed_stream".len()]
                ),
            );
            // The snippet is the whole trimmed line; rewrite the typo in
            // place so `--fix` can apply it mechanically.
            f.suggestion = Some(f.snippet.replace(&tok.text, fixed.as_str()));
            out.push(f);
            continue;
        }
        let Some(at) = tok.text.find("sfcheck:seed-stream") else {
            continue;
        };
        let rest = &tok.text[at + "sfcheck:seed-stream".len()..];
        let parsed = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .and_then(|(range, _reason)| range.trim().split_once(".."))
            .and_then(|(a, b)| Some((parse_decimal(a.trim())?, parse_decimal(b.trim())?)));
        match parsed {
            Some((start, end)) if start < end => annos.push(Annotation {
                line: tok.line,
                start,
                end,
            }),
            _ => out.push(finding_at(
                ws,
                file_idx,
                pos,
                LINT,
                "malformed seed-stream annotation: expected \
                 `sfcheck:seed-stream(start..end)` with start < end"
                    .into(),
            )),
        }
    }
    annos
}

/// How a stream argument claims index space.
enum ArgClass {
    /// A bare integer literal.
    Literal(u64),
    /// A bare path to a known stream constant.
    Const(String, u64),
    /// Anything else; carries the constants the expression mentions.
    Dynamic(Vec<(String, u64)>),
}

fn classify_arg(
    arg: &Expr,
    local: &BTreeMap<String, u64>,
    global: &BTreeMap<String, Option<u64>>,
) -> ArgClass {
    let lookup = |name: &str| -> Option<u64> {
        local
            .get(name)
            .copied()
            .or_else(|| global.get(name).copied().flatten())
    };
    match arg {
        Expr::Lit(l) => {
            if let Some(v) = parse_decimal(&l.text) {
                return ArgClass::Literal(v);
            }
        }
        Expr::Path(p) => {
            if let Some(last) = p.segments.last() {
                if let Some(v) = lookup(last) {
                    return ArgClass::Const(last.clone(), v);
                }
            }
        }
        _ => {}
    }
    let mut mentioned = Vec::new();
    arg.walk(&mut |e| {
        if let Expr::Path(p) = e {
            if let Some(last) = p.segments.last() {
                if let Some(v) = lookup(last) {
                    if !mentioned.iter().any(|(n, _)| n == last) {
                        mentioned.push((last.clone(), v));
                    }
                }
            }
        }
    });
    ArgClass::Dynamic(mentioned)
}

/// Does this expression contain a call to a seed-derivation fn? Used to
/// exempt derived namespaces (`seed_jump(seed_jump(seed, S), g)`).
fn contains_derivation(ws: &Workspace, caller: FnId, e: &Expr, derivations: &[FnId]) -> bool {
    let info = &ws.fns[caller];
    let mut found = false;
    e.walk(&mut |sub| {
        if let Expr::Call(c) = sub {
            if let Expr::Path(p) = &*c.callee {
                let resolved = ws.resolve_path(
                    info.file,
                    &info.module,
                    info.impl_ty.as_deref(),
                    &p.segments,
                );
                if resolved.iter().any(|t| derivations.contains(t)) {
                    found = true;
                }
            }
        }
    });
    found
}

/// Run the seed-stream registry lint over the whole workspace. Always a
/// full pass — claims in unconnected crates still collide, so there is
/// no call-graph locality to exploit (and the token harvest is cheap).
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let derivations: Vec<FnId> = ws.marked(SEED_DERIVATION);

    // Token harvest: per-file consts and annotations.
    let mut consts_by_file: Vec<BTreeMap<String, u64>> = Vec::with_capacity(ws.files.len());
    let mut annos_by_file: Vec<Vec<Annotation>> = Vec::with_capacity(ws.files.len());
    // Workspace-wide const table; a name defined with two different
    // values maps to `None` (ambiguous — never resolved cross-file).
    let mut global_consts: BTreeMap<String, Option<u64>> = BTreeMap::new();
    for (idx, file) in ws.files.iter().enumerate() {
        let tokens = lex(&file.text);
        let consts = harvest_consts(&tokens);
        let annos = if file.class == FileClass::Test {
            Vec::new()
        } else {
            harvest_annotations(ws, idx, &tokens, &mut out)
        };
        let mut map = BTreeMap::new();
        for (name, v) in consts {
            match global_consts.get(&name) {
                Some(Some(prev)) if *prev != v => {
                    global_consts.insert(name.clone(), None);
                }
                Some(_) => {}
                None => {
                    global_consts.insert(name.clone(), Some(v));
                }
            }
            map.insert(name, v);
        }
        consts_by_file.push(map);
        annos_by_file.push(annos);
    }

    // AST harvest: every derivation call site in non-test library code.
    let mut claims: Vec<Claim> = Vec::new();
    for id in 0..ws.fns.len() {
        let info = &ws.fns[id];
        let file = &ws.files[info.file];
        if info.is_test || file.class == FileClass::Test || file.crate_name == "smartfeat_rng" {
            // The rng crate defines the derivation fns (and documents them
            // with example indices); claims start at the consumers.
            continue;
        }
        let Some(body) = ws.body_of(id) else { continue };
        let file_idx = info.file;
        crate::ast::walk_block(body, &mut |e| {
            let Expr::Call(c) = e else { return };
            let Expr::Path(p) = &*c.callee else { return };
            let resolved = ws.resolve_path(
                info.file,
                &info.module,
                info.impl_ty.as_deref(),
                &p.segments,
            );
            if !resolved.iter().any(|t| derivations.contains(t)) || c.args.len() < 2 {
                return;
            }
            if contains_derivation(ws, id, &c.args[0], &derivations) {
                return; // derived namespace, not the root index space
            }
            let crate_dir = &file.crate_dir;
            let pos = e.pos();
            match classify_arg(&c.args[1], &consts_by_file[file_idx], &global_consts) {
                ArgClass::Literal(v) => claims.push(Claim {
                    file: file_idx,
                    pos,
                    key: format!("lit:{crate_dir}:{v}"),
                    start: v,
                    end: v + 1,
                    desc: format!("literal stream `{v}`"),
                }),
                ArgClass::Const(name, v) => claims.push(Claim {
                    file: file_idx,
                    pos,
                    key: format!("const:{name}:{v}"),
                    start: v,
                    end: v + 1,
                    desc: format!("`{name}` (={v})"),
                }),
                ArgClass::Dynamic(mentioned) => {
                    let anno = annos_by_file[file_idx]
                        .iter()
                        .find(|a| a.line + 1 == pos.line || a.line == pos.line);
                    let Some(anno) = anno else {
                        out.push(finding_at(
                            ws,
                            file_idx,
                            pos,
                            LINT,
                            "dynamic seed-stream argument has no reserved range; declare \
                             the family with `// sfcheck:seed-stream(start..end)` on this \
                             line or the line above"
                                .into(),
                        ));
                        return;
                    };
                    for (name, v) in &mentioned {
                        if *v < anno.start || *v >= anno.end {
                            out.push(finding_at(
                                ws,
                                file_idx,
                                pos,
                                LINT,
                                format!(
                                    "seed-stream annotation `{}..{}` does not cover `{name}` \
                                     (={v}) mentioned by the stream expression",
                                    anno.start, anno.end
                                ),
                            ));
                        }
                    }
                    claims.push(Claim {
                        file: file_idx,
                        pos,
                        key: format!("range:{crate_dir}:{}..{}", anno.start, anno.end),
                        start: anno.start,
                        end: anno.end,
                        desc: format!("declared range `{}..{}`", anno.start, anno.end),
                    });
                }
            }
        });
    }

    // Merge claims into families and flag overlaps across families.
    let mut families: BTreeMap<&str, &Claim> = BTreeMap::new();
    for claim in &claims {
        families.entry(claim.key.as_str()).or_insert(claim);
    }
    let reps: Vec<&Claim> = families.into_values().collect();
    for (i, a) in reps.iter().enumerate() {
        for b in reps.iter().skip(i + 1) {
            if a.start < b.end && b.start < a.end {
                for (this, other) in [(a, b), (b, a)] {
                    out.push(finding_at(
                        ws,
                        this.file,
                        this.pos,
                        LINT,
                        format!(
                            "seed-stream claim {} overlaps {} claimed at {}:{}; reserve \
                             disjoint index ranges so subsystems never share an RNG stream",
                            this.desc, other.desc, ws.files[other.file].rel_path, other.pos.line
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::walker::{classify, SourceFile};

    fn file(rel: &str, text: &str) -> (SourceFile, crate::ast::File) {
        (
            SourceFile {
                rel_path: rel.to_string(),
                text: text.to_string(),
                class: classify(rel),
                crate_dir: crate::walker::crate_dir_of(rel),
            },
            parse(&lex(text)),
        )
    }

    fn manifest(rel: &str, name: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: format!("[package]\nname = \"{name}\"\n"),
            class: classify(rel),
            crate_dir: crate::walker::crate_dir_of(rel),
        }
    }

    /// An rng crate exporting `seed_jump` plus two consumer crates.
    fn ws_of(core: &str, ml: &str) -> Workspace {
        let manifests = vec![
            manifest("crates/rng/Cargo.toml", "smartfeat-rng"),
            manifest("crates/core/Cargo.toml", "smartfeat"),
            manifest("crates/ml/Cargo.toml", "smartfeat-ml"),
        ];
        let parsed = vec![
            file(
                "crates/rng/src/lib.rs",
                "// sfcheck:seed-derivation\npub fn seed_jump(base: u64, index: u64) -> u64 { base }",
            ),
            file("crates/core/src/lib.rs", core),
            file("crates/ml/src/lib.rs", ml),
        ];
        crate::resolve::build(parsed, &manifests)
    }

    fn messages(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.message.as_str()).collect()
    }

    #[test]
    fn disjoint_constant_streams_are_clean() {
        let ws = ws_of(
            "use smartfeat_rng::seed_jump;\npub const A_STREAM: u64 = 101;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, A_STREAM) }",
            "use smartfeat_rng::seed_jump;\npub fn run(seed: u64) -> u64 { seed_jump(seed, 7) }",
        );
        let findings = run(&ws);
        assert!(findings.is_empty(), "{:?}", messages(&findings));
    }

    #[test]
    fn equal_constant_values_in_two_crates_collide() {
        let ws = ws_of(
            "use smartfeat_rng::seed_jump;\npub const A_STREAM: u64 = 101;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, A_STREAM) }",
            "use smartfeat_rng::seed_jump;\npub const B_STREAM: u64 = 101;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, B_STREAM) }",
        );
        let findings = run(&ws);
        assert_eq!(findings.len(), 2, "one finding per family");
        assert!(findings[0].message.contains("overlaps"));
    }

    #[test]
    fn dynamic_stream_requires_annotation() {
        let ws = ws_of(
            "pub fn nothing() {}",
            "use smartfeat_rng::seed_jump;\npub fn run(seed: u64, i: u64) -> u64 {\n\
             seed_jump(seed, i)\n}",
        );
        let findings = run(&ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no reserved range"));
        assert_eq!(findings[0].file, "crates/ml/src/lib.rs");
    }

    #[test]
    fn annotated_dynamic_family_merges_within_crate_and_collides_across() {
        // Two ml sites share 0..100 (one family); core claims 50 → overlap.
        let ws = ws_of(
            "use smartfeat_rng::seed_jump;\n\
             pub fn run(seed: u64) -> u64 { seed_jump(seed, 50) }",
            "use smartfeat_rng::seed_jump;\npub fn a(seed: u64, i: u64) -> u64 {\n\
             // sfcheck:seed-stream(0..100) per-tree streams\n\
             seed_jump(seed, i)\n}\n\
             pub fn b(seed: u64, i: u64) -> u64 {\n\
             // sfcheck:seed-stream(0..100) per-tree streams\n\
             seed_jump(seed, i)\n}",
        );
        let findings = run(&ws);
        assert_eq!(findings.len(), 2, "{:?}", messages(&findings));
        assert!(findings.iter().all(|f| f.message.contains("overlaps")));
        // The two annotated ml sites merged: only one ml representative.
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.file == "crates/ml/src/lib.rs")
                .count(),
            1
        );
    }

    #[test]
    fn annotation_must_cover_mentioned_const() {
        let ws = ws_of(
            "pub fn nothing() {}",
            "use smartfeat_rng::seed_jump;\npub const C_STREAM: u64 = 311;\n\
             pub fn run(seed: u64, i: u64) -> u64 {\n\
             // sfcheck:seed-stream(0..16) rungs\n\
             seed_jump(seed, C_STREAM + i)\n}",
        );
        let findings = run(&ws);
        assert_eq!(findings.len(), 1, "{:?}", messages(&findings));
        assert!(findings[0].message.contains("does not cover `C_STREAM`"));
    }

    #[test]
    fn derived_namespace_outer_jump_is_exempt() {
        let ws = ws_of(
            "use smartfeat_rng::seed_jump;\npub const E_STREAM: u64 = 211;\n\
             pub fn run(seed: u64, g: u64) -> u64 {\n\
             seed_jump(seed_jump(seed, E_STREAM), g)\n}",
            "pub fn nothing() {}",
        );
        let findings = run(&ws);
        assert!(findings.is_empty(), "{:?}", messages(&findings));
    }

    #[test]
    fn malformed_annotation_is_a_finding_and_typo_gets_a_fix() {
        let ws = ws_of(
            "pub fn a() {}\n// sfcheck:seed-stream(10..) oops\npub fn b() {}",
            "pub fn c() {}\n// sfcheck:seed_stream(0..4) typo\npub fn d() {}",
        );
        let findings = run(&ws);
        assert_eq!(findings.len(), 2, "{:?}", messages(&findings));
        let typo = findings
            .iter()
            .find(|f| f.file == "crates/ml/src/lib.rs")
            .unwrap();
        assert!(typo
            .suggestion
            .as_deref()
            .unwrap()
            .contains("sfcheck:seed-stream("));
        let malformed = findings
            .iter()
            .find(|f| f.file == "crates/core/src/lib.rs")
            .unwrap();
        assert!(malformed.message.contains("malformed"));
    }
}
