//! Deterministic report emission through `frame::json`.
//!
//! The report is a single JSON object; objects are `BTreeMap`-backed so
//! key order is sorted, findings are pre-sorted by the driver, and
//! nothing in the report depends on wall time, thread count, or
//! environment — `sfcheck --json` is byte-identical across runs (a
//! golden test enforces this).

use smartfeat_frame::json::JsonValue;

use crate::lints::{lint_counts, Finding, Waived};

fn finding_json(f: &Finding) -> JsonValue {
    JsonValue::object([
        ("col", JsonValue::from(u64::from(f.col))),
        ("file", JsonValue::from(f.file.as_str())),
        ("line", JsonValue::from(u64::from(f.line))),
        ("lint", JsonValue::from(f.lint)),
        ("message", JsonValue::from(f.message.as_str())),
        ("snippet", JsonValue::from(f.snippet.as_str())),
    ])
}

fn fix_json(f: &Finding, replacement: &str) -> JsonValue {
    JsonValue::object([
        ("current", JsonValue::from(f.snippet.as_str())),
        ("file", JsonValue::from(f.file.as_str())),
        ("line", JsonValue::from(u64::from(f.line))),
        ("lint", JsonValue::from(f.lint)),
        ("replacement", JsonValue::from(replacement)),
    ])
}

fn waived_json(w: &Waived) -> JsonValue {
    let mut obj = finding_json(&w.finding);
    if let JsonValue::Object(map) = &mut obj {
        map.insert("reason".to_string(), JsonValue::from(w.reason.as_str()));
    }
    obj
}

/// Inputs to the report builder, already sorted and partitioned.
pub struct ReportInput<'a> {
    /// Findings matched by the baseline (tracked, non-failing).
    pub baselined: &'a [Finding],
    /// Live findings (fail the gate).
    pub findings: &'a [Finding],
    /// Waived findings with their reasons.
    pub waived: &'a [Waived],
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
    /// Whether to include the `fixes` section (`--fix-dry-run`).
    pub fix_dry_run: bool,
}

/// Build the full report document.
pub fn build(input: &ReportInput<'_>) -> JsonValue {
    let lints = lint_counts(input.findings)
        .into_iter()
        .map(|(k, v)| (k, JsonValue::from(v)))
        .collect();
    let summary = JsonValue::object([
        ("baselined", JsonValue::from(input.baselined.len())),
        ("files_scanned", JsonValue::from(input.files_scanned)),
        ("findings", JsonValue::from(input.findings.len())),
        ("lints", JsonValue::Object(lints)),
        (
            "manifests_scanned",
            JsonValue::from(input.manifests_scanned),
        ),
        ("waived", JsonValue::from(input.waived.len())),
    ]);

    let mut pairs = vec![
        (
            "baselined",
            JsonValue::Array(input.baselined.iter().map(finding_json).collect()),
        ),
        (
            "findings",
            JsonValue::Array(input.findings.iter().map(finding_json).collect()),
        ),
        ("summary", summary),
        (
            "waived",
            JsonValue::Array(input.waived.iter().map(waived_json).collect()),
        ),
    ];
    if input.fix_dry_run {
        let fixes: Vec<JsonValue> = input
            .findings
            .iter()
            .chain(input.baselined.iter())
            .filter_map(|f| f.suggestion.as_deref().map(|r| fix_json(f, r)))
            .collect();
        pairs.push(("fixes", JsonValue::Array(fixes)));
    }
    JsonValue::object(pairs)
}

/// Render a finding for human (non-`--json`) output.
pub fn human_line(f: &Finding) -> String {
    format!(
        "{}:{}:{}: [{}] {}\n    {}",
        f.file, f.line, f.col, f.lint, f.message, f.snippet
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(with_suggestion: bool) -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            lint: "hash-collections",
            message: "msg".into(),
            snippet: "let m: HashMap<u32, u32> = HashMap::new();".into(),
            suggestion: with_suggestion
                .then(|| "let m: BTreeMap<u32, u32> = BTreeMap::new();".to_string()),
        }
    }

    #[test]
    fn report_shape_and_determinism() {
        let findings = [finding(true)];
        let input = ReportInput {
            baselined: &[],
            findings: &findings,
            waived: &[],
            files_scanned: 10,
            manifests_scanned: 2,
            fix_dry_run: false,
        };
        let a = build(&input).emit();
        let b = build(&input).emit();
        assert_eq!(a, b, "emission is deterministic");
        let parsed = JsonValue::parse(&a).unwrap();
        assert_eq!(
            parsed
                .get("summary")
                .unwrap()
                .get("findings")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("summary")
                .unwrap()
                .get("lints")
                .unwrap()
                .get("hash-collections")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(parsed.get("fixes").is_none(), "no fixes without dry-run");
    }

    #[test]
    fn fix_dry_run_lists_suggestions_only() {
        let findings = [finding(true), {
            let mut f = finding(false);
            f.lint = "wall-clock";
            f
        }];
        let input = ReportInput {
            baselined: &[],
            findings: &findings,
            waived: &[],
            files_scanned: 1,
            manifests_scanned: 1,
            fix_dry_run: true,
        };
        let parsed = JsonValue::parse(&build(&input).emit()).unwrap();
        let fixes = parsed.get("fixes").unwrap().as_array().unwrap();
        assert_eq!(fixes.len(), 1, "only mechanical lints carry fixes");
        assert_eq!(
            fixes[0].get("lint").unwrap().as_str(),
            Some("hash-collections")
        );
    }
}
