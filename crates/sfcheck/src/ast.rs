//! The abstract syntax tree produced by [`crate::parser`].
//!
//! This is a *lint-grade* AST, not a compiler-grade one: it models exactly
//! the structure the semantic lints reason about — items, function
//! signatures (`&mut` params, generics), `use` paths, impl blocks,
//! closures, call/method-call expressions, and the binding forms needed
//! for free-variable (capture) analysis — and deliberately flattens
//! everything else into [`Expr::Seq`] "expression soup" that still records
//! its children, so a walk never loses a nested call or closure.
//!
//! Every node carries a byte [`Span`] into the source file plus the
//! 1-based line/column of its first token, so findings and `--fix`
//! rewrites anchor exactly. [`dump`] renders a deterministic, indented
//! text form of the tree (the golden-AST tests pin it for representative
//! workspace files).

use std::fmt::Write as _;

/// Byte range into the source file (`start..end`).
pub type Span = std::ops::Range<u32>;

/// Line + column (1-based) of a node's first token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column in characters.
    pub col: u32,
}

/// A parsed source file.
#[derive(Debug, Clone, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (top-level or nested in a `mod`/`impl`/function body).
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Byte span of the whole item including attributes.
    pub span: Span,
    /// Position of the item's first token.
    pub pos: Pos,
    /// Flattened attribute texts, e.g. `cfg(test)`, `test`, `derive(Debug)`.
    pub attrs: Vec<String>,
    /// `// sfcheck:<name>` marker comments attached directly above the
    /// item (e.g. `parallel-entry`, `seed-derivation`).
    pub markers: Vec<String>,
}

impl Item {
    /// True when the item is gated to test builds (`#[cfg(test)]` or
    /// `#[test]`-family attributes).
    pub fn is_test_gated(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || (a.starts_with("cfg") && a.contains("test")))
    }
}

/// Item discriminant.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `fn` definition (free or associated).
    Fn(FnItem),
    /// `use` declaration, expanded to one target per imported name.
    Use(UseItem),
    /// `impl` block.
    Impl(ImplBlock),
    /// `mod` declaration, inline or file-backed.
    Mod(ModItem),
    /// `static` item.
    Static(StaticItem),
    /// Anything else (`struct`, `enum`, `trait`, `const`, `type`, …):
    /// structure is skipped, keyword and name are kept.
    Other(OtherItem),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Whether the definition is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Generic type-parameter names (lifetimes and bounds dropped).
    pub generics: Vec<String>,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body block; `None` for trait-method declarations.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name: the first identifier of the pattern (`self` for any
    /// self receiver).
    pub name: String,
    /// Flattened type text (empty for bare `self` receivers).
    pub ty: String,
    /// True when the parameter is taken by `&mut` (including `&mut self`).
    pub by_mut_ref: bool,
}

/// A `use` declaration.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// One entry per imported name, groups expanded.
    pub targets: Vec<UseTarget>,
}

/// One imported name.
#[derive(Debug, Clone)]
pub struct UseTarget {
    /// Full path segments as written (`crate`, `super`, `self` kept).
    pub path: Vec<String>,
    /// The name the import binds (`as` alias, else the last segment;
    /// `*` for glob imports).
    pub alias: String,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Last segment of the self type's path (`Foo` for `impl Foo<T>`).
    pub ty_name: String,
    /// Last segment of the implemented trait's path, if a trait impl.
    pub trait_name: Option<String>,
    /// Associated items (functions, consts, …).
    pub items: Vec<Item>,
}

/// A `mod` declaration.
#[derive(Debug, Clone)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// Inline items; `None` for `mod name;` (file-backed).
    pub items: Option<Vec<Item>>,
}

/// A `static` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Static's name.
    pub name: String,
    /// True for `static mut`.
    pub mutable: bool,
    /// Declared type, as written (empty when unparseable). The lock pass
    /// reads this to spot `Mutex`/`RwLock`-typed process globals.
    pub ty: String,
}

/// An item the parser does not model structurally.
#[derive(Debug, Clone)]
pub struct OtherItem {
    /// Leading keyword (`struct`, `enum`, `const`, …).
    pub keyword: String,
    /// The declared name, when one follows the keyword.
    pub name: Option<String>,
}

/// A `{ … }` block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Byte span including the braces.
    pub span: Span,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let` binding.
    Let(LetStmt),
    /// Expression statement (or trailing expression).
    Expr(Expr),
    /// Nested item (fn, use, const, … defined inside a body).
    Item(Item),
}

/// A `let` binding.
#[derive(Debug, Clone)]
pub struct LetStmt {
    /// First identifier of the pattern (`_` when none).
    pub name: String,
    /// All identifiers bound by the pattern (tuple/struct patterns).
    pub bound: Vec<String>,
    /// True for `let mut`.
    pub mutable: bool,
    /// Flattened type annotation text (empty when inferred).
    pub ty: String,
    /// Initializer expression.
    pub init: Option<Expr>,
    /// Position of the `let` keyword.
    pub pos: Pos,
    /// Byte span of the whole statement.
    pub span: Span,
}

/// An expression. Structured variants carry exactly what the lints need;
/// everything else nests under [`Expr::Seq`].
#[derive(Debug, Clone)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `a::b::c`, `Self::f`.
    Path(PathExpr),
    /// A call whose callee is an expression (usually a path).
    Call(CallExpr),
    /// A method call `recv.name(args)`.
    MethodCall(MethodCallExpr),
    /// A closure `move? |params| body`.
    Closure(ClosureExpr),
    /// A macro invocation `name!(…)` / `name![…]` / `name!{…}`.
    Macro(MacroExpr),
    /// An index expression `base[index]`.
    Index(IndexExpr),
    /// A field access `base.name` (also tuple indices and `.await`).
    Field(FieldExpr),
    /// A block expression.
    Block(Block),
    /// A literal (string/char/number).
    Lit(LitExpr),
    /// An uninterpreted run of sub-expressions (operator chains, tuples,
    /// control-flow headers, …). `binds` lists pattern-bound names whose
    /// scope is this node (for-loop patterns, match-arm patterns,
    /// `if let`/`while let`), so free-variable analysis can exclude them.
    Seq(SeqExpr),
}

/// See [`Expr::Path`].
#[derive(Debug, Clone)]
pub struct PathExpr {
    /// Path segments (turbofish generics dropped).
    pub segments: Vec<String>,
    /// Span of the whole path.
    pub span: Span,
    /// Position of the first segment.
    pub pos: Pos,
}

/// See [`Expr::Call`].
#[derive(Debug, Clone)]
pub struct CallExpr {
    /// The called expression.
    pub callee: Box<Expr>,
    /// Arguments in order.
    pub args: Vec<Expr>,
    /// Span of callee + argument list.
    pub span: Span,
    /// Position of the callee's first token.
    pub pos: Pos,
}

/// See [`Expr::MethodCall`].
#[derive(Debug, Clone)]
pub struct MethodCallExpr {
    /// Receiver expression.
    pub recv: Box<Expr>,
    /// Method name.
    pub method: String,
    /// Arguments in order (receiver excluded).
    pub args: Vec<Expr>,
    /// Span of receiver + call.
    pub span: Span,
    /// Position of the method name token.
    pub pos: Pos,
}

/// See [`Expr::Closure`].
#[derive(Debug, Clone)]
pub struct ClosureExpr {
    /// True for `move` closures.
    pub is_move: bool,
    /// Parameter names in order.
    pub params: Vec<String>,
    /// Body expression.
    pub body: Box<Expr>,
    /// Span from `move`/`|` through the body.
    pub span: Span,
    /// Position of the closure's first token.
    pub pos: Pos,
}

/// See [`Expr::Macro`].
#[derive(Debug, Clone)]
pub struct MacroExpr {
    /// Macro path segments (`panic`, `obs::event`, …).
    pub segments: Vec<String>,
    /// Parsed argument expressions (for `(…)`/`[…]` macros).
    pub args: Vec<Expr>,
    /// Span of the whole invocation.
    pub span: Span,
    /// Position of the macro name.
    pub pos: Pos,
}

/// See [`Expr::Index`].
#[derive(Debug, Clone)]
pub struct IndexExpr {
    /// Indexed expression.
    pub base: Box<Expr>,
    /// Index expression.
    pub index: Box<Expr>,
    /// Span of base + brackets.
    pub span: Span,
    /// Position of the base's first token.
    pub pos: Pos,
}

/// See [`Expr::Field`].
#[derive(Debug, Clone)]
pub struct FieldExpr {
    /// Base expression.
    pub base: Box<Expr>,
    /// Field name (or tuple index / `await`).
    pub name: String,
    /// Span of base + field.
    pub span: Span,
    /// Position of the base's first token.
    pub pos: Pos,
}

/// See [`Expr::Lit`].
#[derive(Debug, Clone)]
pub struct LitExpr {
    /// Literal text as written.
    pub text: String,
    /// Span of the literal.
    pub span: Span,
    /// Position of the literal.
    pub pos: Pos,
}

/// Control-flow role of a [`SeqExpr`]. The parser tags the `Seq` nodes
/// it builds for control-flow constructs so downstream passes (the CFG
/// builder in particular) can recover branch/loop/early-exit structure
/// without re-deriving it from token shapes. Plain expression runs and
/// groups stay `Ctrl::None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ctrl {
    /// Plain expression run, group, struct literal, or soup.
    #[default]
    None,
    /// `if`/`if let` (children: cond, then-block, optional else).
    If,
    /// `while`/`while let` (children: cond, body-block).
    While,
    /// `for` (children: iterable, body-block; binds from the pattern).
    For,
    /// `loop` (children: body-block).
    Loop,
    /// `match` (children: scrutinee, then one `Arm` per arm).
    Match,
    /// One match arm (children: body; binds from the pattern).
    Arm,
    /// `return expr?` (children: the value, when present).
    Return,
    /// `break expr?`.
    Break,
    /// `continue`.
    Continue,
}

impl Ctrl {
    /// Short name for AST dumps (empty for `None`).
    pub fn name(self) -> &'static str {
        match self {
            Ctrl::None => "",
            Ctrl::If => "if",
            Ctrl::While => "while",
            Ctrl::For => "for",
            Ctrl::Loop => "loop",
            Ctrl::Match => "match",
            Ctrl::Arm => "arm",
            Ctrl::Return => "return",
            Ctrl::Break => "break",
            Ctrl::Continue => "continue",
        }
    }
}

/// See [`Expr::Seq`].
#[derive(Debug, Clone, Default)]
pub struct SeqExpr {
    /// Child expressions in source order.
    pub children: Vec<Expr>,
    /// Names bound by patterns scoped to this node.
    pub binds: Vec<String>,
    /// Control-flow role (`Ctrl::None` for plain runs).
    pub ctrl: Ctrl,
    /// Span of the run.
    pub span: Span,
    /// Position of the first token.
    pub pos: Pos,
}

impl Expr {
    /// The expression's byte span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path(e) => e.span.clone(),
            Expr::Call(e) => e.span.clone(),
            Expr::MethodCall(e) => e.span.clone(),
            Expr::Closure(e) => e.span.clone(),
            Expr::Macro(e) => e.span.clone(),
            Expr::Index(e) => e.span.clone(),
            Expr::Field(e) => e.span.clone(),
            Expr::Block(b) => b.span.clone(),
            Expr::Lit(e) => e.span.clone(),
            Expr::Seq(e) => e.span.clone(),
        }
    }

    /// The position of the expression's first token.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Path(e) => e.pos,
            Expr::Call(e) => e.pos,
            Expr::MethodCall(e) => e.pos,
            Expr::Closure(e) => e.pos,
            Expr::Macro(e) => e.pos,
            Expr::Index(e) => e.pos,
            Expr::Field(e) => e.pos,
            Expr::Block(b) => b.stmts.first().map(Stmt::pos).unwrap_or_default(),
            Expr::Lit(e) => e.pos,
            Expr::Seq(e) => e.pos,
        }
    }

    /// Visit this expression and every nested expression (pre-order),
    /// including closure bodies and statements of nested blocks.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Path(_) | Expr::Lit(_) => {}
            Expr::Call(e) => {
                e.callee.walk(f);
                for a in &e.args {
                    a.walk(f);
                }
            }
            Expr::MethodCall(e) => {
                e.recv.walk(f);
                for a in &e.args {
                    a.walk(f);
                }
            }
            Expr::Closure(e) => e.body.walk(f),
            Expr::Macro(e) => {
                for a in &e.args {
                    a.walk(f);
                }
            }
            Expr::Index(e) => {
                e.base.walk(f);
                e.index.walk(f);
            }
            Expr::Field(e) => e.base.walk(f),
            Expr::Block(b) => walk_block(b, f),
            Expr::Seq(e) => {
                for c in &e.children {
                    c.walk(f);
                }
            }
        }
    }
}

/// Visit every expression under a block (see [`Expr::walk`]).
pub fn walk_block<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    init.walk(f);
                }
            }
            Stmt::Expr(e) => e.walk(f),
            Stmt::Item(item) => {
                if let ItemKind::Fn(fun) = &item.kind {
                    if let Some(body) = &fun.body {
                        walk_block(body, f);
                    }
                }
            }
        }
    }
}

impl Stmt {
    /// Position of the statement's first token.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Let(l) => l.pos,
            Stmt::Expr(e) => e.pos(),
            Stmt::Item(i) => i.pos,
        }
    }
}

/// Render a deterministic, indented text dump of the tree. Line-oriented:
/// one node per line, children indented two spaces — the golden-AST
/// format.
pub fn dump(file: &File) -> String {
    let mut out = String::from("file\n");
    for item in &file.items {
        dump_item(item, 1, &mut out);
    }
    out
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_item(item: &Item, depth: usize, out: &mut String) {
    pad(depth, out);
    match &item.kind {
        ItemKind::Fn(f) => {
            let _ = write!(out, "fn {} pub={}", f.name, f.is_pub);
            if !f.generics.is_empty() {
                let _ = write!(out, " generics=[{}]", f.generics.join(","));
            }
            let params: Vec<String> = f
                .params
                .iter()
                .map(|p| {
                    if p.by_mut_ref {
                        format!("&mut {}", p.name)
                    } else {
                        p.name.clone()
                    }
                })
                .collect();
            let _ = write!(out, " params=[{}]", params.join(","));
        }
        ItemKind::Use(u) => {
            let targets: Vec<String> = u
                .targets
                .iter()
                .map(|t| {
                    let path = t.path.join("::");
                    if t.path.last().map(String::as_str) == Some(t.alias.as_str()) {
                        path
                    } else {
                        format!("{path} as {}", t.alias)
                    }
                })
                .collect();
            let _ = write!(out, "use {}", targets.join(", "));
        }
        ItemKind::Impl(i) => match &i.trait_name {
            Some(t) => {
                let _ = write!(out, "impl {t} for {}", i.ty_name);
            }
            None => {
                let _ = write!(out, "impl {}", i.ty_name);
            }
        },
        ItemKind::Mod(m) => {
            let _ = write!(
                out,
                "mod {}{}",
                m.name,
                if m.items.is_none() { " (file)" } else { "" }
            );
        }
        ItemKind::Static(s) => {
            let _ = write!(out, "static {} mut={}", s.name, s.mutable);
            if !s.ty.is_empty() {
                let _ = write!(out, " ty={}", s.ty);
            }
        }
        ItemKind::Other(o) => {
            let _ = write!(out, "{} {}", o.keyword, o.name.as_deref().unwrap_or("?"));
        }
    }
    if !item.attrs.is_empty() {
        let _ = write!(out, " attrs=[{}]", item.attrs.join(","));
    }
    if !item.markers.is_empty() {
        let _ = write!(out, " markers=[{}]", item.markers.join(","));
    }
    out.push('\n');
    match &item.kind {
        ItemKind::Fn(f) => {
            if let Some(body) = &f.body {
                dump_block(body, depth + 1, out);
            }
        }
        ItemKind::Impl(i) => {
            for nested in &i.items {
                dump_item(nested, depth + 1, out);
            }
        }
        ItemKind::Mod(m) => {
            if let Some(items) = &m.items {
                for nested in items {
                    dump_item(nested, depth + 1, out);
                }
            }
        }
        _ => {}
    }
}

fn dump_block(b: &Block, depth: usize, out: &mut String) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let(l) => {
                pad(depth, out);
                let _ = write!(out, "let {} mut={}", l.name, l.mutable);
                if !l.ty.is_empty() {
                    let _ = write!(out, " ty={}", l.ty);
                }
                out.push('\n');
                if let Some(init) = &l.init {
                    dump_expr(init, depth + 1, out);
                }
            }
            Stmt::Expr(e) => dump_expr(e, depth, out),
            Stmt::Item(i) => dump_item(i, depth, out),
        }
    }
}

fn dump_expr(e: &Expr, depth: usize, out: &mut String) {
    match e {
        Expr::Path(p) => {
            pad(depth, out);
            let _ = writeln!(out, "path {}", p.segments.join("::"));
        }
        Expr::Call(c) => {
            pad(depth, out);
            out.push_str("call\n");
            dump_expr(&c.callee, depth + 1, out);
            for a in &c.args {
                dump_expr(a, depth + 1, out);
            }
        }
        Expr::MethodCall(m) => {
            pad(depth, out);
            let _ = writeln!(out, "method .{}", m.method);
            dump_expr(&m.recv, depth + 1, out);
            for a in &m.args {
                dump_expr(a, depth + 1, out);
            }
        }
        Expr::Closure(c) => {
            pad(depth, out);
            let _ = writeln!(
                out,
                "closure move={} params=[{}]",
                c.is_move,
                c.params.join(",")
            );
            dump_expr(&c.body, depth + 1, out);
        }
        Expr::Macro(m) => {
            pad(depth, out);
            let _ = writeln!(out, "macro {}!", m.segments.join("::"));
            for a in &m.args {
                dump_expr(a, depth + 1, out);
            }
        }
        Expr::Index(i) => {
            pad(depth, out);
            out.push_str("index\n");
            dump_expr(&i.base, depth + 1, out);
            dump_expr(&i.index, depth + 1, out);
        }
        Expr::Field(f) => {
            pad(depth, out);
            let _ = writeln!(out, "field .{}", f.name);
            dump_expr(&f.base, depth + 1, out);
        }
        Expr::Block(b) => {
            pad(depth, out);
            out.push_str("block\n");
            dump_block(b, depth + 1, out);
        }
        Expr::Lit(l) => {
            pad(depth, out);
            let mut text = l.text.clone();
            if text.chars().count() > 40 {
                text = text.chars().take(40).collect::<String>() + "…";
            }
            let _ = writeln!(out, "lit {text}");
        }
        Expr::Seq(s) => {
            pad(depth, out);
            out.push_str("seq");
            if s.ctrl != Ctrl::None {
                let _ = write!(out, " {}", s.ctrl.name());
            }
            if !s.binds.is_empty() {
                let _ = write!(out, " binds=[{}]", s.binds.join(","));
            }
            out.push('\n');
            for c in &s.children {
                dump_expr(c, depth + 1, out);
            }
        }
    }
}
